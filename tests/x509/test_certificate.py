"""Tests for the certificate model, builder, names, and extensions."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.simtime import date_to_day
from repro.x509 import (
    AuthorityInfoAccess,
    AuthorityKeyIdentifier,
    BasicConstraints,
    CRLDistributionPoints,
    Certificate,
    CertificateBuilder,
    CertificatePolicies,
    Extensions,
    KeyUsage,
    Name,
    OID,
    SubjectAltName,
    SubjectKeyIdentifier,
    generate_keypair,
)

import datetime

DAY_2013 = date_to_day(datetime.date(2013, 1, 1))


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(random.Random(11))


@pytest.fixture(scope="module")
def other_keypair():
    return generate_keypair(random.Random(22))


def build_device_cert(keypair, cn="192.168.1.1", not_before=DAY_2013, days=7300,
                      version=3, extensions=True, serial=1234):
    builder = (
        CertificateBuilder()
        .version(version)
        .serial(serial)
        .subject(Name.common_name(cn))
        .validity(not_before, not_before + days)
        .keypair(keypair)
    )
    if extensions and version == 3:
        builder.subject_alt_names(["device.local", cn])
    return builder.self_sign()


class TestName:
    def test_build_and_accessors(self):
        name = Name.build(CN="example.com", O="Example Corp", C="US")
        assert name.cn == "example.com"
        assert name.get("O") == "Example Corp"
        assert name.get("L") is None
        assert name.rfc4514() == "CN=example.com, O=Example Corp, C=US"

    def test_empty_name(self):
        # Table 1: 925,579 invalid certificates have empty issuer strings.
        name = Name.empty()
        assert name.is_empty()
        assert name.cn is None
        assert name.rfc4514() == ""

    def test_der_round_trip(self):
        name = Name.build(CN="fritz.box", O="AVM", C="DE")
        assert Name.from_der(name.to_der()) == name

    def test_der_round_trip_empty(self):
        assert Name.from_der(Name.empty().to_der()) == Name.empty()

    @given(st.text(max_size=40))
    def test_der_round_trip_arbitrary_cn(self, cn):
        name = Name.common_name(cn)
        assert Name.from_der(name.to_der()) == name

    def test_hashable(self):
        assert len({Name.common_name("a"), Name.common_name("a"), Name.common_name("b")}) == 2

    def test_ordering_preserved(self):
        a = Name.build(CN="x", O="y")
        b = Name.build(O="y", CN="x")
        assert a != b  # DN attribute order is significant


class TestExtensions:
    def test_san_round_trip(self):
        extensions = Extensions.of(SubjectAltName(("fritz.fonwlan.box", "myfritz.net")))
        decoded = Extensions.from_der(extensions.to_der())
        assert decoded.subject_alt_names == ("fritz.fonwlan.box", "myfritz.net")

    def test_aki_ski_round_trip(self):
        extensions = Extensions.of(
            AuthorityKeyIdentifier(b"\x01" * 20), SubjectKeyIdentifier(b"\x02" * 20)
        )
        decoded = Extensions.from_der(extensions.to_der())
        assert decoded.authority_key_id == b"\x01" * 20
        assert decoded.subject_key_id == b"\x02" * 20

    def test_crl_round_trip(self):
        extensions = Extensions.of(
            CRLDistributionPoints(("http://crl.example.com/ca.crl",))
        )
        decoded = Extensions.from_der(extensions.to_der())
        assert decoded.crl_uris == ("http://crl.example.com/ca.crl",)

    def test_aia_round_trip(self):
        extensions = Extensions.of(
            AuthorityInfoAccess(
                ocsp=("http://ocsp.example.com",),
                ca_issuers=("http://ca.example.com/ca.crt",),
            )
        )
        decoded = Extensions.from_der(extensions.to_der())
        assert decoded.ocsp_uris == ("http://ocsp.example.com",)
        assert decoded.ca_issuer_uris == ("http://ca.example.com/ca.crt",)

    def test_policies_round_trip(self):
        policy = OID.parse("1.3.6.1.4.1.99999.1")
        extensions = Extensions.of(CertificatePolicies((policy,)))
        decoded = Extensions.from_der(extensions.to_der())
        assert decoded.policy_oids == (policy,)

    def test_basic_constraints_and_key_usage(self):
        extensions = Extensions.of(
            BasicConstraints(ca=True), KeyUsage(key_cert_sign=True)
        )
        decoded = Extensions.from_der(extensions.to_der())
        assert decoded.is_ca
        assert decoded.get(KeyUsage).key_cert_sign

    def test_absent_extensions_yield_defaults(self):
        empty = Extensions()
        assert empty.subject_alt_names == ()
        assert empty.authority_key_id is None
        assert empty.crl_uris == ()
        assert empty.ocsp_uris == ()
        assert empty.policy_oids == ()
        assert not empty.is_ca
        assert not empty


class TestCertificate:
    def test_self_signed_round_trip(self, keypair):
        cert = build_device_cert(keypair)
        parsed = Certificate.from_der(cert.to_der())
        assert parsed == cert
        assert parsed.fingerprint == cert.fingerprint
        assert parsed.subject_cn == "192.168.1.1"
        assert parsed.extensions.subject_alt_names == ("device.local", "192.168.1.1")

    def test_v1_round_trip(self, keypair):
        cert = build_device_cert(keypair, version=1, extensions=False)
        parsed = Certificate.from_der(cert.to_der())
        assert parsed == cert
        assert parsed.version == 1
        assert not parsed.is_ca

    def test_self_signature_verifies(self, keypair):
        cert = build_device_cert(keypair)
        assert cert.is_self_signed()
        assert cert.self_issued()

    def test_self_signed_with_mismatched_names(self, keypair):
        # Footnote 7: openssl reports error 19 only when subject==issuer,
        # but devices emit self-signed certs with differing names too.
        cert = (
            CertificateBuilder()
            .subject(Name.common_name("device"))
            .issuer(Name.common_name("not-the-device"))
            .validity(DAY_2013, DAY_2013 + 365)
            .keypair(keypair)
            .self_sign()
        )
        assert cert.is_self_signed()
        assert not cert.self_issued()

    def test_cross_signature(self, keypair, other_keypair):
        ca_name = Name.build(CN="Tiny CA", O="Tiny")
        cert = (
            CertificateBuilder()
            .subject(Name.common_name("site.example"))
            .validity(DAY_2013, DAY_2013 + 365)
            .keypair(keypair)
            .sign_with(ca_name, other_keypair.private)
        )
        assert cert.verify_signature(other_keypair.public)
        assert not cert.verify_signature(keypair.public)
        assert not cert.is_self_signed()
        assert cert.issuer == ca_name

    def test_negative_validity_period(self, keypair):
        # 5.38% of invalid certs have Not After before Not Before.
        cert = build_device_cert(keypair, days=-100)
        assert cert.validity_period_days == -100
        parsed = Certificate.from_der(cert.to_der())
        assert parsed.validity_period_days == -100

    def test_far_future_not_after(self, keypair):
        # Validity periods beyond a million days (Not After in year 3000+).
        million_days = 1_000_000
        cert = build_device_cert(keypair, days=million_days)
        parsed = Certificate.from_der(cert.to_der())
        assert parsed.validity_period_days == million_days

    def test_valid_on(self, keypair):
        cert = build_device_cert(keypair, days=10)
        assert cert.valid_on(DAY_2013)
        assert cert.valid_on(DAY_2013 + 10)
        assert not cert.valid_on(DAY_2013 - 1)
        assert not cert.valid_on(DAY_2013 + 11)

    def test_fingerprint_changes_with_any_field(self, keypair):
        base = build_device_cert(keypair)
        different_serial = build_device_cert(keypair, serial=5678)
        different_cn = build_device_cert(keypair, cn="192.168.0.1")
        assert len({base.fingerprint, different_serial.fingerprint, different_cn.fingerprint}) == 3

    def test_ca_cert(self, keypair):
        cert = (
            CertificateBuilder()
            .subject(Name.build(CN="Root CA", O="Root"))
            .validity(DAY_2013, DAY_2013 + 3650)
            .keypair(keypair)
            .ca()
            .self_sign()
        )
        assert cert.is_ca
        parsed = Certificate.from_der(cert.to_der())
        assert parsed.is_ca

    def test_empty_subject(self, keypair):
        cert = (
            CertificateBuilder()
            .subject(Name.empty())
            .issuer(Name.empty())
            .validity(DAY_2013, DAY_2013 + 365)
            .keypair(keypair)
            .self_sign()
        )
        assert cert.subject_cn is None
        assert Certificate.from_der(cert.to_der()) == cert

    def test_hashable_by_fingerprint(self, keypair):
        a = build_device_cert(keypair)
        b = build_device_cert(keypair)  # identical build → identical cert
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    @settings(deadline=None, max_examples=20)
    @given(
        cn=st.text(max_size=24),
        days=st.integers(min_value=-1000, max_value=1_000_000),
        serial=st.integers(min_value=0, max_value=2 ** 64),
    )
    def test_der_round_trip_property(self, cn, days, serial):
        keypair = generate_keypair(random.Random(5))
        cert = build_device_cert(keypair, cn=cn, days=days, serial=serial)
        assert Certificate.from_der(cert.to_der()) == cert


class TestBuilderValidation:
    def test_missing_subject_rejected(self, keypair):
        builder = CertificateBuilder().validity(0, 1).keypair(keypair)
        with pytest.raises(ValueError):
            builder.self_sign()

    def test_missing_validity_rejected(self, keypair):
        builder = CertificateBuilder().subject(Name.common_name("x")).keypair(keypair)
        with pytest.raises(ValueError):
            builder.self_sign()

    def test_missing_key_without_rng_rejected(self):
        builder = CertificateBuilder().subject(Name.common_name("x")).validity(0, 1)
        with pytest.raises(ValueError):
            builder.self_sign()

    def test_rng_generates_key_and_serial(self):
        rng = random.Random(77)
        cert = (
            CertificateBuilder()
            .subject(Name.common_name("x"))
            .validity(0, 1)
            .self_sign(rng=rng)
        )
        assert cert.is_self_signed()
        assert cert.serial > 0

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            CertificateBuilder().version(2)

    def test_out_of_calendar_range_rejected(self, keypair):
        with pytest.raises(ValueError):
            CertificateBuilder().validity(0, 10 ** 9)

    def test_public_key_only_cannot_self_sign(self, keypair):
        builder = (
            CertificateBuilder()
            .subject(Name.common_name("x"))
            .validity(0, 1)
            .public_key(keypair.public)
        )
        with pytest.raises(ValueError):
            builder.self_sign()
