"""Tests for the toy RSA implementation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.x509.keys import KeyPair, generate_keypair


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(random.Random(42))


class TestGeneration:
    def test_deterministic_from_seed(self):
        a = generate_keypair(random.Random(7))
        b = generate_keypair(random.Random(7))
        assert a.public == b.public
        assert a.private == b.private

    def test_different_seeds_differ(self):
        a = generate_keypair(random.Random(1))
        b = generate_keypair(random.Random(2))
        assert a.public != b.public

    def test_modulus_size(self, keypair):
        assert 250 <= keypair.public.bits <= 256

    def test_custom_bits(self):
        pair = generate_keypair(random.Random(3), bits=128)
        assert 120 <= pair.public.bits <= 128

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(random.Random(0), bits=16)

    def test_private_matches_public(self, keypair):
        assert keypair.private.public_key() == keypair.public


class TestSignVerify:
    def test_valid_signature_verifies(self, keypair):
        message = b"to-be-signed bytes"
        sig = keypair.private.sign(message)
        assert keypair.public.verify(message, sig)

    def test_different_message_fails(self, keypair):
        sig = keypair.private.sign(b"message one")
        assert not keypair.public.verify(b"message two", sig)

    def test_wrong_key_fails(self, keypair):
        other = generate_keypair(random.Random(99))
        sig = keypair.private.sign(b"hello")
        assert not other.public.verify(b"hello", sig)

    def test_tampered_signature_fails(self, keypair):
        sig = keypair.private.sign(b"hello")
        assert not keypair.public.verify(b"hello", sig ^ 1)

    def test_out_of_range_signature_rejected(self, keypair):
        assert not keypair.public.verify(b"x", keypair.public.n)
        assert not keypair.public.verify(b"x", -1)

    @settings(deadline=None, max_examples=25)
    @given(st.binary(max_size=200))
    def test_sign_verify_property(self, message):
        pair = generate_keypair(random.Random(1234))
        assert pair.public.verify(message, pair.private.sign(message))


class TestFingerprint:
    def test_stable(self, keypair):
        assert keypair.public.fingerprint == keypair.public.fingerprint
        assert len(keypair.public.fingerprint) == 32

    def test_distinct_keys_distinct_fingerprints(self):
        fingerprints = {
            generate_keypair(random.Random(seed)).public.fingerprint
            for seed in range(8)
        }
        assert len(fingerprints) == 8

    def test_usable_as_dict_key(self, keypair):
        # The key-sharing analysis buckets certificates by key identity.
        shared: dict = {}
        shared[keypair.public] = ["cert-a", "cert-b"]
        clone = KeyPair(keypair.public, keypair.private).public
        assert shared[clone] == ["cert-a", "cert-b"]
