"""Tests for chain construction, trust stores, and the verify taxonomy."""

import random


from repro.x509 import (
    CertificateBuilder,
    ChainVerifier,
    Name,
    TrustStore,
    VerifyStatus,
    generate_keypair,
)

DAY = 5000  # arbitrary simulated day


def make_root(seed=1, cn="Trusted Root CA"):
    pair = generate_keypair(random.Random(seed))
    cert = (
        CertificateBuilder()
        .subject(Name.build(CN=cn, O="RootCo"))
        .validity(DAY - 3650, DAY + 3650)
        .keypair(pair)
        .ca()
        .self_sign()
    )
    return cert, pair


def make_intermediate(root_cert, root_pair, seed=2, cn="Intermediate CA"):
    pair = generate_keypair(random.Random(seed))
    cert = (
        CertificateBuilder()
        .subject(Name.build(CN=cn, O="RootCo"))
        .validity(DAY - 1000, DAY + 1000)
        .keypair(pair)
        .ca()
        .sign_with(root_cert.subject, root_pair.private)
    )
    return cert, pair


def make_leaf(issuer_cert, issuer_pair, seed=3, cn="site.example"):
    pair = generate_keypair(random.Random(seed))
    return (
        CertificateBuilder()
        .subject(Name.common_name(cn))
        .validity(DAY, DAY + 365)
        .keypair(pair)
        .sign_with(issuer_cert.subject, issuer_pair.private)
    )


class TestTrustStore:
    def test_add_and_contains(self):
        root, _ = make_root()
        store = TrustStore([root])
        assert root in store
        assert len(store) == 1

    def test_duplicate_add_is_noop(self):
        root, _ = make_root()
        store = TrustStore([root, root])
        assert len(store) == 1

    def test_find_issuer(self):
        root, root_pair = make_root()
        leaf = make_leaf(root, root_pair)
        store = TrustStore([root])
        assert store.find_issuer(leaf) == root

    def test_find_issuer_requires_real_signature(self):
        root, root_pair = make_root()
        impostor_pair = generate_keypair(random.Random(66))
        # Claims the root's name but is signed by someone else.
        leaf = (
            CertificateBuilder()
            .subject(Name.common_name("victim.example"))
            .validity(DAY, DAY + 365)
            .keypair(generate_keypair(random.Random(67)))
            .sign_with(root.subject, impostor_pair.private)
        )
        store = TrustStore([root])
        assert store.find_issuer(leaf) is None

    def test_trusts_key(self):
        root, root_pair = make_root()
        store = TrustStore([root])
        assert store.trusts_key(root_pair.public.fingerprint)
        other = generate_keypair(random.Random(9))
        assert not store.trusts_key(other.public.fingerprint)


class TestVerify:
    def test_direct_root_signature_is_valid(self):
        root, root_pair = make_root()
        leaf = make_leaf(root, root_pair)
        verifier = ChainVerifier(TrustStore([root]))
        result = verifier.verify(leaf)
        assert result.status is VerifyStatus.VALID
        assert result.chain == (leaf, root)

    def test_chain_through_intermediate(self):
        root, root_pair = make_root()
        intermediate, intermediate_pair = make_intermediate(root, root_pair)
        leaf = make_leaf(intermediate, intermediate_pair)
        verifier = ChainVerifier(TrustStore([root]), [intermediate])
        result = verifier.verify(leaf)
        assert result.status is VerifyStatus.VALID
        assert result.chain == (leaf, intermediate, root)

    def test_transvalid_leaf_validates_from_pool(self):
        # Transvalid (§4.2): the server presented a wrong chain, but the
        # intermediate is known from elsewhere in the dataset.
        root, root_pair = make_root()
        intermediate, intermediate_pair = make_intermediate(root, root_pair)
        leaf = make_leaf(intermediate, intermediate_pair)
        # Intermediate added to the pool from "another scan observation".
        verifier = ChainVerifier(TrustStore([root]))
        verifier.add_intermediate(intermediate)
        assert verifier.verify(leaf).status is VerifyStatus.VALID

    def test_self_signed_invalid(self):
        pair = generate_keypair(random.Random(5))
        cert = (
            CertificateBuilder()
            .subject(Name.common_name("192.168.1.1"))
            .validity(DAY, DAY + 7300)
            .keypair(pair)
            .self_sign()
        )
        root, _ = make_root()
        result = ChainVerifier(TrustStore([root])).verify(cert)
        assert result.status is VerifyStatus.SELF_SIGNED

    def test_self_signed_with_mismatched_names_detected(self):
        # The footnote-7 case: verifies under its own key, names differ.
        pair = generate_keypair(random.Random(6))
        cert = (
            CertificateBuilder()
            .subject(Name.common_name("device-123"))
            .issuer(Name.common_name("firmware-generator"))
            .validity(DAY, DAY + 100)
            .keypair(pair)
            .self_sign()
        )
        root, _ = make_root()
        result = ChainVerifier(TrustStore([root])).verify(cert)
        assert result.status is VerifyStatus.SELF_SIGNED
        assert "names differ" in result.detail

    def test_untrusted_issuer(self):
        # Signed by a private CA nobody trusts.
        private_root, private_pair = make_root(seed=50, cn="Corp Internal CA")
        leaf = make_leaf(private_root, private_pair, cn="intranet.corp")
        trusted_root, _ = make_root(seed=1)
        result = ChainVerifier(TrustStore([trusted_root])).verify(leaf)
        assert result.status is VerifyStatus.UNTRUSTED_ISSUER

    def test_untrusted_chain_with_known_untrusted_parent(self):
        # Even with the parent in the pool, no trusted root terminates it.
        private_root, private_pair = make_root(seed=51, cn="Vendor CA")
        intermediate, intermediate_pair = make_intermediate(
            private_root, private_pair, seed=52, cn="Vendor Sub-CA"
        )
        leaf = make_leaf(intermediate, intermediate_pair, seed=53)
        trusted_root, _ = make_root(seed=1)
        verifier = ChainVerifier(TrustStore([trusted_root]), [intermediate, private_root])
        assert verifier.verify(leaf).status is VerifyStatus.UNTRUSTED_ISSUER

    def test_bad_signature(self):
        root, root_pair = make_root()
        wrong_pair = generate_keypair(random.Random(77))
        leaf = (
            CertificateBuilder()
            .subject(Name.common_name("evil.example"))
            .validity(DAY, DAY + 365)
            .keypair(generate_keypair(random.Random(78)))
            .sign_with(root.subject, wrong_pair.private)  # wrong key, right name
        )
        result = ChainVerifier(TrustStore([root])).verify(leaf)
        assert result.status is VerifyStatus.BAD_SIGNATURE

    def test_trusted_root_itself_is_valid(self):
        root, _ = make_root()
        verifier = ChainVerifier(TrustStore([root]))
        result = verifier.verify(root)
        assert result.status is VerifyStatus.VALID
        assert result.chain == (root,)

    def test_expired_certificate_still_valid(self):
        # §4.2: expiry is explicitly ignored.
        root, root_pair = make_root()
        pair = generate_keypair(random.Random(80))
        expired = (
            CertificateBuilder()
            .subject(Name.common_name("old.example"))
            .validity(DAY - 10_000, DAY - 9_000)
            .keypair(pair)
            .sign_with(root.subject, root_pair.private)
        )
        assert ChainVerifier(TrustStore([root])).verify(expired).status is VerifyStatus.VALID

    def test_non_ca_intermediate_not_used(self):
        root, root_pair = make_root()
        # A leaf (not CA) that signed another cert must not form a chain.
        non_ca, non_ca_pair = make_root(seed=60, cn="Leafy")
        fake_intermediate = make_leaf(root, root_pair, seed=61, cn="Leafy")
        leaf = make_leaf(fake_intermediate, non_ca_pair, seed=62)
        verifier = ChainVerifier(TrustStore([root]), [fake_intermediate])
        assert verifier.verify(leaf).status is not VerifyStatus.VALID

    def test_loop_in_pool_terminates(self):
        # Two CAs signing each other must not hang the search.
        pair_a = generate_keypair(random.Random(90))
        pair_b = generate_keypair(random.Random(91))
        name_a = Name.common_name("Loop A")
        name_b = Name.common_name("Loop B")
        cert_a = (
            CertificateBuilder()
            .subject(name_a).issuer(name_b)
            .validity(DAY, DAY + 100).keypair(pair_a).ca()
            .sign_with(name_b, pair_b.private)
        )
        cert_b = (
            CertificateBuilder()
            .subject(name_b).issuer(name_a)
            .validity(DAY, DAY + 100).keypair(pair_b).ca()
            .sign_with(name_a, pair_a.private)
        )
        leaf = make_leaf(cert_a, pair_a, seed=92)
        trusted_root, _ = make_root(seed=1)
        verifier = ChainVerifier(TrustStore([trusted_root]), [cert_a, cert_b])
        assert verifier.verify(leaf).status is VerifyStatus.UNTRUSTED_ISSUER

    def test_verify_all_batch(self):
        root, root_pair = make_root()
        valid_leaf = make_leaf(root, root_pair)
        pair = generate_keypair(random.Random(70))
        invalid = (
            CertificateBuilder()
            .subject(Name.common_name("10.0.0.1"))
            .validity(DAY, DAY + 100)
            .keypair(pair)
            .self_sign()
        )
        verifier = ChainVerifier(TrustStore([root]))
        results = verifier.verify_all([valid_leaf, invalid])
        assert results[valid_leaf.fingerprint].is_valid
        assert results[invalid.fingerprint].status is VerifyStatus.SELF_SIGNED
