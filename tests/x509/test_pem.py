"""Tests for PEM armor."""

import base64

import pytest

from repro.x509.pem import decode_pem, decode_pem_many, encode_pem

from ..core.helpers import make_cert


class TestPEM:
    def test_round_trip(self):
        cert = make_cert(cn="pem.example", key_seed=1)
        assert decode_pem(encode_pem(cert)) == cert

    def test_format(self):
        text = encode_pem(make_cert())
        lines = text.splitlines()
        assert lines[0] == "-----BEGIN CERTIFICATE-----"
        assert lines[-1] == "-----END CERTIFICATE-----"
        assert all(len(line) <= 64 for line in lines[1:-1])
        # Body is valid standalone base64.
        base64.b64decode("".join(lines[1:-1]), validate=True)

    def test_bundle(self):
        certs = [make_cert(cn=f"c{i}", key_seed=i) for i in range(1, 4)]
        bundle = "".join(encode_pem(cert) for cert in certs)
        decoded = decode_pem_many(bundle)
        assert [c.fingerprint for c in decoded] == [c.fingerprint for c in certs]

    def test_surrounding_noise_ignored(self):
        cert = make_cert(cn="noisy", key_seed=5)
        text = "junk before\n" + encode_pem(cert) + "junk after\n"
        assert decode_pem(text) == cert

    def test_no_block(self):
        with pytest.raises(ValueError):
            decode_pem("nothing here")

    def test_unterminated_block(self):
        text = "-----BEGIN CERTIFICATE-----\nQUJD\n"
        with pytest.raises(ValueError):
            decode_pem_many(text)

    def test_end_without_begin(self):
        with pytest.raises(ValueError):
            decode_pem_many("-----END CERTIFICATE-----\n")

    def test_corrupt_base64(self):
        text = "-----BEGIN CERTIFICATE-----\n!!!!\n-----END CERTIFICATE-----\n"
        with pytest.raises(Exception):
            decode_pem(text)
