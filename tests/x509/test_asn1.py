"""Tests for the DER codec."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.x509 import asn1
from repro.x509.asn1 import DERError, DERReader, Tag
from repro.x509.oid import OID


class TestInteger:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, b"\x02\x01\x00"),
            (127, b"\x02\x01\x7f"),
            (128, b"\x02\x02\x00\x80"),
            (256, b"\x02\x02\x01\x00"),
            (-1, b"\x02\x01\xff"),
            (-128, b"\x02\x01\x80"),
            (-129, b"\x02\x02\xff\x7f"),
        ],
    )
    def test_known_encodings(self, value, expected):
        assert asn1.encode_integer(value) == expected

    @given(st.integers(min_value=-(2 ** 512), max_value=2 ** 512))
    def test_round_trip(self, value):
        encoded = asn1.encode_integer(value)
        assert DERReader(encoded).read_integer() == value

    @given(st.integers(min_value=-(2 ** 512), max_value=2 ** 512))
    def test_minimal_length(self, value):
        encoded = asn1.encode_integer(value)
        body = DERReader(encoded).expect(Tag.INTEGER).value
        if len(body) > 1:
            # No redundant leading 0x00/0xFF per DER.
            assert not (body[0] == 0x00 and not body[1] & 0x80)
            assert not (body[0] == 0xFF and body[1] & 0x80)

    def test_empty_integer_rejected(self):
        with pytest.raises(DERError):
            DERReader(b"\x02\x00").read_integer()


class TestBoolean:
    def test_round_trip(self):
        for value in (True, False):
            assert DERReader(asn1.encode_boolean(value)).read_boolean() == value

    def test_der_true_is_ff(self):
        assert asn1.encode_boolean(True) == b"\x01\x01\xff"

    def test_multibyte_boolean_rejected(self):
        with pytest.raises(DERError):
            DERReader(b"\x01\x02\x00\x00").read_boolean()


class TestStringsAndBytes:
    @given(st.binary(max_size=300))
    def test_octet_string_round_trip(self, data):
        assert DERReader(asn1.encode_octet_string(data)).read_octet_string() == data

    @given(st.text(max_size=100))
    def test_utf8_round_trip(self, text):
        assert DERReader(asn1.encode_utf8_string(text)).read_string() == text

    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=100))
    def test_ia5_round_trip(self, text):
        assert DERReader(asn1.encode_ia5_string(text)).read_string() == text

    @given(st.binary(max_size=64), st.integers(min_value=0, max_value=7))
    def test_bit_string_round_trip(self, data, unused):
        body, got_unused = DERReader(asn1.encode_bit_string(data, unused)).read_bit_string()
        assert body == data
        assert got_unused == unused

    def test_bit_string_bad_unused_count(self):
        with pytest.raises(ValueError):
            asn1.encode_bit_string(b"", 8)
        with pytest.raises(DERError):
            DERReader(b"\x03\x02\x09\x00").read_bit_string()

    def test_null_round_trip(self):
        reader = DERReader(asn1.encode_null())
        assert reader.read_null() is None
        assert reader.at_end()

    def test_null_with_content_rejected(self):
        with pytest.raises(DERError):
            DERReader(b"\x05\x01\x00").read_null()


class TestLongLengths:
    def test_long_form_length(self):
        data = b"x" * 1000
        encoded = asn1.encode_octet_string(data)
        assert DERReader(encoded).read_octet_string() == data
        # 1000 needs two length octets: 0x82 0x03 0xE8.
        assert encoded[1] == 0x82

    def test_length_overrun_rejected(self):
        with pytest.raises(DERError):
            DERReader(b"\x04\x05abc").read_octet_string()

    def test_indefinite_length_rejected(self):
        with pytest.raises(DERError):
            DERReader(b"\x30\x80\x00\x00").read_tlv()


oid_strategy = st.builds(
    lambda first, second, rest: OID((first, second, *rest)),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=39),
    st.lists(st.integers(min_value=0, max_value=2 ** 40), max_size=8),
)


class TestOID:
    def test_known_encoding(self):
        # sha256WithRSAEncryption
        oid = OID.parse("1.2.840.113549.1.1.11")
        encoded = asn1.encode_oid(oid)
        assert encoded == bytes.fromhex("06092a864886f70d01010b")

    @given(oid_strategy)
    def test_round_trip(self, oid):
        assert DERReader(asn1.encode_oid(oid)).read_oid() == oid

    def test_truncated_arc_rejected(self):
        with pytest.raises(DERError):
            DERReader(b"\x06\x02\x2a\x86").read_oid()  # continuation bit set at end

    def test_empty_oid_rejected(self):
        with pytest.raises(DERError):
            DERReader(b"\x06\x00").read_oid()

    def test_two_arc_high_first(self):
        oid = OID.parse("2.999")
        assert DERReader(asn1.encode_oid(oid)).read_oid() == oid


class TestTime:
    def test_utc_time_for_20th_21st_century(self):
        when = datetime.datetime(2014, 3, 30, 12, 0, 0)
        encoded = asn1.encode_time(when)
        assert encoded[0] == Tag.UTC_TIME
        assert DERReader(encoded).read_time() == when

    def test_generalized_time_for_far_future(self):
        when = datetime.datetime(3000, 1, 1)
        encoded = asn1.encode_time(when)
        assert encoded[0] == Tag.GENERALIZED_TIME
        assert DERReader(encoded).read_time() == when

    def test_generalized_time_for_past(self):
        when = datetime.datetime(1949, 12, 31)
        encoded = asn1.encode_time(when)
        assert encoded[0] == Tag.GENERALIZED_TIME
        assert DERReader(encoded).read_time() == when

    def test_utc_century_split(self):
        # Two-digit years <50 are 20xx, >=50 are 19xx.
        past = datetime.datetime(1970, 1, 1)
        recent = datetime.datetime(2049, 1, 1)
        assert DERReader(asn1.encode_time(past)).read_time() == past
        assert DERReader(asn1.encode_time(recent)).read_time() == recent

    @given(
        st.datetimes(
            min_value=datetime.datetime(1, 1, 1),
            max_value=datetime.datetime(9999, 12, 31),
        ).map(lambda dt: dt.replace(microsecond=0))
    )
    def test_round_trip(self, when):
        assert DERReader(asn1.encode_time(when)).read_time() == when

    def test_aware_datetime_rejected(self):
        aware = datetime.datetime(2020, 1, 1, tzinfo=datetime.timezone.utc)
        with pytest.raises(ValueError):
            asn1.encode_time(aware)

    def test_malformed_time_rejected(self):
        with pytest.raises(DERError):
            DERReader(b"\x17\x0520101").read_time()


class TestStructures:
    def test_sequence_nesting(self):
        inner = asn1.encode_sequence(asn1.encode_integer(1), asn1.encode_integer(2))
        outer = asn1.encode_sequence(inner, asn1.encode_integer(3))
        reader = DERReader(outer).enter_sequence()
        nested = reader.enter_sequence()
        assert nested.read_integer() == 1
        assert nested.read_integer() == 2
        assert reader.read_integer() == 3
        assert reader.at_end()

    def test_set_sorts_members(self):
        a = asn1.encode_integer(300)
        b = asn1.encode_integer(1)
        assert asn1.encode_set([a, b]) == asn1.encode_set([b, a])

    def test_explicit_context_tag(self):
        inner = asn1.encode_integer(2)
        wrapped = asn1.encode_explicit(0, inner)
        assert wrapped[0] == 0xA0
        reader = DERReader(wrapped).enter_context(0)
        assert reader.read_integer() == 2

    def test_enter_wrong_context_rejected(self):
        wrapped = asn1.encode_explicit(0, asn1.encode_integer(2))
        with pytest.raises(DERError):
            DERReader(wrapped).enter_context(3)

    def test_implicit_retagging(self):
        inner = asn1.encode_ia5_string("example.com")
        retagged = asn1.encode_implicit(2, inner)
        assert retagged[0] == 0x82
        tlv = DERReader(retagged).read_tlv()
        assert tlv.value == b"example.com"

    def test_iter_tlvs(self):
        data = asn1.encode_integer(1) + asn1.encode_integer(2) + asn1.encode_null()
        tags = [tlv.tag for tlv in DERReader(data).iter_tlvs()]
        assert tags == [Tag.INTEGER, Tag.INTEGER, Tag.NULL]

    def test_expect_wrong_tag(self):
        with pytest.raises(DERError):
            DERReader(asn1.encode_null()).expect(Tag.INTEGER)

    def test_reader_rest_and_remaining(self):
        data = asn1.encode_integer(1) + asn1.encode_integer(2)
        reader = DERReader(data)
        reader.read_integer()
        assert reader.rest() == asn1.encode_integer(2)
        assert reader.remaining() == len(asn1.encode_integer(2))

    def test_read_past_end_rejected(self):
        reader = DERReader(b"")
        with pytest.raises(DERError):
            reader.read_tlv()
