"""Tests for the certificate pretty-printer."""

from repro.x509.display import render_certificate

from ..core.helpers import DAY0, make_cert


class TestRenderCertificate:
    def test_core_fields_present(self):
        cert = make_cert(cn="printer.local", key_seed=1, serial=4242)
        text = render_certificate(cert)
        assert "Version: 3" in text
        assert "Serial Number: 4242" in text
        assert "Subject: CN=printer.local" in text
        assert "Not Before:" in text
        assert "RSA Public-Key:" in text
        assert cert.fingerprint_hex.upper() in text
        assert "(self-signed)" in text

    def test_extensions_rendered(self):
        cert = make_cert(
            cn="rich.example", key_seed=2,
            sans=("a.example", "b.example"),
            crl=("http://crl.example/x.crl",),
        )
        text = render_certificate(cert)
        assert "Subject Alternative Name" in text
        assert "DNS:a.example, DNS:b.example" in text
        assert "CRL Distribution Points" in text
        assert "URI:http://crl.example/x.crl" in text

    def test_empty_names_labelled(self):
        import random

        from repro.x509.builder import CertificateBuilder
        from repro.x509.name import Name

        cert = (
            CertificateBuilder()
            .subject(Name.empty())
            .validity(DAY0, DAY0 + 10)
            .self_sign(rng=random.Random(1))
        )
        text = render_certificate(cert)
        assert "Subject: (empty)" in text
        assert "Issuer: (empty)" in text

    def test_far_future_not_after_rendered(self):
        cert = make_cert(cn="millennium", key_seed=3, days=360_000)
        text = render_certificate(cert)
        assert "Not After :" in text   # year ~2990, still representable

    def test_unrepresentable_day_falls_back(self):
        from repro.x509.display import _time

        assert _time(10**7, 0).startswith("<day")

    def test_ca_certificate(self):
        import random

        from repro.x509.builder import CertificateBuilder
        from repro.x509.name import Name

        cert = (
            CertificateBuilder()
            .subject(Name.build(CN="Root", O="RootCo"))
            .validity(DAY0, DAY0 + 100)
            .ca()
            .self_sign(rng=random.Random(2))
        )
        text = render_certificate(cert)
        assert "CA:TRUE" in text
        assert "Certificate Sign" in text
