"""Tests for the footnote-5 population: nonsense X.509 version numbers."""

import random

import pytest

from repro.x509.builder import CertificateBuilder
from repro.x509.certificate import Certificate
from repro.x509.chain import ChainVerifier, VerifyStatus
from repro.x509.keys import generate_keypair
from repro.x509.name import Name
from repro.x509.truststore import TrustStore

DAY = 5000


def bogus_cert(version):
    pair = generate_keypair(random.Random(1), 128)
    return (
        CertificateBuilder()
        .version(version, strict=False)
        .subject(Name.common_name("broken"))
        .validity(DAY, DAY + 100)
        .keypair(pair)
        .serial(7)
        .self_sign()
    )


class TestBogusVersions:
    @pytest.mark.parametrize("version", [2, 4, 13])
    def test_round_trip(self, version):
        cert = bogus_cert(version)
        parsed = Certificate.from_der(cert.to_der())
        assert parsed.version == version
        assert parsed == cert

    @pytest.mark.parametrize("version", [2, 4, 13])
    def test_classified_malformed(self, version):
        verifier = ChainVerifier(TrustStore())
        result = verifier.verify(bogus_cert(version))
        assert result.status is VerifyStatus.MALFORMED

    def test_strict_builder_still_rejects(self):
        with pytest.raises(ValueError):
            CertificateBuilder().version(2)
        with pytest.raises(ValueError):
            CertificateBuilder().version(0, strict=False)

    def test_disregarded_by_validation(self):
        from repro.core.validation import validate_dataset
        from repro.scanner.dataset import ScanDataset
        from repro.scanner.records import Observation, Scan

        broken = bogus_cert(4)
        scan = Scan(day=DAY, source="t",
                    observations=[Observation(1, broken.fingerprint)])
        dataset = ScanDataset([scan], {broken.fingerprint: broken})
        report = validate_dataset(dataset, TrustStore())
        # Footnote 5: such certificates are disregarded, not counted as
        # valid or invalid.
        assert broken.fingerprint in report.disregarded
        assert broken.fingerprint not in report.valid
        assert broken.fingerprint not in report.invalid

    def test_world_contains_broken_version_devices(self, tiny_synthetic, tiny_study):
        devices = [
            d for d in tiny_synthetic.world.devices
            if d.profile.name == "broken-version"
        ]
        if not devices:
            pytest.skip("no broken-version devices at tiny scale")
        report = tiny_study.validation()
        fingerprint = devices[0].certificate_for_epoch(0).fingerprint
        if fingerprint in report.results:
            assert fingerprint in report.disregarded
