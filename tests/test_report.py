"""Tests for the markdown study report."""

from repro.report import render_report, write_report


class TestRenderReport:
    def test_all_sections_present(self, tiny_study):
        text = render_report(tiny_study)
        for heading in (
            "# Invalid-certificate study",
            "## Corpus",
            "## Validation (§4.2)",
            "## Invalid vs valid (§5)",
            "## Linking (§6)",
            "## Tracking (§7)",
        ):
            assert heading in text

    def test_custom_title(self, tiny_study):
        text = render_report(tiny_study, title="My Study")
        assert text.startswith("# My Study")

    def test_headline_numbers_rendered(self, tiny_study):
        text = render_report(tiny_study)
        validation = tiny_study.validation()
        assert f"{validation.invalid_fraction * 100:.1f}%" in text
        assert "device chains" in text
        assert "trackable devices" in text

    def test_markdown_tables_well_formed(self, tiny_study):
        text = render_report(tiny_study)
        for line in text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_write_report(self, tiny_study, tmp_path):
        path = tmp_path / "out.md"
        write_report(tiny_study, path, title="T")
        assert path.read_text().startswith("# T")

    def test_report_cli_command(self, tiny_study, tmp_path):
        from repro.cli import main

        out = tmp_path / "cli-report.md"
        code = main(["report", "--preset", "tiny", "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "## Linking" in out.read_text()
