"""Shared fixtures: the tiny synthetic dataset, built once per session."""

import pytest

from repro.datasets.synthetic import tiny
from repro.study import Study


@pytest.fixture(scope="session")
def tiny_synthetic():
    """The tiny synthetic dataset (world + campaigns + scans)."""
    return tiny(seed=2016)


@pytest.fixture(scope="session")
def tiny_study(tiny_synthetic):
    """A Study over the tiny dataset, with all stages cached."""
    return Study.from_synthetic(tiny_synthetic)
