"""Shared serve fixtures: one saved corpus + environment, one warmed engine.

The engine under test is wired over the *saved* container (mapped
backend, artifact cache), while the parity oracle is an independent
:class:`~repro.study.Study` over a separately loaded dataset — the two
share no object state, so any agreement is earned.
"""

import pytest

from repro.io import (
    AnalysisEnvironment,
    load_dataset,
    save_dataset,
    save_environment,
)
from repro.serve import QueryEngine
from repro.study import Study


@pytest.fixture(scope="session")
def serve_paths(tmp_path_factory, tiny_synthetic):
    directory = tmp_path_factory.mktemp("serve")
    corpus = directory / "corpus.rpz"
    environment = directory / "env.rpe"
    save_dataset(tiny_synthetic.scans, corpus)
    save_environment(
        AnalysisEnvironment.of_world(tiny_synthetic.world), environment
    )
    return {
        "corpus": corpus,
        "environment": environment,
        "cache": directory / "cache",
    }


@pytest.fixture(scope="session")
def engine(serve_paths):
    engine = QueryEngine.open(
        serve_paths["corpus"], serve_paths["environment"],
        cache_dir=str(serve_paths["cache"]),
    )
    engine.warm()
    yield engine
    engine.close()


@pytest.fixture(scope="session")
def oracle(serve_paths, tiny_synthetic):
    """An independent Study over the same saved corpus."""
    world = tiny_synthetic.world
    return Study(
        dataset=load_dataset(serve_paths["corpus"]),
        trust_store=world.trust_store,
        as_of=world.routing.origin_as,
        registry=world.registry,
    )
