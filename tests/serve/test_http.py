"""End-to-end tests for the asyncio query plane and the load generator."""

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.live import LiveServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.serve import QueryServer, run_loadgen
from repro.serve.loadgen import DEFAULT_MIX, LoadgenReport, build_workload


@pytest.fixture(scope="module")
def loop():
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    yield loop
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def server(engine, loop):
    live = LiveServer(
        Tracer(process="serve-test"),
        MetricsRegistry(),
        health={"corpus": "tiny"},
    )
    server = QueryServer(engine, live=live)
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(timeout=30)
    yield server
    asyncio.run_coroutine_threadsafe(server.stop(), loop).result(timeout=30)


def _get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestTransportParity:
    def test_every_endpoint_matches_the_engine(self, server, engine):
        sample = json.loads(engine.respond("/sample"))
        paths = ["/census", "/census/valid", "/census/invalid", "/sample"]
        paths += [f"/cert/{fp}" for fp in sample["fingerprints"][:5]]
        paths += [f"/key/{key}/group" for key in sample["keys"][:5]]
        paths += [f"/track/{ip}" for ip in sample["ips"][:5]]
        paths += [f"/as/{asn}/reassignment" for asn in sample["asns"][:5]]
        for path in paths:
            status, body = _get(server, path)
            assert status == 200, path
            assert body == engine.respond(path), path

    def test_unknown_path_is_json_404(self, server):
        status, body = _get(server, "/certainly/not/served")
        assert status == 404
        assert "error" in json.loads(body)

    def test_malformed_fingerprint_is_json_400(self, server):
        status, body = _get(server, "/cert/nothex")
        assert status == 400
        assert "error" in json.loads(body)

    def test_non_get_is_405(self, server):
        request = urllib.request.Request(
            server.url + "/census", data=b"{}", method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                status = response.status
        except urllib.error.HTTPError as error:
            status = error.code
        assert status == 405


class TestObservabilityPlane:
    def test_metrics_exports_serve_counters(self, server):
        _get(server, "/census")
        _get(server, "/metrics")  # seed the metrics endpoint's own family
        status, body = _get(server, "/metrics")
        assert status == 200
        text = body.decode()
        assert "repro_serve_requests_total" in text
        # Latency splits into one histogram family per endpoint.
        assert "repro_latency_serve_census_bucket" in text
        assert "repro_latency_serve_metrics_bucket" in text

    def test_healthz_carries_owner_health(self, server):
        status, body = _get(server, "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["corpus"] == "tiny"
        assert payload["uptime_seconds"] > 0

    def test_concurrent_scrapes_under_load(self, server, engine):
        """/metrics stays coherent while the query plane is saturated."""
        sample = json.loads(engine.respond("/sample"))
        paths = build_workload(sample, 300, DEFAULT_MIX, seed=7)
        scrapes = []

        def scrape():
            for _ in range(10):
                status, body = _get(server, "/metrics")
                scrapes.append((status, body))

        scrapers = [threading.Thread(target=scrape) for _ in range(3)]
        for thread in scrapers:
            thread.start()
        report = run_loadgen(server.url, concurrency=8, paths=paths)
        for thread in scrapers:
            thread.join(timeout=30)
        assert report.errors == 0
        assert len(scrapes) == 30
        for status, body in scrapes:
            assert status == 200
            assert b"repro_serve_requests_total" in body


class TestLoadgen:
    def test_build_workload_is_seeded_and_mixed(self, engine):
        sample = json.loads(engine.respond("/sample"))
        first = build_workload(sample, 100, seed=11)
        assert first == build_workload(sample, 100, seed=11)
        assert first != build_workload(sample, 100, seed=12)
        assert len(first) == 100
        kinds = {path.split("/")[1] for path in first}
        assert {"cert", "track", "key", "census"} <= kinds

    def test_empty_mix_is_rejected(self, engine):
        sample = json.loads(engine.respond("/sample"))
        with pytest.raises(ValueError):
            build_workload(sample, 10, {"cert": 0})

    def test_end_to_end_run_is_clean(self, server):
        report = run_loadgen(server.url, requests=200, concurrency=8)
        assert isinstance(report, LoadgenReport)
        assert report.requests == 200
        assert report.errors == 0
        assert report.by_status == {200: 200}
        assert 0.0 < report.p50_ms <= report.p99_ms <= report.max_ms
        assert report.qps > 0
        assert "qps" in report.render()

    def test_report_breaks_latency_down_by_endpoint(self, server):
        report = run_loadgen(server.url, requests=200, concurrency=8)
        assert report.by_endpoint
        assert sum(
            row["requests"] for row in report.by_endpoint.values()
        ) == report.requests
        for endpoint, row in report.by_endpoint.items():
            assert endpoint in {"cert", "key", "track", "census", "as"}
            assert 0.0 < row["p50_ms"] <= row["p99_ms"]
