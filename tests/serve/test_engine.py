"""Server-vs-batch parity: every endpoint equals the direct pipeline answer."""

import json
import random

import pytest

from repro.core.features import Feature
from repro.core.kernels import fused_group_consistency
from repro.core.linking import link_on_feature
from repro.core.tracking import summarize_as_assignment
from repro.serve import QueryEngine, QueryError
from repro.serve.engine import _format_ip, _parse_ip


def _payload(engine, path):
    return json.loads(engine.respond(path))


class TestAddressCodec:
    def test_round_trip(self):
        rng = random.Random(7)
        for _ in range(200):
            value = rng.randrange(1 << 32)
            assert _parse_ip(_format_ip(value)) == value

    def test_rejects_garbage(self):
        for text in ("10.0.0", "1.2.3.999", "certainly-not", ""):
            with pytest.raises(QueryError) as err:
                _parse_ip(text)
            assert err.value.status == 400


class TestCertParity:
    def test_random_fingerprints_match_dataset(self, engine, oracle):
        validation = oracle.validation()
        population = sorted(validation.results)
        rng = random.Random(2016)
        for fingerprint in rng.sample(population, 50):
            payload = _payload(engine, f"/cert/{fingerprint.hex()}")
            certificate = oracle.dataset.certificate(fingerprint)
            appearances = oracle.dataset.appearances(fingerprint)
            assert payload["fingerprint"] == fingerprint.hex()
            assert payload["subject_cn"] == certificate.subject_cn
            assert payload["issuer_cn"] == certificate.issuer_cn
            assert payload["spki"] == \
                certificate.public_key.fingerprint.hex()
            assert payload["validity_period_days"] == \
                certificate.validity_period_days
            assert payload["self_signed"] == certificate.is_self_signed()
            assert payload["status"] == \
                validation.results[fingerprint].status.value
            assert payload["invalid"] == (fingerprint in validation.invalid)
            assert payload["n_appearances"] == len(appearances)
            assert payload["n_ips"] == len({ip for _, ip in appearances})
            if appearances:
                first, last = oracle.dataset.first_last_day(fingerprint)
                assert payload["first_day"] == first
                assert payload["last_day"] == last
                assert payload["lifetime_days"] == \
                    oracle.dataset.lifetime_days(fingerprint)

    def test_unknown_fingerprint_is_404(self, engine):
        with pytest.raises(QueryError) as err:
            engine.respond("/cert/" + "00" * 32)
        assert err.value.status == 404

    def test_malformed_fingerprint_is_400(self, engine):
        for bogus in ("zz" * 32, "abcd"):
            with pytest.raises(QueryError) as err:
                engine.respond(f"/cert/{bogus}")
            assert err.value.status == 400


class TestKeyGroupParity:
    def test_groups_match_link_on_feature(self, engine, oracle):
        result = link_on_feature(
            oracle.dataset, list(oracle.unique_invalid), Feature.PUBLIC_KEY
        )
        assert result.groups, "tiny corpus should link key groups"
        rng = random.Random(2016)
        for group in rng.sample(result.groups, min(20, len(result.groups))):
            spki = oracle.dataset.certificate(
                group.fingerprints[0]
            ).public_key.fingerprint.hex()
            payload = _payload(engine, f"/key/{spki}/group")
            assert payload["size"] == len(group.fingerprints)
            assert payload["fingerprints"] == [
                fingerprint.hex()
                for fingerprint in
                group.fingerprints[:QueryEngine.MAX_LISTED]
            ]
            ip, p24, p16, asn = fused_group_consistency(
                oracle.dataset, list(group.fingerprints), oracle.as_of
            )
            assert payload["consistency"] == pytest.approx({
                "ip": ip, "prefix24": p24, "prefix16": p16, "as": asn,
            })

    def test_unknown_key_is_404(self, engine):
        with pytest.raises(QueryError) as err:
            engine.respond("/key/" + "11" * 32 + "/group")
        assert err.value.status == 404


class TestTrackParity:
    def test_random_ips_match_tracked_devices(self, engine, oracle):
        devices = oracle.tracked_devices()
        sighted = sorted({
            ip for device in devices for _, _, ip in device.sightings
        })
        rng = random.Random(2016)
        for ip in rng.sample(sighted, min(30, len(sighted))):
            payload = _payload(engine, f"/track/{_format_ip(ip)}")
            expected = [
                device for device in devices
                if any(s_ip == ip for _, _, s_ip in device.sightings)
            ]
            assert payload["n_devices"] == len(expected)
            by_key = {row["device_key"]: row for row in payload["devices"]}
            for device in expected:
                row = by_key[device.device_key]
                assert row["n_fingerprints"] == len(device.fingerprints)
                assert row["first_day"] == device.first_day
                assert row["last_day"] == device.last_day
                assert row["span_days"] == device.span_days
                assert row["trackable"] == device.is_trackable()

    def test_unsighted_ip_answers_empty(self, engine, oracle):
        devices = oracle.tracked_devices()
        sighted = {
            ip for device in devices for _, _, ip in device.sightings
        }
        unseen = next(
            value for value in range(1, 1 << 32) if value not in sighted
        )
        payload = _payload(engine, f"/track/{_format_ip(unseen)}")
        assert payload == {
            "ip": _format_ip(unseen), "n_devices": 0, "devices": [],
        }


class TestCensusParity:
    def test_headline_numbers_match_study(self, engine, oracle):
        from repro.core.analysis.issuers import (
            self_signed_fraction,
            top_issuers,
        )
        from repro.core.analysis.keys import key_sharing
        from repro.core.analysis.longevity import lifetimes, validity_periods

        validation = oracle.validation()
        payload = _payload(engine, "/census")
        assert payload["considered"] == validation.considered
        assert payload["invalid_fraction"] == \
            pytest.approx(validation.invalid_fraction)
        for name, population in (
            ("valid", sorted(validation.valid)),
            ("invalid", sorted(validation.invalid)),
        ):
            stats = payload[name]
            assert stats["n"] == len(population)
            assert stats["validity_median_days"] == pytest.approx(
                validity_periods(oracle.dataset, population).median
            )
            lifetime = lifetimes(oracle.dataset, population)
            assert stats["lifetime_median_days"] == \
                pytest.approx(lifetime.median_days)
            assert stats["single_scan_fraction"] == \
                pytest.approx(lifetime.single_scan_fraction)
            assert stats["key_shared_fraction"] == pytest.approx(
                key_sharing(oracle.dataset, population).shared_fraction
            )
            assert stats["self_signed_fraction"] == pytest.approx(
                self_signed_fraction(oracle.dataset, population)
            )
            assert stats["top_issuers"] == [
                [issuer, count] for issuer, count in
                top_issuers(oracle.dataset, population)
            ]

    def test_slice_equals_full_census_section(self, engine):
        census = _payload(engine, "/census")
        for name in ("valid", "invalid"):
            piece = _payload(engine, f"/census/{name}")
            expected = dict(census[name])
            expected.update(population=name, digest=census["digest"])
            assert piece == expected


class TestResultCache:
    def test_hot_responses_are_cached_bytes(self, engine):
        path = "/census"
        engine.respond(path)
        assert engine.cached(path) is not None
        assert engine.respond(path) == engine.cached(path)

    def test_cache_is_keyed_by_corpus_digest(self, engine):
        path = "/census"
        engine.respond(path)
        real = engine.digest
        try:
            engine.digest = "different-corpus"
            assert engine.cached(path) is None
        finally:
            engine.digest = real
        assert engine.cached(path) is not None

    def test_cache_is_bounded(self, serve_paths):
        small = QueryEngine.open(
            serve_paths["corpus"], serve_paths["environment"],
            cache_dir=str(serve_paths["cache"]), result_cache_size=2,
        )
        sample = json.loads(small.respond("/sample"))
        for fingerprint in sample["fingerprints"][:4]:
            small.respond(f"/cert/{fingerprint}")
        cached = sum(
            small.cached(f"/cert/{fingerprint}") is not None
            for fingerprint in sample["fingerprints"][:4]
        )
        assert cached <= 2
        small.close()


class TestASReassignmentParity:
    def test_summaries_match_tracking_oracle(self, engine, oracle):
        from repro.serve.engine import REASSIGNMENT_MIN_DEVICES

        stats_by_as = summarize_as_assignment(
            oracle.tracked_devices(), oracle.as_of
        )
        served = {
            asn: stats for asn, stats in stats_by_as.items()
            if stats.n_devices >= REASSIGNMENT_MIN_DEVICES
        }
        assert served, "tiny corpus must seed at least one servable AS"
        for asn, stats in served.items():
            payload = _payload(engine, f"/as/{asn}/reassignment")
            assert payload["asn"] == asn
            assert payload["n_devices"] == stats.n_devices
            assert payload["n_static"] == stats.n_static
            assert payload["n_fully_dynamic"] == stats.n_fully_dynamic
            assert payload["static_fraction"] == stats.static_fraction
            assert payload["dynamic_share"] == stats.dynamic_share
            assert payload["mostly_static"] == stats.is_mostly_static()
            assert payload["highly_dynamic"] == stats.is_highly_dynamic

    def test_thin_population_is_404(self, engine, oracle):
        from repro.serve.engine import REASSIGNMENT_MIN_DEVICES

        stats_by_as = summarize_as_assignment(
            oracle.tracked_devices(), oracle.as_of
        )
        thin = [
            asn for asn, stats in stats_by_as.items()
            if stats.n_devices < REASSIGNMENT_MIN_DEVICES
        ]
        unseen = next(
            value for value in range(64999, 66000)
            if value not in stats_by_as
        )
        for asn in thin + [unseen]:
            with pytest.raises(QueryError) as err:
                engine.respond(f"/as/{asn}/reassignment")
            assert err.value.status == 404

    def test_malformed_asn_is_400(self, engine):
        for text in ("notanas", "-5", "1.5"):
            with pytest.raises(QueryError) as err:
                engine.respond(f"/as/{text}/reassignment")
            assert err.value.status == 400


class TestSample:
    def test_sample_is_deterministic_and_resolvable(self, engine):
        first = _payload(engine, "/sample")
        assert first == _payload(engine, "/sample")
        assert first["fingerprints"] and first["keys"] and first["ips"]
        engine.respond(f"/cert/{first['fingerprints'][0]}")
        engine.respond(f"/key/{first['keys'][0]}/group")
        engine.respond(f"/track/{first['ips'][0]}")

    def test_unknown_path_is_404(self, engine):
        for path in ("/", "/nope", "/cert", "/key/aa/groups", "/census/x"):
            with pytest.raises(QueryError) as err:
                engine.respond(path)
            assert err.value.status == 404


class TestPoolParity:
    def test_pooled_heavy_queries_match_serial(self, serve_paths, engine):
        pooled = QueryEngine.open(
            serve_paths["corpus"], serve_paths["environment"],
            workers=2, cache_dir=str(serve_paths["cache"]),
        )
        pooled.warm()
        try:
            assert pooled.pool is not None
            assert pooled.respond("/census") == engine.respond("/census")
            sample = json.loads(engine.respond("/sample"))
            for key in sample["keys"][:3]:
                assert pooled.respond(f"/key/{key}/group") == \
                    engine.respond(f"/key/{key}/group")
        finally:
            pooled.close()
