"""The sharded fleet: split determinism, standalone shards, byte parity.

The contract under test is the strongest one the router makes: every
public endpoint answered through the K-shard fleet is **byte-identical**
to the single server over the whole corpus — including 4xx bodies.
"""

import asyncio
import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.io import (
    FleetOwners,
    load_dataset,
    load_fleet_manifest,
    split_corpus,
    verify_fleet,
)
from repro.io.backends import MappedBackend
from repro.obs.live import LiveServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.serve import FleetRouter, QueryEngine, QueryServer

SHARDS = 2


@pytest.fixture(scope="module")
def fleet(serve_paths, tmp_path_factory):
    out = tmp_path_factory.mktemp("fleet")
    return split_corpus(
        serve_paths["corpus"], serve_paths["environment"], out,
        shards=SHARDS, cache_dir=str(serve_paths["cache"]),
    )


@pytest.fixture(scope="module")
def loop():
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    yield loop
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=5)


def _start(loop, coro):
    return asyncio.run_coroutine_threadsafe(coro, loop).result(timeout=60)


@pytest.fixture(scope="module")
def single_server(engine, loop):
    server = QueryServer(engine)
    _start(loop, server.start())
    yield server
    _start(loop, server.stop())


@pytest.fixture(scope="module")
def shard_servers(fleet, serve_paths, loop):
    servers = []
    for info in fleet.shard_infos:
        shard_engine = QueryEngine.open(
            info.path, serve_paths["environment"],
            cache_dir=str(serve_paths["cache"]),
        )
        shard_engine.warm()
        live = LiveServer(
            Tracer(process=f"shard{info.index}"), MetricsRegistry()
        )
        server = QueryServer(shard_engine, live=live)
        _start(loop, server.start())
        servers.append(server)
    yield servers
    for server in servers:
        _start(loop, server.stop())


@pytest.fixture(scope="module")
def router(fleet, shard_servers, loop):
    router = FleetRouter.open(
        fleet.directory, [server.url for server in shard_servers]
    )
    _start(loop, router.start())
    yield router
    _start(loop, router.stop())


def _get(url, path):
    try:
        with urllib.request.urlopen(url + path, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestSplit:
    def test_split_is_deterministic(self, fleet, serve_paths,
                                    tmp_path_factory):
        again = split_corpus(
            serve_paths["corpus"], serve_paths["environment"],
            tmp_path_factory.mktemp("fleet-again"),
            shards=SHARDS, cache_dir=str(serve_paths["cache"]),
        )
        assert [info.digest for info in again.shard_infos] == \
            [info.digest for info in fleet.shard_infos]
        assert again.parent_digest == fleet.parent_digest
        assert again.link_plan == fleet.link_plan

    def test_shards_are_standalone_mapped_corpora(self, fleet, serve_paths):
        parent = load_dataset(serve_paths["corpus"])
        seen = set()
        observations = 0
        for info in fleet.shard_infos:
            dataset = load_dataset(info.path)
            assert isinstance(dataset.backend, MappedBackend)
            shard_fps = set(dataset.certificates)
            assert not (shard_fps & seen)  # disjoint partition
            seen |= shard_fps
            assert len(dataset.scans) == len(parent.scans)
            observations += dataset.n_observations
        assert seen == set(parent.certificates)
        assert observations == parent.n_observations

    def test_owners_sidecar_routes_to_the_holding_shard(self, fleet,
                                                        serve_paths):
        owners = FleetOwners(fleet.owners_path)
        try:
            members = [
                set(load_dataset(info.path).certificates)
                for info in fleet.shard_infos
            ]
            for fingerprint in load_dataset(serve_paths["corpus"]).certificates:
                shard = owners.owner_of_cert(fingerprint)
                assert fingerprint in members[shard]
        finally:
            owners.close()

    def test_manifest_round_trips(self, fleet):
        manifest = load_fleet_manifest(fleet.directory)
        assert manifest.shards == SHARDS
        assert manifest.parent_digest == fleet.parent_digest
        verify_fleet(manifest)


class TestRouterParity:
    def test_every_endpoint_matches_the_single_server_bytes(
        self, router, single_server, engine
    ):
        sample = json.loads(engine.respond("/sample"))
        paths = ["/census", "/census/valid", "/census/invalid", "/sample"]
        paths += [f"/cert/{fp}" for fp in sample["fingerprints"][:20]]
        paths += [f"/key/{key}/group" for key in sample["keys"][:20]]
        paths += [f"/track/{ip}" for ip in sample["ips"][:20]]
        paths += [
            f"/as/{asn}/reassignment" for asn in sample["asns"][:10]
        ]
        # Error paths must match byte-for-byte too.
        paths += [
            "/cert/nothex",
            "/cert/" + "00" * 32,
            "/key/feedbeef/group",
            "/track/not-an-ip",
            "/as/notanas/reassignment",
            "/as/64999/reassignment",
            "/certainly/not/served",
        ]
        for path in paths:
            single = _get(single_server.url, path)
            fleet = _get(router.url, path)
            assert fleet == single, path

    def test_healthz_reports_every_shard(self, router):
        status, body = _get(router.url, "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert [entry["ok"] for entry in payload["shards"]] == \
            [True] * SHARDS

    def test_metrics_exports_upstream_histograms(self, router):
        _get(router.url, "/census")
        status, body = _get(router.url, "/metrics")
        assert status == 200
        text = body.decode()
        assert "repro_router_requests_total" in text
        for shard in range(SHARDS):
            assert f"repro_latency_router_upstream_shard{shard}" in text


class TestRouterFailureModes:
    @pytest.fixture()
    def degraded_router(self, fleet, shard_servers, loop):
        """Shard 0 live, shard 1 pointing at a port nobody listens on."""
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead = f"http://127.0.0.1:{probe.getsockname()[1]}"
        router = FleetRouter.open(
            fleet.directory, [shard_servers[0].url, dead]
        )
        _start(loop, router.start())
        yield router
        _start(loop, router.stop())

    def test_dead_shard_degrades_health(self, degraded_router):
        status, body = _get(degraded_router.url, "/healthz")
        assert status == 503
        payload = json.loads(body)
        assert payload["status"] == "degraded"
        assert payload["shards"][1]["ok"] is False

    def test_live_shard_lookups_keep_answering(
        self, degraded_router, fleet, serve_paths, engine
    ):
        owners = FleetOwners(fleet.owners_path)
        try:
            by_owner = {}
            for fingerprint in sorted(
                load_dataset(serve_paths["corpus"]).certificates
            ):
                by_owner.setdefault(
                    owners.owner_of_cert(fingerprint), fingerprint
                )
        finally:
            owners.close()
        live_fp, dead_fp = by_owner[0], by_owner[1]
        status, body = _get(degraded_router.url, f"/cert/{live_fp.hex()}")
        assert status == 200
        assert body == engine.respond(f"/cert/{live_fp.hex()}")
        status, body = _get(degraded_router.url, f"/cert/{dead_fp.hex()}")
        assert status == 502
        assert "unavailable" in json.loads(body)["error"]

    def test_scatter_endpoints_fail_loud_not_wrong(self, degraded_router):
        # A census over half the corpus would be silently wrong; the
        # router must refuse rather than merge a partial fleet.
        status, body = _get(degraded_router.url, "/census")
        assert status == 502
        assert "error" in json.loads(body)

    def test_digest_mismatch_is_rejected_at_boot(
        self, fleet, shard_servers, tmp_path
    ):
        import shutil

        clone = tmp_path / "tampered"
        shutil.copytree(fleet.directory, clone)
        victim = clone / fleet.shard_infos[0].path.name
        blob = bytearray(victim.read_bytes())
        blob[100] ^= 0xFF
        victim.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="digest mismatch"):
            FleetRouter.open(
                clone, [server.url for server in shard_servers]
            )
