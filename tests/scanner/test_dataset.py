"""Tests for the columnar ScanDataset core and its observation index.

The index-backed lookups must return byte-identical results to the naive
row-path implementations they replaced; the naive versions live here as
reference oracles.
"""

import os

import pytest

from repro.scanner.columns import ObservationColumns, ObservationIndex
from repro.scanner.dataset import ScanDataset
from repro.scanner.records import Observation, Scan
from repro.tls.handshake import HandshakeRecord

from ..core.helpers import DAY0, make_cert


# --- naive row-path oracles (the pre-columnar implementations) -----------------

def naive_appearances(dataset, fingerprint):
    sightings = []
    for scan_idx, scan in enumerate(dataset.scans):
        for obs in scan.observations:
            if obs.fingerprint == fingerprint:
                sightings.append((scan_idx, obs.ip))
    return sightings


def naive_handshake_of(dataset, fingerprint):
    for scan in dataset.scans:
        for obs in scan.observations:
            if obs.fingerprint == fingerprint and obs.handshake is not None:
                return obs.handshake
    return None


def naive_entities_of(dataset, fingerprint):
    entities = set()
    for scan in dataset.scans:
        for obs in scan.observations:
            if obs.fingerprint == fingerprint and obs.entity:
                entities.add(obs.entity)
    return entities


def handshake_corpus():
    """A hand-built corpus exercising handshakes, entities, duplicates."""
    cert_a = make_cert(cn="a", key_seed=1)
    cert_b = make_cert(cn="b", key_seed=2)
    cert_c = make_cert(cn="c", key_seed=3)
    hs_x = HandshakeRecord(version=0x0303, cipher=0xC013, tcp_window=29200, ip_ttl=64)
    hs_y = HandshakeRecord(version=0x0301, cipher=0x002F, tcp_window=14600, ip_ttl=255)
    scans = [
        Scan(day=DAY0, source="umich", observations=[
            Observation(10, cert_a.fingerprint, "device:1"),
            Observation(11, cert_a.fingerprint, "device:2", hs_x),
            Observation(20, cert_b.fingerprint, "", hs_y),
        ]),
        Scan(day=DAY0 + 7, source="umich", observations=[
            Observation(12, cert_a.fingerprint, "device:1", hs_y),
            Observation(20, cert_b.fingerprint, "website:5"),
        ]),
        Scan(day=DAY0 + 7, source="rapid7", observations=[
            Observation(13, cert_a.fingerprint),
        ]),
    ]
    certificates = {c.fingerprint: c for c in (cert_a, cert_b, cert_c)}
    return ScanDataset(scans, certificates), cert_a, cert_b, cert_c


class TestIndexMatchesNaive:
    """Satellite regression: index lookups == the naive implementations."""

    def test_handshake_of_matches_naive(self):
        dataset, *certs = handshake_corpus()
        for cert in certs:
            assert dataset.handshake_of(cert.fingerprint) == naive_handshake_of(
                dataset, cert.fingerprint
            )

    def test_entities_of_matches_naive(self):
        dataset, *certs = handshake_corpus()
        for cert in certs:
            assert dataset.entities_of(cert.fingerprint) == naive_entities_of(
                dataset, cert.fingerprint
            )

    def test_appearances_match_naive(self):
        dataset, *certs = handshake_corpus()
        for cert in certs:
            assert dataset.appearances(cert.fingerprint) == naive_appearances(
                dataset, cert.fingerprint
            )

    def test_unknown_fingerprint(self):
        dataset, *_ = handshake_corpus()
        missing = b"\x00" * 32
        assert dataset.appearances(missing) == []
        assert dataset.handshake_of(missing) is None
        assert dataset.entities_of(missing) == set()
        with pytest.raises(KeyError):
            dataset.first_last_day(missing)

    def test_whole_corpus_on_seeded_world(self, tiny_synthetic):
        dataset = tiny_synthetic.scans
        for fingerprint in list(dataset.certificates)[:50]:
            assert dataset.handshake_of(fingerprint) == naive_handshake_of(
                dataset, fingerprint
            )
            assert dataset.entities_of(fingerprint) == naive_entities_of(
                dataset, fingerprint
            )
            assert dataset.appearances(fingerprint) == naive_appearances(
                dataset, fingerprint
            )


class TestColumnarParity:
    def test_verify_index_parity_on_seeded_world(self, tiny_synthetic):
        # The built-in parity checker walks *every* certificate.
        tiny_synthetic.scans.verify_index_parity()

    def test_parity_env_knob_triggers_check(self):
        dataset, *_ = handshake_corpus()
        env_key = "REPRO_DATASET_PARITY"
        previous = os.environ.get(env_key)
        os.environ[env_key] = "1"
        try:
            assert dataset.appearances(next(iter(dataset.certificates))) is not None
        finally:
            if previous is None:
                del os.environ[env_key]
            else:
                os.environ[env_key] = previous

    def test_columns_round_trip_rows(self):
        dataset, *_ = handshake_corpus()
        columns = dataset.columns
        position = 0
        for scan in dataset.scans:
            for obs in scan.observations:
                assert columns.observation_at(position) == obs
                position += 1
        assert position == len(columns)

    def test_index_positions_are_contiguous_and_complete(self):
        dataset, *_ = handshake_corpus()
        index = ObservationIndex(dataset.columns)
        seen = []
        for cert_id in range(len(dataset.columns.fingerprints)):
            seen.extend(index.positions(cert_id))
        assert sorted(seen) == list(range(len(dataset.columns)))


class TestColumnsStandalone:
    def test_interning_tables(self):
        dataset, cert_a, cert_b, _ = handshake_corpus()
        columns = ObservationColumns.from_scans(dataset.scans)
        assert columns.fingerprints[0] == cert_a.fingerprint
        assert columns.entities[0] == ""
        assert len(columns.handshakes) == 2  # hs_x and hs_y interned once
        assert len(columns) == dataset.n_observations

    def test_sighting_count(self):
        dataset, cert_a, cert_b, cert_c = handshake_corpus()
        index = dataset.index
        ids = dataset.columns.fingerprint_ids
        assert index.sighting_count(ids[cert_a.fingerprint]) == 4
        assert index.sighting_count(ids[cert_b.fingerprint]) == 2
        assert cert_c.fingerprint not in ids


class TestParallelCollection:
    def test_collect_workers_identical(self):
        from repro.internet.population import WorldConfig, build_world
        from repro.scanner.campaign import ScanCampaign

        config = WorldConfig(
            seed=11, n_devices=40, n_websites=10, n_generic_access=10,
            n_enterprise=3, n_hosting=3, unused_roots=0,
        )
        world = build_world(config)
        days = tuple(config.start_day + offset for offset in range(100, 120, 4))
        campaign = ScanCampaign("par", days)
        serial = ScanDataset.collect(world, [campaign])
        fanned = ScanDataset.collect(world, [campaign], workers=2)
        assert len(serial.scans) == len(fanned.scans)
        for left, right in zip(serial.scans, fanned.scans):
            assert left.observations == right.observations
        assert list(serial.certificates) == list(fanned.certificates)
