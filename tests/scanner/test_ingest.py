"""O(day) incremental ingestion: delta appends and delta-merged kernels.

The acceptance surface of the append path: a container grown by
:func:`repro.io.store.append_shards` must be *bitwise identical* to a
full from-scratch rebuild that included the appended day(s) — and every
kernel delta-merged through the ``extended`` constructors (CSR index,
interval arrays, feature matrix) must be bitwise identical to a cold
build over the grown corpus.  The lineage-aware artifact cache must
serve an appended corpus from its base's artifacts and persist a
``.rpa`` byte-identical to a cold store.
"""

import pickle

import pytest

from repro.internet.population import WorldConfig, build_world
from repro.io import load_dataset
from repro.io.artifacts import ArtifactCache
from repro.io.store import StreamingDatasetWriter, append_shards
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry
from repro.scanner.campaign import ScanCampaign
from repro.scanner.columns import CertIntervals, RowDelta
from repro.scanner.engine import ScanEngine

CONFIG = WorldConfig(
    seed=23, n_devices=60, n_websites=18, n_generic_access=12,
    n_enterprise=4, n_hosting=3, unused_roots=2,
)

#: Six scan days; "beta" only scans every other one, so appended days
#: exercise both the one-shard and two-shard cases.
DAYS = tuple(CONFIG.start_day + offset for offset in range(100, 148, 8))


def _schedule(campaigns):
    return sorted(
        ((day, campaign) for campaign in campaigns for day in campaign.scan_days),
        key=lambda task: (task[0], task[1].name),
    )


def _write(world, campaigns, path, days, collect_handshakes=False):
    """Write the corpus covering exactly ``days`` (a fresh engine).

    Per-day RNG streams are keyed by (world seed, campaign, day), so an
    engine that scans only a subset of the schedule emits shards — and a
    certificate store — identical to the corresponding slice of a full
    run.  This is the regime real incremental ingestion lives in: the
    base corpus knows nothing about days it has not scanned.
    """
    engine = ScanEngine(world, collect_handshakes=collect_handshakes)
    writer = StreamingDatasetWriter(path)
    for day, campaign in _schedule(campaigns):
        if day in days:
            writer.add_shard(engine.run_shard(campaign, day))
    return writer.close(engine.certificate_store)


def _day_shards(world, campaigns, days, collect_handshakes=False):
    """Scan only ``days``; return their shards plus the day certificates."""
    engine = ScanEngine(world, collect_handshakes=collect_handshakes)
    shards = [
        engine.run_shard(campaign, day)
        for day, campaign in _schedule(campaigns) if day in days
    ]
    return shards, dict(engine.certificate_store)


@pytest.fixture(scope="module")
def world():
    return build_world(CONFIG)


@pytest.fixture(scope="module")
def campaigns():
    return (ScanCampaign("alpha", DAYS), ScanCampaign("beta", DAYS[::2]))


@pytest.fixture(scope="module")
def corpus(world, campaigns, tmp_path_factory):
    """Full corpus, base corpus missing the last day, and its tail."""
    directory = tmp_path_factory.mktemp("ingest")
    full = directory / "full.rpz"
    base = directory / "base.rpz"
    full_digest = _write(world, campaigns, full, set(DAYS))
    _write(world, campaigns, base, set(DAYS[:-1]))
    tail, certificates = _day_shards(world, campaigns, {DAYS[-1]})
    return {
        "dir": directory, "full": full, "base": base,
        "full_digest": full_digest, "tail": tail,
        "certificates": certificates,
    }


@pytest.fixture()
def metrics():
    registry = MetricsRegistry()
    obs_runtime.activate(metrics=registry)
    try:
        yield registry
    finally:
        obs_runtime.deactivate()


class TestAppendBytes:
    def test_append_one_day_bitwise_identical(self, corpus, tmp_path, metrics):
        grown = tmp_path / "grown.rpz"
        result = append_shards(
            corpus["base"], corpus["tail"], corpus["certificates"], grown
        )
        assert grown.read_bytes() == corpus["full"].read_bytes()
        assert result.digest == corpus["full_digest"]
        assert result.new_days == (DAYS[-1],)
        assert result.bytes_reused > 0
        assert metrics.counters["ingest.days"] == 1
        assert metrics.counters["ingest.rows"] == (
            result.n_observations - result.base_observations
        )

    def test_three_day_chain_bitwise_identical(
        self, world, campaigns, tmp_path
    ):
        full = tmp_path / "full.rpz"
        base = tmp_path / "day0.rpz"
        _write(world, campaigns, full, set(DAYS))
        _write(world, campaigns, base, set(DAYS[:-3]))
        current = base
        for chain_step, day in enumerate(DAYS[-3:]):
            shards, day_certs = _day_shards(world, campaigns, {day})
            grown = tmp_path / f"day{chain_step + 1}.rpz"
            append_shards(current, shards, day_certs, grown)
            current = grown
        assert current.read_bytes() == full.read_bytes()

    def test_handshake_corpus_appends_bitwise(
        self, world, campaigns, tmp_path
    ):
        full = tmp_path / "full.rpz"
        base = tmp_path / "base.rpz"
        _write(world, campaigns, full, set(DAYS), collect_handshakes=True)
        _write(
            world, campaigns, base, set(DAYS[:-1]), collect_handshakes=True
        )
        tail, certificates = _day_shards(
            world, campaigns, {DAYS[-1]}, collect_handshakes=True
        )
        grown = tmp_path / "grown.rpz"
        append_shards(base, tail, certificates, grown)
        assert grown.read_bytes() == full.read_bytes()

    def test_out_of_order_day_rejected(self, corpus, tmp_path):
        # The full corpus already contains the tail's day: appending it
        # again does not sort after the last (day, source) key.
        with pytest.raises(ValueError, match="strictly increasing"):
            append_shards(
                corpus["full"], corpus["tail"], corpus["certificates"],
                tmp_path / "bad.rpz",
            )
        assert not (tmp_path / "bad.rpz").exists()

    def test_missing_der_rejected(self, corpus, tmp_path):
        base = load_dataset(corpus["base"])
        new_fps = {
            fingerprint
            for shard in corpus["tail"]
            for fingerprint in shard.fingerprints
        } - set(base.columns.fingerprints)
        assert new_fps, "tail day must introduce at least one certificate"
        with pytest.raises(ValueError, match="missing certificate DER"):
            append_shards(
                corpus["base"], corpus["tail"], {}, tmp_path / "bad.rpz"
            )
        assert not (tmp_path / "bad.rpz").exists()

    def test_legacy_archive_rejected(self, corpus, tmp_path):
        from repro.io import save_dataset_v2

        legacy = tmp_path / "legacy.rpz"
        save_dataset_v2(load_dataset(corpus["base"]), legacy)
        with pytest.raises(ValueError, match="not a (segment|format 3)"):
            append_shards(
                legacy, corpus["tail"], corpus["certificates"],
                tmp_path / "bad.rpz",
            )


def _assert_kernels_bitwise_equal(grown, cold):
    index, cold_index = grown._observation_index, cold.index
    assert memoryview(index._offsets).tobytes() == \
        memoryview(cold_index._offsets).tobytes()
    assert memoryview(index._order).tobytes() == \
        memoryview(cold_index._order).tobytes()
    intervals, cold_intervals = grown._intervals, cold.intervals
    for name in CertIntervals.__slots__:
        assert memoryview(getattr(intervals, name)).tobytes() == \
            memoryview(getattr(cold_intervals, name)).tobytes()
    matrix, cold_matrix = grown._feature_matrix, cold.feature_matrix
    assert matrix.fingerprints == cold_matrix.fingerprints
    assert matrix.values == cold_matrix.values
    # Interned value tables must also *pickle* identically (the .rpa
    # encoding), which pins down memoized object sharing.
    assert pickle.dumps(matrix.values, 4) == pickle.dumps(cold_matrix.values, 4)
    for feature, column in matrix.raw_ids.items():
        assert column.tobytes() == cold_matrix.raw_ids[feature].tobytes()
    for feature, column in matrix.linkable_ids.items():
        assert column.tobytes() == cold_matrix.linkable_ids[feature].tobytes()


class TestExtendedKernels:
    def test_extend_from_shard_matches_cold_build(self, corpus, tmp_path):
        base = load_dataset(corpus["base"])
        base.index, base.intervals, base.feature_matrix  # build all kernels
        grown = base.extend_from_shard(
            corpus["tail"], corpus["certificates"], tmp_path / "grown.rpz"
        )
        cold = load_dataset(tmp_path / "grown.rpz")
        _assert_kernels_bitwise_equal(grown, cold)

    def test_extend_with_workers_matches_serial(self, corpus, tmp_path):
        base = load_dataset(corpus["base"])
        base.index, base.intervals, base.feature_matrix
        serial = base.extend_from_shard(
            corpus["tail"], corpus["certificates"], tmp_path / "serial.rpz"
        )
        fanned = base.extend_from_shard(
            corpus["tail"], corpus["certificates"], tmp_path / "fanned.rpz",
            workers=4,
        )
        assert (tmp_path / "serial.rpz").read_bytes() == \
            (tmp_path / "fanned.rpz").read_bytes()
        for left, right in (
            (serial._feature_matrix, fanned._feature_matrix),
        ):
            assert left.values == right.values
            assert pickle.dumps(left.values, 4) == pickle.dumps(right.values, 4)
            for feature, column in left.raw_ids.items():
                assert column.tobytes() == right.raw_ids[feature].tobytes()

    def test_extend_requires_mapped_dataset(self, corpus, tmp_path):
        from repro.io import save_dataset_v2

        legacy = tmp_path / "legacy.rpz"
        save_dataset_v2(load_dataset(corpus["base"]), legacy)
        with pytest.raises(ValueError, match="mapped"):
            load_dataset(legacy).extend_from_shard(
                corpus["tail"], corpus["certificates"], tmp_path / "x.rpz"
            )

    def test_row_delta_validates_base(self, corpus):
        grown = load_dataset(corpus["full"])
        with pytest.raises(ValueError, match="beyond the corpus end"):
            RowDelta(grown.columns, len(grown.columns) + 1, 0)
        with pytest.raises(ValueError, match="certificate table"):
            RowDelta(
                grown.columns, 0, len(grown.columns.fingerprints) + 1
            )


class TestCacheLineage:
    def test_extended_load_and_rpa_byte_parity(
        self, corpus, tmp_path, metrics
    ):
        cache = ArtifactCache(tmp_path / "cache")
        base = load_dataset(corpus["base"])
        base.index, base.intervals, base.feature_matrix
        cache.store(base)
        base.extend_from_shard(
            corpus["tail"], corpus["certificates"], tmp_path / "grown.rpz",
            cache=cache,
        )

        fresh = load_dataset(tmp_path / "grown.rpz")
        loaded = cache.load(fresh)
        assert loaded.kernels
        assert metrics.counters["artifacts.extended"] == 1
        digest = fresh.corpus_digest()
        assert cache.path_for(digest).exists()

        # The persisted artifact is byte-identical to a cold store.
        cold_cache = ArtifactCache(tmp_path / "cold")
        cold = load_dataset(tmp_path / "grown.rpz")
        cold.index, cold.intervals, cold.feature_matrix
        cold_cache.store(cold)
        assert cache.path_for(digest).read_bytes() == \
            cold_cache.path_for(digest).read_bytes()

        # And a second load is a plain hit, not another merge.
        again = cache.load(load_dataset(tmp_path / "grown.rpz"))
        assert again.kernels
        assert metrics.counters["artifacts.hit"] == 1

    def test_chain_walks_to_nearest_cached_ancestor(
        self, world, campaigns, tmp_path, metrics
    ):
        cache = ArtifactCache(tmp_path / "cache")
        base_path = tmp_path / "day0.rpz"
        _write(world, campaigns, base_path, set(DAYS[:-2]))
        base = load_dataset(base_path)
        base.index, base.intervals, base.feature_matrix
        cache.store(base)
        shards, day_certs = _day_shards(world, campaigns, {DAYS[-2]})
        mid = base.extend_from_shard(
            shards, day_certs, tmp_path / "day1.rpz", cache=cache,
        )
        shards, day_certs = _day_shards(world, campaigns, {DAYS[-1]})
        mid.extend_from_shard(
            shards, day_certs, tmp_path / "day2.rpz", cache=cache,
        )
        # Only day0's artifact exists; day2's lineage chain must reach
        # back to it (its direct base, day1, was never stored).
        fresh = load_dataset(tmp_path / "day2.rpz")
        loaded = cache.load(fresh)
        assert loaded.kernels
        assert metrics.counters["artifacts.extended"] == 1
        cold = load_dataset(tmp_path / "day2.rpz")
        _assert_kernels_bitwise_equal(fresh, cold)

    def test_corrupt_base_artifact_falls_back_to_miss(
        self, corpus, tmp_path, metrics
    ):
        cache = ArtifactCache(tmp_path / "cache")
        base = load_dataset(corpus["base"])
        base.index, base.intervals, base.feature_matrix
        cache.store(base)
        base.extend_from_shard(
            corpus["tail"], corpus["certificates"], tmp_path / "grown.rpz",
            cache=cache,
        )
        artifact = cache.path_for(base.corpus_digest())
        artifact.write_bytes(artifact.read_bytes()[: 1 << 12])
        loaded = cache.load(load_dataset(tmp_path / "grown.rpz"))
        assert not loaded.kernels
        assert metrics.counters["artifacts.invalidated"] == 1

    def test_corrupt_lineage_sidecar_reads_as_miss(self, corpus, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cache.record_lineage("aa" * 32, "bb" * 32)
        cache._lineage_path().write_text("{not json")
        assert cache._read_lineage() == {}
        base = load_dataset(corpus["base"])
        loaded = cache.load(base)
        assert not loaded.kernels


class TestCompaction:
    """`ArtifactCache.compact`: flatten a delta chain into a direct hit."""

    def _chain(self, world, campaigns, tmp_path, cache):
        """base(store) -> day1 -> day2, artifacts only at the base."""
        base_path = tmp_path / "day0.rpz"
        _write(world, campaigns, base_path, set(DAYS[:-2]))
        base = load_dataset(base_path)
        base.index, base.intervals, base.feature_matrix
        cache.store(base)
        shards, day_certs = _day_shards(world, campaigns, {DAYS[-2]})
        mid = base.extend_from_shard(
            shards, day_certs, tmp_path / "day1.rpz", cache=cache,
        )
        shards, day_certs = _day_shards(world, campaigns, {DAYS[-1]})
        mid.extend_from_shard(
            shards, day_certs, tmp_path / "day2.rpz", cache=cache,
        )
        return tmp_path / "day2.rpz"

    def test_compact_flattens_and_prunes_lineage(
        self, world, campaigns, tmp_path, metrics
    ):
        import json as json_module

        cache = ArtifactCache(tmp_path / "cache")
        grown_path = self._chain(world, campaigns, tmp_path, cache)
        fresh = load_dataset(grown_path)
        digest = fresh.corpus_digest()
        assert cache.chain_length(digest) == 2

        path = cache.compact(fresh)
        assert path == cache.path_for(digest)
        assert path.exists()
        assert "kernels" in cache.status(digest)["sections"]
        assert cache.chain_length(digest) == 0
        lineage = json_module.loads(
            (tmp_path / "cache" / "lineage.json").read_text()
        )
        assert digest not in lineage
        assert not lineage  # every chained ancestor entry pruned too
        assert metrics.counters["artifacts.compacted"] == 1

        # A flat corpus compacts as a no-op.
        assert cache.compact(load_dataset(grown_path)) == path
        assert metrics.counters["artifacts.compacted"] == 1

        # And the next load is a direct hit, no chain walk.
        loaded = cache.load(load_dataset(grown_path))
        assert loaded.kernels
        assert metrics.counters["artifacts.hit"] >= 1

    def test_compact_cold_builds_missing_kernels(
        self, world, campaigns, tmp_path
    ):
        corpus_path = tmp_path / "flat.rpz"
        _write(world, campaigns, corpus_path, set(DAYS[:-2]))
        cache = ArtifactCache(tmp_path / "cache")
        fresh = load_dataset(corpus_path)
        path = cache.compact(fresh)
        assert path is not None and path.exists()
        assert "kernels" in cache.status(fresh.corpus_digest())["sections"]

    def test_future_appends_restart_the_chain(
        self, world, campaigns, tmp_path
    ):
        cache = ArtifactCache(tmp_path / "cache")
        base_path = tmp_path / "day0.rpz"
        _write(world, campaigns, base_path, set(DAYS[:-1]))
        base = load_dataset(base_path)
        base_digest = base.corpus_digest()
        cache.compact(base)
        shards, day_certs = _day_shards(world, campaigns, {DAYS[-1]})
        base.extend_from_shard(
            shards, day_certs, tmp_path / "day1.rpz", cache=cache,
        )
        grown = load_dataset(tmp_path / "day1.rpz")
        digest = grown.corpus_digest()
        assert cache.chain_length(digest) == 1
        entry = cache._read_lineage()[digest]
        assert entry["base"] == base_digest
        assert entry["chain"] == [base_digest]
