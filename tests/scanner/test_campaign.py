"""Tests for scan schedules and campaign blind spots."""

from repro.net.ip import Prefix, str_to_ip
from repro.scanner.campaign import (
    ScanCampaign,
    make_campaigns,
    rapid7_schedule,
    umich_schedule,
)
from repro.simtime import RAPID7_FIRST_SCAN_DAY, UMICH_FIRST_SCAN_DAY


class TestSchedules:
    def test_umich_starts_on_paper_date(self):
        assert umich_schedule()[0] == UMICH_FIRST_SCAN_DAY

    def test_rapid7_starts_on_paper_date(self):
        assert rapid7_schedule()[0] == RAPID7_FIRST_SCAN_DAY

    def test_rapid7_is_weekly(self):
        days = rapid7_schedule()
        gaps = {b - a for a, b in zip(days, days[1:])}
        assert gaps == {7}

    def test_rapid7_count_close_to_paper(self):
        # The paper has 74 Rapid7 scans over the same window.
        assert 70 <= len(rapid7_schedule()) <= 78

    def test_umich_count_close_to_paper(self):
        # The paper has 156 University of Michigan scans.
        assert 130 <= len(umich_schedule()) <= 180

    def test_umich_irregular_with_daily_streak_and_long_gaps(self):
        days = umich_schedule()
        gaps = [b - a for a, b in zip(days, days[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert 3.0 <= mean_gap <= 5.0          # paper: 3.83-day average
        assert max(gaps) >= 12                  # paper: gaps up to 24 days
        # The 42-day daily streak.
        longest_daily = streak = 0
        for gap in gaps:
            streak = streak + 1 if gap == 1 else 0
            longest_daily = max(longest_daily, streak)
        assert longest_daily >= 30

    def test_schedules_deterministic(self):
        assert umich_schedule() == umich_schedule()

    def test_stride_subsamples(self):
        full = umich_schedule()
        strided = umich_schedule(stride=4)
        assert len(strided) <= len(full) // 4 + 1
        assert set(strided) <= set(full)

    def test_campaign_overlap_days_exist(self):
        # The paper found eight days on which both operators scanned.
        shared = set(umich_schedule()) & set(rapid7_schedule())
        assert len(shared) >= 1


class TestBlacklists:
    def test_is_blacklisted(self):
        campaign = ScanCampaign(
            name="x",
            scan_days=(0,),
            blacklist=(Prefix.parse("10.0.0.0/8"),),
        )
        assert campaign.is_blacklisted(str_to_ip("10.1.2.3"))
        assert not campaign.is_blacklisted(str_to_ip("11.0.0.0"))

    def test_make_campaigns_blacklists_differ(self):
        prefixes = [Prefix.parse(f"{i}.0.0.0/16") for i in range(1, 90)]
        umich, rapid7 = make_campaigns(prefixes)
        assert umich.name == "umich"
        assert rapid7.name == "rapid7"
        # Rapid7 persistently misses more prefixes (≈11.6k vs ≈1.9k scaled).
        assert len(rapid7.blacklist) > len(umich.blacklist)

    def test_blacklists_are_announced_prefixes(self):
        prefixes = [Prefix.parse(f"{i}.0.0.0/16") for i in range(1, 90)]
        _, rapid7 = make_campaigns(prefixes)
        assert set(rapid7.blacklist) <= set(prefixes)

    def test_blacklistable_restriction(self):
        prefixes = [Prefix.parse(f"{i}.0.0.0/16") for i in range(1, 90)]
        eligible = prefixes[:10]
        umich, rapid7 = make_campaigns(prefixes, blacklistable=eligible)
        assert set(umich.blacklist) <= set(eligible)
        assert set(rapid7.blacklist) <= set(eligible)

    def test_miss_rates(self):
        umich, rapid7 = make_campaigns([Prefix.parse("1.0.0.0/16")])
        assert 0.0 < umich.random_miss_rate < rapid7.random_miss_rate < 0.2
