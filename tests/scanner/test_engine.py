"""Tests for the zmap-like scan engine."""

import pytest

from repro.internet.population import WorldConfig, build_world
from repro.scanner.campaign import ScanCampaign
from repro.scanner.dataset import ScanDataset
from repro.scanner.engine import ScanEngine


@pytest.fixture(scope="module")
def world():
    config = WorldConfig(
        seed=21,
        n_devices=120,
        n_websites=30,
        n_generic_access=15,
        n_enterprise=5,
        n_hosting=5,
        unused_roots=0,
    )
    return build_world(config)


def plain_campaign(world, days, miss=0.0, blacklist=()):
    return ScanCampaign(
        name="test", scan_days=tuple(days), blacklist=tuple(blacklist),
        random_miss_rate=miss,
    )


class TestScanBasics:
    def test_scan_is_deterministic(self, world):
        day = world.config.start_day + 100
        campaign = plain_campaign(world, [day])
        a = ScanEngine(world).run(campaign, day)
        b = ScanEngine(world).run(campaign, day)
        assert a.observations == b.observations

    def test_all_active_devices_observed_unless_mid_scan_movers(self, world):
        # Without blacklists or random misses, the only legitimate way to
        # miss an active device is the zmap race: its address flipped after
        # the old address was probed but before the new one was.
        day = world.config.start_day + 100
        campaign = plain_campaign(world, [day])
        scan = ScanEngine(world).run(campaign, day)
        observed = {obs.entity for obs in scan if obs.entity.startswith("device:")}
        active = {
            f"device:{d.device_id}": d for d in world.devices if d.is_active(day)
        }
        assert observed <= set(active)
        for entity in set(active) - observed:
            flip = world.device_reassignment_hour(active[entity], day)
            assert 0.0 <= flip < 10.0, f"{entity} missed without a mid-scan flip"

    def test_websites_contribute_leaf_and_intermediate(self, world):
        day = world.config.start_day + 100
        campaign = plain_campaign(world, [day])
        engine = ScanEngine(world)
        scan = engine.run(campaign, day)
        website = next(w for w in world.websites if w.is_active(day))
        ip = website.host_ips[0]
        fingerprints = {obs.fingerprint for obs in scan if obs.ip == ip}
        leaf, intermediate = website.chain_on(day)
        assert leaf.fingerprint in fingerprints
        assert intermediate.fingerprint in fingerprints

    def test_certificate_store_covers_observations(self, world):
        day = world.config.start_day + 100
        campaign = plain_campaign(world, [day])
        engine = ScanEngine(world)
        scan = engine.run(campaign, day)
        for obs in scan:
            assert obs.fingerprint in engine.certificate_store

    def test_inactive_devices_not_observed(self, world):
        day = world.config.start_day - 10_000  # long before anything exists
        campaign = plain_campaign(world, [day])
        scan = ScanEngine(world).run(campaign, day)
        assert not [obs for obs in scan if obs.entity.startswith("device:")]


class TestBlindSpots:
    def test_blacklisted_prefix_never_observed(self, world):
        day = world.config.start_day + 100
        # Blacklist Deutsche Telekom's whole pool.
        dt_prefix = world.routing.table_at(0).prefixes_of(3320)[0]
        campaign = plain_campaign(world, [day], blacklist=[dt_prefix])
        scan = ScanEngine(world).run(campaign, day)
        assert not [obs for obs in scan if dt_prefix.contains(obs.ip)]

    def test_random_misses_reduce_observations(self, world):
        day = world.config.start_day + 100
        full = ScanEngine(world).run(plain_campaign(world, [day]), day)
        lossy = ScanEngine(world).run(plain_campaign(world, [day], miss=0.5), day)
        assert len(lossy) < len(full)


class TestScanDuplicates:
    def test_churn_devices_sometimes_seen_twice(self, world):
        # Over several scan days, at least one daily-churn device must be
        # caught at two addresses in a single scan (§6.2's phenomenon).
        engine = ScanEngine(world)
        days = [world.config.start_day + offset for offset in range(80, 130, 4)]
        campaign = plain_campaign(world, days)
        twice = 0
        for day in days:
            scan = engine.run(campaign, day)
            per_entity: dict[str, set[int]] = {}
            for obs in scan:
                if obs.entity.startswith("device:"):
                    per_entity.setdefault(obs.entity, set()).add(obs.ip)
            twice += sum(1 for ips in per_entity.values() if len(ips) == 2)
        assert twice > 0

    def test_static_devices_never_duplicated(self, world):
        day = world.config.start_day + 100
        campaign = plain_campaign(world, [day])
        scan = ScanEngine(world).run(campaign, day)
        static_asns = {
            bp.asn for bp in world.blueprints if bp.policy == "static"
        }
        per_entity: dict[str, set[int]] = {}
        for obs in scan:
            if not obs.entity.startswith("device:"):
                continue
            device = world.devices[int(obs.entity.split(":")[1])]
            if device.location_at(day).asn in static_asns:
                per_entity.setdefault(obs.entity, set()).add(obs.ip)
        assert all(len(ips) == 1 for ips in per_entity.values())


class TestDatasetCollection:
    def test_collect_merges_campaigns(self, world):
        day_a = world.config.start_day + 100
        day_b = world.config.start_day + 104
        camp_a = ScanCampaign("a", (day_a,))
        camp_b = ScanCampaign("b", (day_b,))
        dataset = ScanDataset.collect(world, [camp_a, camp_b])
        assert len(dataset) == 2
        assert dataset.scans[0].day == day_a
        assert [scan.source for scan in dataset.scans] == ["a", "b"]

    def test_lifetime_semantics(self, world):
        day = world.config.start_day + 100
        dataset = ScanDataset.collect(
            world, [ScanCampaign("a", (day, day + 7))]
        )
        # A certificate seen only on one day has a one-day lifetime (§5.1);
        # seen on two scans a week apart, an eight-day lifetime.
        lifetimes = {
            dataset.lifetime_days(fp)
            for scan in dataset.scans
            for fp in scan.fingerprints()
        }
        assert lifetimes <= {1, 8}
        assert 8 in lifetimes

    def test_mean_ips_per_scan(self, world):
        day = world.config.start_day + 100
        dataset = ScanDataset.collect(world, [ScanCampaign("a", (day,))])
        website = next(
            w for w in world.websites if w.is_active(day) and len(w.host_ips) > 1
        )
        leaf = website.certificate_on(day)
        assert dataset.mean_ips_per_scan(leaf.fingerprint) == len(website.host_ips)

    def test_entities_ground_truth(self, world):
        day = world.config.start_day + 100
        dataset = ScanDataset.collect(world, [ScanCampaign("a", (day,))])
        device = next(d for d in world.devices if d.is_active(day))
        fp = device.certificate_on(day).fingerprint
        entities = dataset.entities_of(fp)
        assert f"device:{device.device_id}" in entities
