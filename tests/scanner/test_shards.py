"""Tests for direct-to-columnar shard generation and the streaming writer.

The shard path must be *bitwise* interchangeable with the legacy row
emitter: same observations in the same order, same interning tables, same
certificate-store order, and — for the streaming corpus writer — the same
archive bytes as an in-memory build.  The legacy row path stays alive in
the engine precisely so these tests (and ``REPRO_LINK_PARITY=1``) can
keep holding the shard path to it.
"""

from array import array

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.synthetic import generate, generate_streamed
from repro.internet.population import WorldConfig, build_world
from repro.io import ArchiveBackend, InMemoryBackend, load_dataset, save_dataset
from repro.scanner.campaign import ScanCampaign
from repro.scanner.columns import ObservationColumns
from repro.scanner.dataset import ScanDataset
from repro.scanner.engine import ScanEngine
from repro.scanner.records import Observation, Scan
from repro.scanner.shards import (
    LazyObservations,
    columns_equal,
    finalize_shard,
    merge_shards,
    shard_scan,
)
from repro.tls.handshake import HandshakeRecord

SMALL_CONFIG = WorldConfig(
    seed=11, n_devices=40, n_websites=10, n_generic_access=10,
    n_enterprise=3, n_hosting=3, unused_roots=0,
)


@pytest.fixture(scope="module")
def small_world():
    return build_world(SMALL_CONFIG)


@pytest.fixture(scope="module")
def small_campaign():
    days = tuple(
        SMALL_CONFIG.start_day + offset for offset in range(100, 140, 8)
    )
    return ScanCampaign("par", days)


class TestFinalizeShard:
    def test_sort_renumber_and_drop(self):
        fingerprints = [bytes([value]) * 32 for value in range(3)]
        entities = ["", "site:a", "site:b"]  # site:b never referenced
        handshakes = [
            HandshakeRecord(version=0x0303, cipher=0xC013,
                            tcp_window=29200, ip_ttl=64),
            HandshakeRecord(version=0x0301, cipher=0x002F,
                            tcp_window=14600, ip_ttl=255),
        ]
        # Generation-order rows: (ip, cert, entity, handshake), with two
        # spare preallocated slots past count=4.
        ip = array("I", [20, 10, 20, 10, 0, 0])
        cert_id = array("I", [1, 0, 0, 0, 0, 0])
        entity_id = array("I", [1, 0, 1, 0, 0, 0])
        handshake_id = array("i", [-1, 1, 0, -1, 0, 0])
        shard = finalize_shard(
            5, "umich", 4, ip, cert_id, entity_id, handshake_id,
            fingerprints, entities, handshakes,
        )
        # Stable (ip, fingerprint) sort: rows 1, 3 tie on (10, fp0) and
        # keep generation order; then (20, fp0), then (20, fp1).
        assert list(shard.ip) == [10, 10, 20, 20]
        # Tables renumbered to first appearance over the *sorted* rows;
        # fp2 and "site:b" were never referenced and drop out.
        assert shard.fingerprints == [fingerprints[0], fingerprints[1]]
        assert shard.entities == ["", "site:a"]
        assert shard.handshakes == [handshakes[1], handshakes[0]]
        assert list(shard.cert_id) == [0, 0, 0, 1]
        assert list(shard.entity_id) == [0, 0, 1, 1]
        assert list(shard.handshake_id) == [0, -1, 1, -1]

    def test_rehydration_matches_rows(self):
        fingerprints = [b"\xaa" * 32]
        handshakes = [
            HandshakeRecord(version=0x0303, cipher=0xC013,
                            tcp_window=29200, ip_ttl=64),
        ]
        shard = finalize_shard(
            3, "rapid7", 2,
            array("I", [9, 4]), array("I", [0, 0]), array("I", [0, 0]),
            array("i", [-1, 0]), fingerprints, [""], handshakes,
        )
        assert shard.observation_at(0) == Observation(
            4, fingerprints[0], "", handshakes[0]
        )
        assert shard.observation_at(1) == Observation(9, fingerprints[0])

    def test_pickle_round_trip(self, small_world, small_campaign):
        import pickle

        engine = ScanEngine(small_world)
        shard = engine.run_shard(small_campaign, small_campaign.scan_days[0])
        clone = pickle.loads(pickle.dumps(shard))
        assert shard_scan(clone).observations == shard_scan(shard).observations
        assert clone.fingerprints == shard.fingerprints


class TestLazyObservations:
    @pytest.fixture(scope="class")
    def lazy_and_rows(self, small_world, small_campaign):
        day = small_campaign.scan_days[0]
        engine = ScanEngine(small_world)
        lazy = shard_scan(engine.run_shard(small_campaign, day)).observations
        rows = ScanEngine(small_world).row_observations(small_campaign, day)
        return lazy, rows

    def test_sequence_protocol(self, lazy_and_rows):
        lazy, rows = lazy_and_rows
        assert isinstance(lazy, LazyObservations)
        assert len(lazy) == len(rows) > 0
        assert lazy[0] == rows[0]
        assert lazy[-1] == rows[-1]
        assert lazy[2:7] == rows[2:7]
        assert list(lazy) == rows
        assert rows[0] in lazy

    def test_equality_both_ways(self, lazy_and_rows):
        lazy, rows = lazy_and_rows
        assert lazy == rows and rows == lazy  # reflected list equality
        assert lazy == tuple(rows)
        shorter = rows[:-1]
        assert lazy != shorter
        mutated = list(rows)
        mutated[0] = mutated[0]._replace(ip=mutated[0].ip ^ 1)
        assert lazy != mutated
        assert lazy != "not a sequence"

    def test_unhashable_like_a_list(self, lazy_and_rows):
        lazy, _ = lazy_and_rows
        with pytest.raises(TypeError):
            hash(lazy)

    def test_distinct_helpers_match_rows(self, lazy_and_rows):
        lazy, rows = lazy_and_rows
        assert lazy.distinct_ips() == {obs.ip for obs in rows}
        assert lazy.distinct_fingerprints() == {
            obs.fingerprint for obs in rows
        }


class TestScanMemoization:
    def test_ips_and_fingerprints_cached(self, small_world, small_campaign):
        engine = ScanEngine(small_world)
        scan = engine.run(small_campaign, small_campaign.scan_days[0])
        ips = scan.ips()
        fingerprints = scan.fingerprints()
        assert scan.ips() is ips  # memoized
        assert scan.fingerprints() is fingerprints
        assert ips == {obs.ip for obs in scan.observations}
        assert fingerprints == {obs.fingerprint for obs in scan.observations}

    def test_cached_on_plain_row_scans_too(self):
        observations = [
            Observation(1, b"\x01" * 32),
            Observation(2, b"\x01" * 32, "device:1"),
        ]
        scan = Scan(day=0, source="umich", observations=observations)
        assert scan.ips() == {1, 2}
        assert scan.ips() is scan.ips()
        assert scan.fingerprints() == {b"\x01" * 32}


class TestRowColumnarParity:
    """The tentpole invariant: shard generation == row generation, bitwise."""

    @pytest.fixture(scope="class")
    def both_paths(self, small_world, small_campaign):
        columnar = ScanDataset.collect(small_world, [small_campaign])
        rows = ScanDataset.collect(
            small_world, [small_campaign], columnar=False
        )
        return columnar, rows

    def test_scans_identical(self, both_paths):
        columnar, rows = both_paths
        assert [(s.day, s.source) for s in columnar.scans] == \
            [(s.day, s.source) for s in rows.scans]
        for lazy_scan, row_scan in zip(columnar.scans, rows.scans):
            assert lazy_scan.observations == row_scan.observations

    def test_certificate_store_order_identical(self, both_paths):
        columnar, rows = both_paths
        assert list(columnar.certificates) == list(rows.certificates)

    def test_merged_columns_match_row_columnarization(self, both_paths):
        columnar, rows = both_paths
        reference = ObservationColumns.from_scans(rows.scans)
        assert columns_equal(columnar.columns, reference)

    def test_collect_adopts_merged_columns(self, both_paths):
        # Satellite fix: no second columnarization pass — the dataset
        # owns the merged columns from the start.
        columnar, _ = both_paths
        assert columnar._columns is not None
        assert columnar.columns is columnar._columns
        assert columnar.build_columns() is columnar._columns

    def test_backend_adopts_columns_zero_copy(self, both_paths):
        columnar, _ = both_paths
        backend = InMemoryBackend.from_dataset(columnar)
        assert backend.columns is columnar._columns

    def test_handshake_parity(self, small_world, small_campaign):
        columnar = ScanDataset.collect(
            small_world, [small_campaign], collect_handshakes=True
        )
        rows = ScanDataset.collect(
            small_world, [small_campaign],
            collect_handshakes=True, columnar=False,
        )
        for lazy_scan, row_scan in zip(columnar.scans, rows.scans):
            assert lazy_scan.observations == row_scan.observations
        assert any(
            obs.handshake is not None
            for scan in columnar.scans for obs in scan.observations
        )
        assert columns_equal(
            columnar.columns, ObservationColumns.from_scans(rows.scans)
        )

    def test_workers_identical_columns(self, small_world, small_campaign):
        serial = ScanDataset.collect(small_world, [small_campaign])
        fanned = ScanDataset.collect(
            small_world, [small_campaign], workers=4
        )
        assert columns_equal(serial.columns, fanned.columns)
        assert list(serial.certificates) == list(fanned.certificates)

    def test_link_parity_knob_runs_the_replay(
        self, small_world, small_campaign, monkeypatch
    ):
        monkeypatch.setenv("REPRO_LINK_PARITY", "1")
        dataset = ScanDataset.collect(small_world, [small_campaign])
        assert dataset.n_observations > 0


class TestStreamingWriter:
    """Shard-streamed archives must be bitwise-identical to in-memory ones."""

    @pytest.fixture(scope="class")
    def streamed_and_memory(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("streamed")
        receipt = generate_streamed(
            SMALL_CONFIG, directory / "streamed.rpz", scan_stride=8
        )
        built = generate(SMALL_CONFIG, scan_stride=8)
        memory_path = directory / "memory.rpz"
        memory_digest = save_dataset(built.scans, memory_path)
        return receipt, built, memory_path, memory_digest

    def test_bitwise_identical_to_in_memory_build(self, streamed_and_memory):
        receipt, _, memory_path, memory_digest = streamed_and_memory
        assert receipt.digest == memory_digest
        assert receipt.path.read_bytes() == memory_path.read_bytes()

    def test_incremental_digest_matches_file_hash(self, streamed_and_memory):
        receipt, *_ = streamed_and_memory
        assert ArchiveBackend(receipt.path).corpus_digest() == receipt.digest

    def test_receipt_counts(self, streamed_and_memory):
        receipt, built, *_ = streamed_and_memory
        assert receipt.n_scans == len(built.scans.scans)
        assert receipt.n_observations == built.scans.n_observations
        assert receipt.n_certificates == len(built.scans.certificates)

    def test_round_trip_load(self, streamed_and_memory):
        receipt, built, *_ = streamed_and_memory
        loaded = load_dataset(receipt.path)
        assert len(loaded.scans) == len(built.scans.scans)
        for loaded_scan, scan in zip(loaded.scans, built.scans.scans):
            assert (loaded_scan.day, loaded_scan.source) == (scan.day, scan.source)
            assert loaded_scan.observations == scan.observations
        # Archive order is canonical (observed first, extras sorted), so
        # compare contents, not insertion order.
        assert set(loaded.certificates) == set(built.scans.certificates)

    def test_workers_stream_identical(self, streamed_and_memory, tmp_path):
        receipt, *_ = streamed_and_memory
        fanned = generate_streamed(
            SMALL_CONFIG, tmp_path / "fanned.rpz", scan_stride=8, workers=3
        )
        assert fanned.digest == receipt.digest
        assert fanned.path.read_bytes() == receipt.path.read_bytes()

    def test_handshake_stream_identical(self, tmp_path):
        receipt = generate_streamed(
            SMALL_CONFIG, tmp_path / "hs.rpz",
            scan_stride=8, collect_handshakes=True,
        )
        built = generate(SMALL_CONFIG, scan_stride=8, collect_handshakes=True)
        digest = save_dataset(built.scans, tmp_path / "hs-memory.rpz")
        assert receipt.digest == digest

    def test_abort_cleans_spool(self, tmp_path):
        from repro.io.store import StreamingDatasetWriter

        path = tmp_path / "aborted.rpz"
        writer = StreamingDatasetWriter(path)
        writer.abort()
        assert not path.exists()
        assert not list(tmp_path.iterdir())


class TestRechunkedMergeProperty:
    """Chunk-boundary invariance of shard interning (hypothesis).

    The incremental-ingestion invariant in its purest form: interning
    shard tables in local-id order, shard by shard, reproduces the
    global serial first-appearance order *no matter where the stream is
    cut*.  ``merge_shards`` over arbitrary chunks of a day stream,
    recombined with ``ObservationColumns._merge_shards``, must be
    bitwise-identical to one one-shot merge — under any hash seed.
    """

    _DAY_SHARDS = None

    @classmethod
    def _day_shards(cls):
        if cls._DAY_SHARDS is None:
            world = build_world(SMALL_CONFIG)
            engine = ScanEngine(world)
            days = tuple(
                SMALL_CONFIG.start_day + offset
                for offset in range(100, 148, 8)
            )
            campaigns = (
                ScanCampaign("alpha", days), ScanCampaign("beta", days[::2]),
            )
            schedule = sorted(
                ((day, campaign)
                 for campaign in campaigns for day in campaign.scan_days),
                key=lambda task: (task[0], task[1].name),
            )
            cls._DAY_SHARDS = tuple(
                engine.run_shard(campaign, day) for day, campaign in schedule
            )
        return cls._DAY_SHARDS

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_random_rechunk_is_bitwise_identical(self, data):
        shards = self._day_shards()
        cuts = data.draw(
            st.sets(st.integers(1, len(shards) - 1)),
            label="chunk boundaries",
        )
        bounds = [0, *sorted(cuts), len(shards)]
        one_shot, scan_meta = merge_shards(shards)
        assert [(day, source) for day, source, _, _ in scan_meta] == \
            [(shard.day, shard.source) for shard in shards]
        chunks = []
        for start, stop in zip(bounds, bounds[1:]):
            chunk, _ = merge_shards(shards[start:stop])
            # merge_shards numbers scans from 0 within each call; restore
            # the global scan index before recombining.
            chunk.scan_idx = array(
                "I", (index + start for index in chunk.scan_idx)
            )
            chunks.append(chunk)
        merged = ObservationColumns._merge_shards(chunks)
        assert columns_equal(merged, one_shot)
