"""Tests for ASCII chart rendering."""

import pytest

from repro.stats.asciichart import render_cdf, render_series
from repro.stats.cdf import CDF


class TestRenderSeries:
    def test_basic_shape(self):
        chart = render_series([(0, 0), (1, 1)], width=20, height=5, title="t")
        lines = chart.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 1 + 5 + 2   # title + grid + axis + labels
        assert "*" in chart

    def test_extremes_plotted_at_corners(self):
        chart = render_series([(0, 0), (10, 10)], width=10, height=4)
        lines = chart.splitlines()
        assert lines[0].rstrip().endswith("*") is False or True  # smoke
        # Bottom-left and top-right markers exist.
        assert lines[0].count("*") == 1
        assert lines[3].count("*") == 1

    def test_constant_series(self):
        chart = render_series([(0, 5), (1, 5)], width=10, height=3)
        assert "*" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_series([])

    def test_custom_marker(self):
        chart = render_series([(0, 0), (1, 1)], marker="#")
        assert "#" in chart and "*" not in chart


class TestRenderCDF:
    def test_linear(self):
        cdf = CDF.of(range(100))
        chart = render_cdf(cdf, width=30, height=6, title="lifetimes")
        assert "lifetimes" in chart
        assert "1.00" in chart            # top axis label

    def test_log_x(self):
        cdf = CDF.of([1, 10, 100, 1000])
        chart = render_cdf(cdf, log_x=True, title="validity")
        assert "(x: log10)" in chart

    def test_log_x_requires_positive(self):
        cdf = CDF.of([-5, -1])
        with pytest.raises(ValueError):
            render_cdf(cdf, log_x=True)

    def test_log_x_with_some_negatives(self):
        # Negative samples are fine as long as positives exist.
        cdf = CDF.of([-365, 7300, 9125])
        chart = render_cdf(cdf, log_x=True)
        assert "*" in chart

    def test_single_value(self):
        chart = render_cdf(CDF.of([42]))
        assert "*" in chart
