"""Tests for the empirical CDF utility."""

import pytest
from hypothesis import given, strategies as st

from repro.stats.cdf import CDF


class TestCDF:
    def test_at(self):
        cdf = CDF.of([1, 2, 2, 4])
        assert cdf.at(0) == 0.0
        assert cdf.at(1) == 0.25
        assert cdf.at(2) == 0.75
        assert cdf.at(4) == 1.0
        assert cdf.at(100) == 1.0

    def test_fraction_below(self):
        cdf = CDF.of([1, 2, 2, 4])
        assert cdf.fraction_below(2) == 0.25
        assert cdf.fraction_below(1) == 0.0

    def test_median(self):
        assert CDF.of([1, 2, 3]).median == 2
        assert CDF.of([5]).median == 5

    def test_percentiles(self):
        cdf = CDF.of(range(101))
        assert cdf.percentile(0.0) == 0
        assert cdf.percentile(0.5) == 50
        assert cdf.percentile(0.99) == 99
        assert cdf.percentile(1.0) == 100

    def test_percentile_bounds(self):
        cdf = CDF.of([1, 2])
        with pytest.raises(ValueError):
            cdf.percentile(-0.1)
        with pytest.raises(ValueError):
            cdf.percentile(1.1)

    def test_min_max_mean(self):
        cdf = CDF.of([3, 1, 2])
        assert cdf.min == 1
        assert cdf.max == 3
        assert cdf.mean == 2

    def test_series(self):
        cdf = CDF.of([1, 2, 3, 4])
        assert cdf.series([0, 2, 4]) == [(0, 0.0), (2, 0.5), (4, 1.0)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CDF.of([])

    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=50))
    def test_at_is_monotone(self, samples):
        cdf = CDF.of(samples)
        points = sorted(set(samples))
        fractions = [cdf.at(p) for p in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    @given(
        st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=50),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_percentile_within_range(self, samples, q):
        cdf = CDF.of(samples)
        assert cdf.min <= cdf.percentile(q) <= cdf.max


class TestTables:
    def test_render_table_alignment(self):
        from repro.stats.tables import render_table

        text = render_table(["name", "n"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "long-name" in lines[3]

    def test_format_helpers(self):
        from repro.stats.tables import format_count, format_pct

        assert format_count(1234567) == "1,234,567"
        assert format_pct(0.879) == "87.9%"
        assert format_pct(0.5, digits=0) == "50%"
