"""Shard-drop files and the `repro ingest --watch` polling ingester.

The wire contract: :func:`write_shard_drop` packages one scan day's
shards + certificate DER into a single atomic ``.rps`` container,
:func:`read_shard_drop` reproduces the shards exactly, and a
:class:`WatchIngestor` that consumes drops grows the watched corpus
*byte-identically* to a direct :func:`append_shards` of the same days —
append-path invariance extends through the daemon's wire format.
"""

import threading

import pytest

from repro.internet.population import WorldConfig, build_world
from repro.io.store import (
    StreamingDatasetWriter,
    read_shard_drop,
    write_shard_drop,
)
from repro.io.watch import WatchIngestor
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry
from repro.scanner.campaign import ScanCampaign
from repro.scanner.engine import ScanEngine

CONFIG = WorldConfig(
    seed=31, n_devices=40, n_websites=12, n_generic_access=8,
    n_enterprise=2, n_hosting=2, unused_roots=1,
)

#: Four scan days; "beta" scans every other one, so the second-to-last
#: day drops two shards and the last day drops one.
DAYS = tuple(CONFIG.start_day + offset for offset in range(60, 92, 8))


def _schedule(campaigns):
    return sorted(
        ((day, campaign) for campaign in campaigns for day in campaign.scan_days),
        key=lambda task: (task[0], task[1].name),
    )


def _write(world, campaigns, path, days):
    """A corpus covering exactly ``days``, from a fresh engine."""
    engine = ScanEngine(world)
    writer = StreamingDatasetWriter(path)
    for day, campaign in _schedule(campaigns):
        if day in days:
            writer.add_shard(engine.run_shard(campaign, day))
    return writer.close(engine.certificate_store)


def _day_shards(world, campaigns, day):
    """Scan only ``day``; returns its shards plus the day's certificates."""
    engine = ScanEngine(world)
    shards = [
        engine.run_shard(campaign, scan_day)
        for scan_day, campaign in _schedule(campaigns) if scan_day == day
    ]
    return shards, dict(engine.certificate_store)


@pytest.fixture(scope="module")
def world():
    return build_world(CONFIG)


@pytest.fixture(scope="module")
def campaigns():
    return (ScanCampaign("alpha", DAYS), ScanCampaign("beta", DAYS[::2]))


@pytest.fixture(scope="module")
def corpus(world, campaigns, tmp_path_factory):
    """Full corpus, bases missing the last day(s), and per-day drops."""
    directory = tmp_path_factory.mktemp("watch")
    full = directory / "full.rpz"
    base1 = directory / "base1.rpz"
    base2 = directory / "base2.rpz"
    _write(world, campaigns, full, set(DAYS))
    _write(world, campaigns, base1, set(DAYS[:-1]))
    _write(world, campaigns, base2, set(DAYS[:-2]))
    tail = {
        day: _day_shards(world, campaigns, day) for day in DAYS[-2:]
    }
    return {"dir": directory, "full": full, "base1": base1, "base2": base2,
            "tail": tail}


@pytest.fixture()
def metrics():
    registry = MetricsRegistry()
    obs_runtime.activate(metrics=registry)
    try:
        yield registry
    finally:
        obs_runtime.deactivate()


def _drop(corpus, day, path):
    shards, certificates = corpus["tail"][day]
    return write_shard_drop(shards, certificates, path)


class TestShardDropFormat:
    def test_round_trip_reproduces_shards_and_certificates(
        self, corpus, tmp_path
    ):
        day = DAYS[-2]  # two campaigns scan it: a multi-shard drop
        shards, certificates = corpus["tail"][day]
        assert len(shards) == 2
        path = tmp_path / "drop.rps"
        write_shard_drop(shards, certificates, path)
        drop = read_shard_drop(path)
        assert drop.day == day
        assert len(drop.shards) == len(shards)
        for original, loaded in zip(shards, drop.shards):
            assert loaded.day == original.day
            assert loaded.source == original.source
            assert list(loaded.ip) == list(original.ip)
            assert list(loaded.cert_id) == list(original.cert_id)
            assert list(loaded.entity_id) == list(original.entity_id)
            assert list(loaded.handshake_id) == list(original.handshake_id)
            assert loaded.fingerprints == list(original.fingerprints)
            assert loaded.entities == list(original.entities)
            assert loaded.handshakes == list(original.handshakes)
        # Only the fingerprints the shards sight ride along, DER-exact.
        sighted = {
            fp for shard in shards for fp in shard.fingerprints
        }
        assert set(drop.certificates) == sighted
        for fingerprint, certificate in drop.certificates.items():
            assert certificate.to_der() == certificates[fingerprint].to_der()

    def test_write_is_atomic(self, corpus, tmp_path):
        path = tmp_path / "drop.rps"
        _drop(corpus, DAYS[-1], path)
        assert path.exists()
        assert not path.with_name("drop.rps.tmp").exists()

    def test_rejects_empty_mixed_and_unsorted(self, corpus, tmp_path):
        path = tmp_path / "bad.rps"
        with pytest.raises(ValueError, match="nothing to drop"):
            write_shard_drop([], {}, path)
        shards_a, certs_a = corpus["tail"][DAYS[-2]]
        shards_b, certs_b = corpus["tail"][DAYS[-1]]
        with pytest.raises(ValueError, match="exactly one day"):
            write_shard_drop(
                [shards_a[0], shards_b[0]], {**certs_a, **certs_b}, path
            )
        with pytest.raises(ValueError, match="source order"):
            write_shard_drop(list(reversed(shards_a)), certs_a, path)
        with pytest.raises(ValueError, match="source order"):
            write_shard_drop([shards_a[0], shards_a[0]], certs_a, path)
        assert not path.exists(), "validation must precede any write"

    def test_rejects_missing_certificates(self, corpus, tmp_path):
        path = tmp_path / "bad.rps"
        shards, certificates = corpus["tail"][DAYS[-1]]
        short = dict(certificates)
        short.pop(shards[0].fingerprints[0])
        with pytest.raises(ValueError, match="missing certificate"):
            write_shard_drop(shards, short, path)
        assert not path.exists()

    def test_single_shard_needs_no_list(self, corpus, tmp_path):
        shards, certificates = corpus["tail"][DAYS[-1]]
        assert len(shards) == 1
        path = tmp_path / "drop.rps"
        write_shard_drop(shards[0], certificates, path)
        assert read_shard_drop(path).shards[0].source == shards[0].source

    def test_read_rejects_non_drop_container(self, corpus):
        with pytest.raises(ValueError, match="not a shard drop"):
            read_shard_drop(corpus["full"])


class TestWatchIngestor:
    def test_single_drop_grows_corpus_byte_identically(
        self, corpus, tmp_path, metrics
    ):
        watched = tmp_path / "watched.rpz"
        watched.write_bytes(corpus["base1"].read_bytes())
        drops = tmp_path / "drops"
        drops.mkdir()
        _drop(corpus, DAYS[-1], drops / "day-last.rps")
        health = {}
        ingestor = WatchIngestor(watched, drops, health=health)
        results = ingestor.poll()
        assert len(results) == 1
        assert results[0].new_days == (DAYS[-1],)
        # The daemon's growth is indistinguishable from a direct append
        # of the same day — and from a full from-scratch build.
        assert watched.read_bytes() == corpus["full"].read_bytes()
        assert (drops / "day-last.rps.done").exists()
        assert not (drops / "day-last.rps").exists()
        assert health["last_append_day"] == DAYS[-1]
        assert health["files_ingested"] == 1
        assert health["last_digest"] == results[0].digest
        assert metrics.counters["ingest.files_ingested"] == 1
        assert metrics.counters["ingest.watch_polls"] == 1
        assert metrics.gauges["ingest.last_day"] == float(DAYS[-1])

    def test_pending_orders_by_day_not_name(self, corpus, tmp_path, metrics):
        watched = tmp_path / "watched.rpz"
        watched.write_bytes(corpus["base2"].read_bytes())
        drops = tmp_path / "drops"
        drops.mkdir()
        # Name order says the later day first; day order must win, or the
        # earlier day would be rejected as out-of-order.
        _drop(corpus, DAYS[-1], drops / "aa.rps")
        _drop(corpus, DAYS[-2], drops / "zz.rps")
        ingestor = WatchIngestor(watched, drops)
        pending = ingestor.pending()
        assert [path.name for path in pending] == ["zz.rps", "aa.rps"]
        results = ingestor.poll()
        assert [result.new_days for result in results] == [
            (DAYS[-2],), (DAYS[-1],),
        ]
        assert watched.read_bytes() == corpus["full"].read_bytes()
        assert ingestor.rejected == 0

    def test_unreadable_drop_rejected_without_blocking(
        self, corpus, tmp_path, metrics
    ):
        watched = tmp_path / "watched.rpz"
        watched.write_bytes(corpus["base1"].read_bytes())
        drops = tmp_path / "drops"
        drops.mkdir()
        (drops / "garbage.rps").write_bytes(b"not a container")
        _drop(corpus, DAYS[-1], drops / "good.rps")
        health = {}
        ingestor = WatchIngestor(watched, drops, health=health)
        results = ingestor.poll()
        # The bad file is quarantined; the good day still lands.
        assert len(results) == 1
        assert watched.read_bytes() == corpus["full"].read_bytes()
        assert (drops / "garbage.rps.rejected").exists()
        assert "garbage.rps" in health["last_error"]
        assert health["files_rejected"] == 1
        assert metrics.counters["ingest.files_rejected"] == 1

    def test_out_of_order_day_rejected_corpus_untouched(
        self, corpus, tmp_path, metrics
    ):
        watched = tmp_path / "watched.rpz"
        watched.write_bytes(corpus["full"].read_bytes())
        drops = tmp_path / "drops"
        drops.mkdir()
        # The corpus already holds this day: append must refuse it.
        _drop(corpus, DAYS[-1], drops / "stale.rps")
        ingestor = WatchIngestor(watched, drops)
        assert ingestor.poll() == []
        assert (drops / "stale.rps.rejected").exists()
        assert watched.read_bytes() == corpus["full"].read_bytes()
        assert not (tmp_path / "watched.rpz.growing").exists()

    def test_run_honors_max_days_and_stop(self, corpus, tmp_path, metrics):
        watched = tmp_path / "watched.rpz"
        watched.write_bytes(corpus["base1"].read_bytes())
        drops = tmp_path / "drops"
        drops.mkdir()
        _drop(corpus, DAYS[-1], drops / "day-last.rps")
        ingestor = WatchIngestor(watched, drops)
        assert ingestor.run(interval=0.01, max_days=1) == 1
        assert watched.read_bytes() == corpus["full"].read_bytes()
        # A pre-fired stop event returns without a single poll wait.
        stop = threading.Event()
        stop.set()
        assert ingestor.run(interval=60.0, stop=stop) == 0

    def test_run_interval_validation(self, corpus, tmp_path):
        ingestor = WatchIngestor(tmp_path / "c.rpz", tmp_path)
        with pytest.raises(ValueError, match="interval"):
            ingestor.run(interval=0.0)
