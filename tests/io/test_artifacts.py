"""Tests for the content-addressed artifact cache (repro.io.artifacts)."""

import repro.io.artifacts as artifacts_mod
from repro.core.kernels import FeatureMatrix
from repro.io import ArtifactCache, load_dataset, save_dataset
from repro.io.artifacts import columns_digest
from repro.io.encoding import SegmentReader
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.scanner.columns import ObservationColumns
from repro.scanner.dataset import ScanDataset
from repro.scanner.records import Observation, Scan
from repro.study import Study
from repro.x509.truststore import TrustStore


def fresh_dataset(tiny_synthetic) -> ScanDataset:
    """A new ScanDataset over the shared tiny corpus (nothing built)."""
    source = tiny_synthetic.scans
    return ScanDataset(list(source.scans), dict(source.certificates))


def make_study(tiny_synthetic, dataset, cache) -> Study:
    world = tiny_synthetic.world
    return Study(
        dataset=dataset,
        trust_store=world.trust_store,
        as_of=world.routing.origin_as,
        registry=world.registry,
        cache=cache,
        observe=True,
    )


def artifact_counters(study: Study) -> dict:
    return {
        key: value
        for key, value in study.metrics.counters.items()
        if key.startswith("artifacts.")
    }


class TestCacheHitMiss:
    def test_cold_miss_then_warm_hit(self, tiny_synthetic, tmp_path):
        cache = ArtifactCache(tmp_path)
        cold = make_study(tiny_synthetic, fresh_dataset(tiny_synthetic), cache)
        cold_dedup = cold.dedup()
        assert artifact_counters(cold) == {"artifacts.miss": 2}
        assert "kernels" in cold.stage_timings
        assert "validation" in cold.stage_timings

        warm = make_study(tiny_synthetic, fresh_dataset(tiny_synthetic), cache)
        warm_dedup = warm.dedup()
        assert artifact_counters(warm) == {"artifacts.hit": 2}
        # A cache hit reports the load stage; the skipped stages do not
        # exist at all (no phantom zero-duration spans).
        assert "artifacts.load" in warm.stage_timings
        assert "kernels" not in warm.stage_timings
        assert "validation" not in warm.stage_timings

        assert warm.validation().results == cold.validation().results
        assert warm.validation().invalid == cold.validation().invalid
        assert warm_dedup.unique == cold_dedup.unique
        for name in ("first_scan", "last_scan", "n_scans", "max_ips", "min_ips"):
            assert getattr(warm.dataset.intervals, name) == \
                getattr(cold.dataset.intervals, name)
        cold_matrix = cold.dataset.feature_matrix
        warm_matrix = warm.dataset.feature_matrix
        assert warm_matrix.fingerprints == cold_matrix.fingerprints
        for feature in cold_matrix.raw_ids:
            assert warm_matrix.raw_ids[feature] == cold_matrix.raw_ids[feature]
            assert warm_matrix.linkable_ids[feature] == \
                cold_matrix.linkable_ids[feature]

    def test_corpus_mutation_changes_digest_and_misses(
        self, tiny_synthetic, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        original = fresh_dataset(tiny_synthetic)
        study = make_study(tiny_synthetic, original, cache)
        study.dedup()

        scans = list(original.scans)
        first = scans[0]
        observations = list(first.observations)
        victim = observations[0]
        observations[0] = Observation(
            ip=victim.ip ^ 1,
            fingerprint=victim.fingerprint,
            entity=victim.entity,
            handshake=victim.handshake,
        )
        scans[0] = Scan(
            day=first.day, source=first.source, observations=observations
        )
        mutated = ScanDataset(scans, dict(original.certificates))
        assert mutated.corpus_digest() != original.corpus_digest()

        warm = make_study(tiny_synthetic, mutated, cache)
        warm.kernels()
        assert warm.metrics.counters.get("artifacts.miss", 0) >= 1
        assert warm.metrics.counters.get("artifacts.hit", 0) == 0

    def test_trust_store_change_is_validation_miss(
        self, tiny_synthetic, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        make_study(tiny_synthetic, fresh_dataset(tiny_synthetic), cache).dedup()

        dataset = fresh_dataset(tiny_synthetic)
        smaller = TrustStore(list(tiny_synthetic.world.trust_store)[:-1])
        registry = MetricsRegistry()
        with obs_runtime.activated(Tracer(), registry):
            loaded = cache.load(dataset, trust_store=smaller)
        assert loaded.kernels
        assert loaded.validation is None
        assert registry.counters.get("artifacts.hit") == 1
        assert registry.counters.get("artifacts.miss") == 1


class TestInvalidation:
    def test_schema_bump_invalidates(self, tiny_synthetic, tmp_path, monkeypatch):
        cache = ArtifactCache(tmp_path)
        make_study(tiny_synthetic, fresh_dataset(tiny_synthetic), cache).dedup()
        monkeypatch.setattr(
            artifacts_mod, "ARTIFACT_SCHEMA", artifacts_mod.ARTIFACT_SCHEMA + 1
        )
        dataset = fresh_dataset(tiny_synthetic)
        registry = MetricsRegistry()
        with obs_runtime.activated(Tracer(), registry):
            loaded = cache.load(
                dataset, trust_store=tiny_synthetic.world.trust_store
            )
        assert not loaded.kernels and loaded.validation is None
        assert registry.counters.get("artifacts.invalidated") == 2

    def test_truncated_artifact_falls_back_to_rebuild(
        self, tiny_synthetic, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        cold = make_study(tiny_synthetic, fresh_dataset(tiny_synthetic), cache)
        cold_dedup = cold.dedup()
        path = cache.path_for(cold.dataset.corpus_digest())
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])

        warm = make_study(tiny_synthetic, fresh_dataset(tiny_synthetic), cache)
        warm_dedup = warm.dedup()  # must complete via rebuild
        assert warm_dedup.unique == cold_dedup.unique
        assert warm.metrics.counters.get("artifacts.invalidated") == 2
        assert "kernels" in warm.stage_timings

    def test_corrupt_member_invalidates_only_that_section(
        self, tiny_synthetic, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        cold = make_study(tiny_synthetic, fresh_dataset(tiny_synthetic), cache)
        cold.dedup()
        path = cache.path_for(cold.dataset.corpus_digest())
        # Overwrite the feature-matrix pickle segment in place (same
        # length, so the manifest stays valid): only the kernels section
        # should invalidate.
        entry = SegmentReader(path).entry("matrix.values")
        blob = bytearray(path.read_bytes())
        garbage = b"not a pickle"
        blob[entry["offset"]:entry["offset"] + len(garbage)] = garbage
        path.write_bytes(bytes(blob))

        dataset = fresh_dataset(tiny_synthetic)
        registry = MetricsRegistry()
        with obs_runtime.activated(Tracer(), registry):
            loaded = cache.load(
                dataset, trust_store=tiny_synthetic.world.trust_store
            )
        assert not loaded.kernels
        assert loaded.validation is not None
        assert registry.counters.get("artifacts.invalidated") == 1
        assert registry.counters.get("artifacts.hit") == 1


class TestShardedBuilds:
    def test_sharded_columns_bitwise_equal_serial(self, tiny_synthetic):
        scans = tiny_synthetic.scans.scans
        serial = ObservationColumns.from_scans(scans)
        sharded = ObservationColumns.from_scans(scans, workers=4)
        for name in ("scan_idx", "ip", "cert_id", "entity_id", "handshake_id"):
            assert getattr(serial, name) == getattr(sharded, name), name
        assert serial.fingerprints == sharded.fingerprints
        assert serial.fingerprint_ids == sharded.fingerprint_ids
        assert serial.entities == sharded.entities
        assert serial.handshakes == sharded.handshakes

    def test_sharded_matrix_bitwise_equal_serial(self, tiny_synthetic):
        certificates = tiny_synthetic.scans.certificates
        serial = FeatureMatrix.from_certificates(certificates)
        sharded = FeatureMatrix.from_certificates(certificates, workers=4)
        assert serial.fingerprints == sharded.fingerprints
        assert serial.rows == sharded.rows
        assert serial.values == sharded.values
        for feature in serial.raw_ids:
            assert serial.raw_ids[feature] == sharded.raw_ids[feature]
            assert serial.linkable_ids[feature] == sharded.linkable_ids[feature]

    def test_digest_identical_serial_vs_sharded(self, tiny_synthetic):
        serial = fresh_dataset(tiny_synthetic)
        sharded = fresh_dataset(tiny_synthetic)
        assert serial.corpus_digest(workers=1) == sharded.corpus_digest(workers=4)


class TestParityAndRemap:
    def test_warm_cache_under_link_parity(
        self, tiny_synthetic, tmp_path, monkeypatch
    ):
        cache = ArtifactCache(tmp_path)
        make_study(tiny_synthetic, fresh_dataset(tiny_synthetic), cache).dedup()
        monkeypatch.setenv("REPRO_LINK_PARITY", "1")
        warm = make_study(tiny_synthetic, fresh_dataset(tiny_synthetic), cache)
        # The naive twins inside dedup/validation assert against the
        # loaded artifacts; reaching here means parity held.
        warm.dedup()
        assert artifact_counters(warm) == {"artifacts.hit": 2}

    def test_matrix_rows_remap_to_loader_cert_order(
        self, tiny_synthetic, tmp_path
    ):
        # Store under one certificate-dict order, load into another: the
        # canonical digest matches (it hashes the sorted fingerprint
        # set), and rows must be permuted to the loader's order.
        cache = ArtifactCache(tmp_path)
        writer = fresh_dataset(tiny_synthetic)
        writer.index
        writer.intervals
        writer.feature_matrix
        cache.store(writer)

        reordered = dict(
            sorted(tiny_synthetic.scans.certificates.items(), reverse=True)
        )
        reader = ScanDataset(list(tiny_synthetic.scans.scans), reordered)
        assert reader.corpus_digest() == writer.corpus_digest()
        loaded = cache.load(reader)
        assert loaded.kernels
        matrix = reader.feature_matrix
        assert matrix.fingerprints == list(reordered)
        expected = writer.feature_matrix
        for feature in expected.raw_ids:
            for fingerprint in reordered:
                assert matrix.raw_value(feature, fingerprint) == \
                    expected.raw_value(feature, fingerprint)


class TestArchiveAndStatus:
    def test_archive_digest_stable_and_roundtrip(self, tiny_synthetic, tmp_path):
        corpus = tmp_path / "corpus.rpz"
        save_dataset(tiny_synthetic.scans, corpus)
        first = load_dataset(corpus)
        second = load_dataset(corpus)
        assert first.corpus_digest() == second.corpus_digest()

        cache = ArtifactCache(tmp_path / "cache")
        study = make_study(tiny_synthetic, first, cache)
        study.kernels()
        warm = make_study(tiny_synthetic, second, cache)
        warm.kernels()
        assert warm.metrics.counters.get("artifacts.hit") == 1

    def test_canonical_digest_matches_archive_column_order(
        self, tiny_synthetic, tmp_path
    ):
        # The archive's *file* digest keys its artifacts, but the
        # canonical columnar digest of the loaded corpus equals the
        # in-memory one: artifact payloads are portable across orders.
        corpus = tmp_path / "corpus.rpz"
        save_dataset(tiny_synthetic.scans, corpus)
        loaded = load_dataset(corpus)
        canonical = columns_digest(
            loaded.build_columns(),
            [(scan.day, scan.source) for scan in loaded.scans],
            loaded.certificates,
        )
        assert canonical == fresh_dataset(tiny_synthetic).corpus_digest()

    def test_status_reports_sections(self, tiny_synthetic, tmp_path):
        cache = ArtifactCache(tmp_path)
        dataset = fresh_dataset(tiny_synthetic)
        digest = dataset.corpus_digest()
        assert cache.status(digest)["cached"] is False

        study = make_study(tiny_synthetic, dataset, cache)
        study.dedup()
        status = cache.status(digest)
        assert status["cached"] is True
        assert status["schema"] == artifacts_mod.ARTIFACT_SCHEMA
        assert status["sections"] == ["kernels", "validation"]
        assert status["path"].endswith(f"{digest}.rpa")

    def test_store_preserves_existing_sections(self, tiny_synthetic, tmp_path):
        cache = ArtifactCache(tmp_path)
        # First store only validation (kernels not built yet) ...
        first = make_study(tiny_synthetic, fresh_dataset(tiny_synthetic), cache)
        first.validation()
        digest = first.dataset.corpus_digest()
        assert cache.status(digest)["sections"] == ["validation"]
        # ... then a kernels-only store must keep the validation section.
        writer = fresh_dataset(tiny_synthetic)
        writer.index
        writer.intervals
        writer.feature_matrix
        cache.store(writer)
        assert cache.status(digest)["sections"] == ["kernels", "validation"]

    def test_store_without_artifacts_writes_nothing(
        self, tiny_synthetic, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        assert cache.store(fresh_dataset(tiny_synthetic)) is None
        assert not list(tmp_path.glob("*.rpa"))


class TestDigestEncoding:
    def test_digest_covers_certificate_content(self, tiny_synthetic):
        dataset = fresh_dataset(tiny_synthetic)
        fewer = dict(dataset.certificates)
        fewer.pop(next(iter(fewer)))
        other = ScanDataset(list(dataset.scans), fewer)
        assert other.corpus_digest() != dataset.corpus_digest()

    def test_digest_covers_scan_metadata(self, tiny_synthetic):
        dataset = fresh_dataset(tiny_synthetic)
        scans = list(dataset.scans)
        first = scans[0]
        scans[0] = Scan(
            day=first.day + 1000, source=first.source,
            observations=first.observations,
        )
        other = ScanDataset(scans, dict(dataset.certificates))
        assert other.corpus_digest() != dataset.corpus_digest()


class TestLineageTruncation:
    """The 64-entry lineage cap: counted, warned once, chain bounded."""

    def test_cap_increments_counter_and_warns_once(self, tmp_path, monkeypatch):
        import json
        import warnings

        monkeypatch.setattr(artifacts_mod, "_LINEAGE_MAX_CHAIN", 3)
        monkeypatch.setattr(artifacts_mod, "_LINEAGE_WARNED", False)
        registry = MetricsRegistry()
        obs_runtime.activate(metrics=registry)
        try:
            cache = ArtifactCache(tmp_path / "cache")
            digests = [f"d{i}" for i in range(7)]
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                for base, digest in zip(digests, digests[1:]):
                    cache.record_lineage(digest, base)
        finally:
            obs_runtime.deactivate()
        # Chains grow 1, 2, 3, then overflow by one on each later append.
        assert registry.counters["artifacts.lineage_truncated"] == 3
        lineage_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        # One audible heads-up per process, not one per append.
        assert len(lineage_warnings) == 1
        assert "capped" in str(lineage_warnings[0].message)
        assert "cold rebuild" in str(lineage_warnings[0].message)
        lineage = json.loads(
            (tmp_path / "cache" / "lineage.json").read_text()
        )
        # Every stored chain stays within the cap, newest ancestors kept.
        assert all(len(entry["chain"]) <= 3 for entry in lineage.values())
        assert lineage["d6"]["chain"] == ["d3", "d4", "d5"]
        assert lineage["d6"]["base"] == "d5"

    def test_under_cap_records_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setattr(artifacts_mod, "_LINEAGE_WARNED", False)
        registry = MetricsRegistry()
        obs_runtime.activate(metrics=registry)
        try:
            cache = ArtifactCache(tmp_path / "cache")
            cache.record_lineage("d1", "d0")
            cache.record_lineage("d2", "d1")
        finally:
            obs_runtime.deactivate()
        assert "artifacts.lineage_truncated" not in registry.counters
        assert artifacts_mod._LINEAGE_WARNED is False

    def test_self_lineage_is_noop(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cache.record_lineage("same", "same")
        assert not (tmp_path / "cache" / "lineage.json").exists()
