"""Tests for the shared segment-container encoding layer."""

import struct
from array import array

import pytest

from repro.io.artifacts import file_digest
from repro.io.encoding import (
    CONTAINER_MAGIC,
    build_fingerprint_hash,
    fingerprint_hash_find,
    SegmentError,
    SegmentReader,
    SegmentWriter,
    as_array,
    is_segment_container,
    le_bytes,
    pack_fingerprints,
    read_container_meta,
    typecode_of,
    unpack_array,
    unpack_fingerprints,
)


@pytest.fixture()
def container(tmp_path):
    path = tmp_path / "sample.rps"
    writer = SegmentWriter(path, meta={"kind": "sample", "n": 3})
    writer.add_array("ids", array("I", [7, 11, 13]))
    writer.add_bytes("blob", b"x" * 96, stride=32)
    writer.add_json("tables", {"a": 1, "b": [2, 3]})
    writer.add_pickle("extra", {"nested": (1, 2)})
    digest = writer.close()
    return path, digest


class TestRoundTrip:
    def test_magic_and_detection(self, container, tmp_path):
        path, _ = container
        assert path.read_bytes().startswith(CONTAINER_MAGIC)
        assert is_segment_container(path)
        other = tmp_path / "not.rps"
        other.write_bytes(b"PK\x03\x04 definitely a zip")
        assert not is_segment_container(other)

    def test_segments_round_trip(self, container):
        path, _ = container
        reader = SegmentReader(path)
        assert list(reader.array("ids")) == [7, 11, 13]
        assert bytes(reader.raw("blob")) == b"x" * 96
        assert reader.json("tables") == {"a": 1, "b": [2, 3]}
        assert reader.pickle("extra") == {"nested": (1, 2)}
        assert reader.meta == {"kind": "sample", "n": 3}
        assert reader.format == 3

    def test_alignment(self, container):
        path, _ = container
        reader = SegmentReader(path)
        for name in reader.names():
            assert reader.entry(name)["offset"] % 16 == 0

    def test_writer_digest_matches_file_digest(self, container):
        path, digest = container
        assert digest == file_digest(path)

    def test_meta_readable_without_full_parse(self, container):
        path, _ = container
        info = read_container_meta(path)
        assert info["format"] == 3
        assert info["meta"]["kind"] == "sample"
        assert set(info["segments"]) == {"ids", "blob", "tables", "extra"}

    def test_duplicate_segment_rejected(self, tmp_path):
        writer = SegmentWriter(tmp_path / "dup.rps")
        writer.add_array("ids", array("I", [1]))
        with pytest.raises(SegmentError):
            writer.add_array("ids", array("I", [2]))
        writer.abort()

    def test_missing_segment_raises(self, container):
        path, _ = container
        with pytest.raises(SegmentError):
            SegmentReader(path).raw("no-such-segment")


class TestCorruption:
    def test_truncated_trailer_rejected(self, container):
        path, _ = container
        blob = path.read_bytes()
        path.write_bytes(blob[:-5])
        with pytest.raises(SegmentError):
            SegmentReader(path)

    def test_corrupt_manifest_rejected(self, container):
        path, _ = container
        blob = bytearray(path.read_bytes())
        # The trailer points at the manifest; garble the manifest bytes.
        manifest_offset, manifest_len, _ = struct.unpack(
            "<QQ8s", bytes(blob[-24:])
        )
        blob[manifest_offset : manifest_offset + 4] = b"\x00\x00\x00\x00"
        path.write_bytes(bytes(blob))
        with pytest.raises(SegmentError):
            SegmentReader(path)

    def test_bad_magic_rejected(self, container):
        path, _ = container
        blob = bytearray(path.read_bytes())
        blob[:4] = b"JUNK"
        path.write_bytes(bytes(blob))
        assert not is_segment_container(path)
        with pytest.raises(SegmentError):
            SegmentReader(path)


class TestHelpers:
    def test_le_bytes_round_trips_through_unpack(self):
        values = array("i", [-5, 0, 9, 2**30])
        packed = le_bytes(values)
        assert unpack_array("i", packed) == values

    def test_fingerprint_packing(self):
        fps = [bytes([i]) * 32 for i in range(4)]
        blob = pack_fingerprints(fps)
        assert len(blob) == 128
        assert unpack_fingerprints(blob) == fps

    def test_typecode_of_memoryview(self):
        values = array("Q", [1, 2, 3])
        view = memoryview(le_bytes(values)).cast("Q")
        assert typecode_of(view) == "Q"
        assert typecode_of(values) == "Q"

    def test_as_array_copies_views_and_passes_arrays(self):
        values = array("I", [4, 5])
        assert as_array(values) is values
        view = memoryview(le_bytes(values)).cast("I")
        promoted = as_array(view)
        assert isinstance(promoted, array)
        assert promoted == values


class TestFingerprintHash:
    @staticmethod
    def _fps(count, seed=0):
        import hashlib

        return [
            hashlib.sha256(f"{seed}:{index}".encode()).digest()
            for index in range(count)
        ]

    def test_table_is_power_of_two_with_half_load(self):
        for count in (0, 1, 3, 4, 5, 100, 1000):
            table = build_fingerprint_hash(self._fps(count))
            slots = len(table)
            assert slots & (slots - 1) == 0
            assert slots >= 8
            assert count <= slots / 2 or slots == 8 and count <= 4
            assert sum(1 for slot in table if slot) == count

    def test_build_is_deterministic(self):
        fps = self._fps(257)
        assert bytes(build_fingerprint_hash(fps)) == \
            bytes(build_fingerprint_hash(fps))

    def test_find_hits_every_member_and_misses_strangers(self):
        fps = self._fps(300)
        table = build_fingerprint_hash(fps)
        blob = pack_fingerprints(fps)
        for row, fingerprint in enumerate(fps):
            assert fingerprint_hash_find(table, blob, fingerprint) == row
        for stranger in self._fps(50, seed=1):
            assert fingerprint_hash_find(table, blob, stranger) is None

    def test_colliding_prefixes_probe_linearly(self):
        # Same first 8 bytes => same home slot; only the tail differs.
        prefix = b"\x42" * 8
        fps = [prefix + bytes([index]) * 24 for index in range(5)]
        table = build_fingerprint_hash(fps)
        blob = pack_fingerprints(fps)
        for row, fingerprint in enumerate(fps):
            assert fingerprint_hash_find(table, blob, fingerprint) == row
        assert fingerprint_hash_find(table, blob, prefix + b"\xff" * 24) \
            is None

    def test_empty_table_finds_nothing(self):
        table = build_fingerprint_hash([])
        assert len(table) == 8
        assert fingerprint_hash_find(table, b"", b"\x00" * 32) is None
