"""Zero-copy mapped datasets: parity, laziness, pickling, fan-out.

The acceptance surface of the format 3 substrate: a mapped dataset must
be observationally identical to a materialized one, stay lazy until
queried, ship to workers by path, and load v2 archives through the
materializing converter with identical results.
"""

import pickle

import pytest

from repro.io import (
    ArchiveBackend,
    MappedBackend,
    load_dataset,
    save_dataset,
    save_dataset_v2,
)
from repro.io.backends import LazyCertificates
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry
from repro.scanner.dataset import ScanDataset
from repro.scanner.shards import columns_equal
from repro.study import Study


@pytest.fixture(scope="module")
def corpus_paths(tmp_path_factory, tiny_synthetic):
    """The tiny corpus saved as a native v3 container and a legacy v2 zip."""
    directory = tmp_path_factory.mktemp("mapped")
    v3 = directory / "native.rpz"
    v2 = directory / "legacy.rpz"
    digest = save_dataset(tiny_synthetic.scans, v3)
    save_dataset_v2(tiny_synthetic.scans, v2)
    return v3, v2, digest


@pytest.fixture()
def metrics():
    """A process-wide metrics registry active for the duration of a test."""
    registry = MetricsRegistry()
    obs_runtime.activate(metrics=registry)
    try:
        yield registry
    finally:
        obs_runtime.deactivate()


class TestMappedParity:
    def test_mapped_columns_bitwise_equal_materialized(
        self, corpus_paths, tiny_synthetic
    ):
        v3, _, _ = corpus_paths
        mapped = load_dataset(v3)
        assert mapped.columns.is_mapped
        assert columns_equal(mapped.columns, tiny_synthetic.scans.columns)
        # The escape hatch copies everything out of the map, bit-for-bit.
        mapped.materialize()
        assert not mapped.columns.is_mapped
        assert columns_equal(mapped.columns, tiny_synthetic.scans.columns)

    def test_mapped_rows_equal_original(self, corpus_paths, tiny_synthetic):
        v3, _, _ = corpus_paths
        mapped = load_dataset(v3)
        for left, right in zip(mapped.scans, tiny_synthetic.scans.scans):
            assert left.day == right.day
            assert left.source == right.source
            assert list(left.observations) == list(right.observations)

    def test_corpus_digest_matches_writer(self, corpus_paths):
        v3, _, digest = corpus_paths
        assert load_dataset(v3).corpus_digest() == digest

    def test_v2_converted_equals_native(
        self, corpus_paths, tmp_path, tiny_synthetic
    ):
        v3, v2, digest = corpus_paths
        # v2 loads through the materializing converter path...
        converted = load_dataset(v2)
        assert not converted.columns.is_mapped
        assert columns_equal(converted.columns, tiny_synthetic.scans.columns)
        # ...and re-saving it reproduces the native container bitwise.
        upgraded = tmp_path / "upgraded.rpz"
        assert save_dataset(converted, upgraded) == digest
        assert upgraded.read_bytes() == v3.read_bytes()


class TestLaziness:
    def test_open_is_lazy_and_counted(self, corpus_paths, metrics):
        v3, _, _ = corpus_paths
        dataset = load_dataset(v3)
        assert metrics.counters.get("io.mmap_open_total", 0) == 1
        # Opening copies out only the small interning/meta tables — the
        # data columns and DER blob stay in the map.
        opened = metrics.counters.get("io.bytes_materialized", 0)
        assert opened < v3.stat().st_size / 10
        assert dataset.n_observations > 0

    def test_materialize_counts_bytes(self, corpus_paths, metrics):
        v3, _, _ = corpus_paths
        dataset = load_dataset(v3)
        baseline = metrics.counters.get("io.bytes_materialized", 0)
        dataset.columns.materialize()
        copied = metrics.counters.get("io.bytes_materialized", 0) - baseline
        # At least the five integer columns were copied out of the map.
        assert copied >= 5 * 4 * dataset.n_observations

    def test_column_reads_do_not_materialize(self, corpus_paths, metrics):
        v3, _, _ = corpus_paths
        dataset = load_dataset(v3)
        baseline = metrics.counters.get("io.bytes_materialized", 0)
        ips = dataset.columns.ip
        assert len({ips[i] for i in range(len(ips))}) > 1
        assert metrics.counters.get("io.bytes_materialized", 0) == baseline


class TestLazyCertificates:
    def test_mapping_protocol(self, corpus_paths, tiny_synthetic):
        v3, _, _ = corpus_paths
        dataset = load_dataset(v3)
        certs = dataset.certificates
        assert isinstance(certs, LazyCertificates)
        originals = tiny_synthetic.scans.certificates
        assert len(certs) == len(originals)
        assert set(certs) == set(originals)
        some = next(iter(originals))
        assert some in certs
        assert b"\x00" * 32 not in certs
        with pytest.raises(KeyError):
            certs[b"\x00" * 32]

    def test_on_demand_parse_matches_original(
        self, corpus_paths, tiny_synthetic
    ):
        v3, _, _ = corpus_paths
        certs = load_dataset(v3).certificates
        for fingerprint, original in tiny_synthetic.scans.certificates.items():
            parsed = certs[fingerprint]
            assert parsed.fingerprint == fingerprint
            assert parsed.to_der() == original.to_der()


class TestPickling:
    def test_mapped_dataset_pickles_by_path(self, corpus_paths):
        v3, _, digest = corpus_paths
        dataset = load_dataset(v3)
        blob = pickle.dumps(dataset)
        # The columns travel as a path, not by value: the pickle must be
        # far smaller than the container it references.
        assert len(blob) < v3.stat().st_size / 4
        clone = pickle.loads(blob)
        assert clone.columns.is_mapped
        assert columns_equal(clone.columns, dataset.columns)
        assert clone.corpus_digest() == digest

    def test_pickled_clone_ships_built_kernels(self, corpus_paths):
        v3, _, _ = corpus_paths
        dataset = load_dataset(v3)
        fingerprint = next(iter(dataset.certificates))
        appearances = dataset.appearances(fingerprint)  # builds the index
        clone = pickle.loads(pickle.dumps(dataset))
        assert clone.appearances(fingerprint) == appearances


class TestWorkerFanOut:
    def test_serial_vs_workers_identical(self, corpus_paths, tiny_synthetic):
        v3, _, _ = corpus_paths
        world = tiny_synthetic.world

        def build(workers):
            return Study(
                dataset=ScanDataset.from_backend(MappedBackend(v3)),
                trust_store=world.trust_store,
                as_of=world.routing.origin_as,
                registry=world.registry,
                workers=workers,
            )

        serial = build(1)
        fanned = build(4)
        assert serial.invalid == fanned.invalid
        assert serial.dedup().unique == fanned.dedup().unique
        base = serial.feature_evaluations()
        routed = fanned.feature_evaluations()
        assert list(base) == list(routed)
        for feature in base:
            assert base[feature].total_linked == routed[feature].total_linked
            assert {g.fingerprints for g in base[feature].result.groups} == {
                g.fingerprints for g in routed[feature].result.groups
            }
        assert {g.fingerprints for g in serial.pipeline().groups} == {
            g.fingerprints for g in fanned.pipeline().groups
        }


class TestBackendDispatch:
    def test_load_dataset_picks_mapped_backend(self, corpus_paths):
        v3, v2, _ = corpus_paths
        assert isinstance(load_dataset(v3).backend, MappedBackend)
        assert isinstance(load_dataset(v2).backend, ArchiveBackend)


class TestMutationGuards:
    """Mapped columns are read-only; mutators must say so by name."""

    def test_append_on_mapped_columns_raises(self, corpus_paths):
        from repro.scanner.records import Observation

        v3, _, _ = corpus_paths
        columns = load_dataset(v3).columns
        observation = Observation(
            ip=1, fingerprint=b"\xaa" * 32, entity="site:x", handshake=None
        )
        with pytest.raises(TypeError, match=r"materialize\(\)"):
            columns.append(0, observation, entity_ids={}, handshake_ids={})

    def test_intern_new_fingerprint_on_mapped_table_raises(self, corpus_paths):
        v3, _, _ = corpus_paths
        columns = load_dataset(v3).columns
        # Known fingerprints still resolve (read path stays open)...
        known = columns.fingerprints[0]
        assert columns.intern_fingerprint(known) == 0
        # ...but growing the mapped table is refused by name.
        with pytest.raises(TypeError, match=r"materialize\(\)"):
            columns.intern_fingerprint(b"\xbb" * 32)

    def test_materialize_reopens_mutation(self, corpus_paths):
        v3, _, _ = corpus_paths
        columns = load_dataset(v3).columns.materialize()
        before = len(columns.fingerprints)
        assert columns.intern_fingerprint(b"\xbb" * 32) == before
