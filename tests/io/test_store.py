"""Tests for corpus serialization."""

import json
import zipfile

import pytest

from repro.io.encoding import SegmentReader
from repro.io.store import (
    FORMAT_VERSION,
    load_dataset,
    read_manifest,
    save_dataset,
    save_dataset_v2,
)
from repro.scanner.dataset import ScanDataset
from repro.scanner.records import Observation, Scan
from repro.tls.handshake import HandshakeRecord

from ..core.helpers import DAY0, make_cert, make_dataset


def small_dataset():
    a = make_cert(cn="a", key_seed=1)
    b = make_cert(cn="b", key_seed=2, sans=("x.example",), crl=("http://crl/1",))
    return make_dataset(
        [
            (DAY0, "umich", [(100, a), (200, b)]),
            (DAY0 + 7, "rapid7", [(101, a)]),
        ]
    )


class TestRoundTrip:
    def test_basic(self, tmp_path):
        dataset = small_dataset()
        path = tmp_path / "corpus.rpz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert len(loaded.scans) == len(dataset.scans)
        assert set(loaded.certificates) == set(dataset.certificates)
        for original, restored in zip(dataset.scans, loaded.scans):
            assert restored.day == original.day
            assert restored.source == original.source
            assert restored.observations == original.observations

    def test_certificates_reparse_identically(self, tmp_path):
        dataset = small_dataset()
        path = tmp_path / "corpus.rpz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        for fingerprint, cert in dataset.certificates.items():
            restored = loaded.certificates[fingerprint]
            assert restored == cert
            assert restored.to_der() == cert.to_der()

    def test_handshakes_survive(self, tmp_path):
        cert = make_cert(cn="hs", key_seed=3)
        handshake = HandshakeRecord(version=0x0303, cipher=0xC013,
                                    tcp_window=29200, ip_ttl=64)
        scan = Scan(
            day=DAY0, source="test",
            observations=[Observation(1, cert.fingerprint, "device:7", handshake)],
        )
        dataset = ScanDataset([scan], {cert.fingerprint: cert})
        path = tmp_path / "hs.rpz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        obs = loaded.scans[0].observations[0]
        assert obs.handshake == handshake
        assert obs.entity == "device:7"

    def test_entities_survive(self, tmp_path):
        cert = make_cert(cn="e", key_seed=4)
        scan = Scan(
            day=DAY0, source="test",
            observations=[Observation(1, cert.fingerprint, "device:42")],
        )
        dataset = ScanDataset([scan], {cert.fingerprint: cert})
        path = tmp_path / "e.rpz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.entities_of(cert.fingerprint) == {"device:42"}

    def test_synthetic_round_trip(self, tmp_path, tiny_synthetic, tiny_study):
        path = tmp_path / "tiny.rpz"
        save_dataset(tiny_synthetic.scans, path)
        loaded = load_dataset(path)
        assert loaded.n_observations == tiny_synthetic.scans.n_observations
        # Analyses produce identical results on the restored corpus.
        from repro.core.validation import validate_dataset

        report = validate_dataset(loaded, tiny_synthetic.world.trust_store)
        assert report.invalid == tiny_study.invalid


class TestFormat:
    def test_manifest_contents(self, tmp_path):
        dataset = small_dataset()
        path = tmp_path / "m.rpz"
        save_dataset(dataset, path)
        manifest = read_manifest(path)
        assert manifest["format"] == FORMAT_VERSION
        assert manifest["n_scans"] == 2
        assert manifest["n_certificates"] == 2
        assert manifest["n_observations"] == 3

    def test_der_blobs_standalone_parseable(self, tmp_path):
        import struct

        from repro.x509.certificate import Certificate

        dataset = small_dataset()
        path = tmp_path / "der.rpz"
        save_dataset(dataset, path)
        # The certificates segment keeps the length-prefixed DER record
        # encoding of formats 1/2: parseable without this library.
        blob = bytes(SegmentReader(path).raw("certificates.der"))
        (first_len,) = struct.unpack_from(">I", blob, 0)
        cert = Certificate.from_der(blob[4:4 + first_len])
        assert cert.fingerprint in dataset.certificates

    def test_segment_alignment(self, tmp_path):
        dataset = small_dataset()
        path = tmp_path / "align.rpz"
        save_dataset(dataset, path)
        reader = SegmentReader(path)
        for name in reader.names():
            assert reader.entry(name)["offset"] % 16 == 0, name

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "bad.rpz"
        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr("manifest.json", json.dumps({"format": 99}))
            archive.writestr("certificates.der", b"")
            archive.writestr("scans.jsonl", "")
        with pytest.raises(ValueError):
            load_dataset(path)

    def test_overwrite(self, tmp_path):
        dataset = small_dataset()
        path = tmp_path / "o.rpz"
        save_dataset(dataset, path)
        save_dataset(dataset, path)  # second write must not raise
        assert load_dataset(path).n_observations == 3

    def test_empty_scans_round_trip(self, tmp_path):
        cert = make_cert(cn="lonely", key_seed=9)
        dataset = ScanDataset(
            [
                Scan(day=DAY0, source="umich", observations=[]),
                Scan(day=DAY0 + 7, source="rapid7", observations=[]),
            ],
            {cert.fingerprint: cert},
        )
        path = tmp_path / "empty.rpz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert [scan.day for scan in loaded.scans] == [DAY0, DAY0 + 7]
        assert loaded.n_observations == 0
        # Unobserved certificates still travel with the corpus.
        assert cert.fingerprint in loaded.certificates
        assert loaded.appearances(cert.fingerprint) == []

    def test_corrupt_manifest_rejected(self, tmp_path):
        path = tmp_path / "corrupt.rpz"
        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr("manifest.json", "{not json at all")
            archive.writestr("certificates.der", b"")
            archive.writestr("scans.jsonl", "")
        with pytest.raises(ValueError, match="manifest"):
            load_dataset(path)

    def test_non_object_manifest_rejected(self, tmp_path):
        path = tmp_path / "list.rpz"
        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr("manifest.json", "[1, 2, 3]")
        with pytest.raises(ValueError, match="manifest"):
            load_dataset(path)


def save_dataset_v1(dataset, path):
    """Write the legacy row-oriented format 1 archive (as PR-era code did)."""
    import struct

    blob = bytearray()
    cert_index = {}
    for position, (fingerprint, cert) in enumerate(sorted(dataset.certificates.items())):
        der = cert.to_der()
        blob += struct.pack(">I", len(der))
        blob += der
        cert_index[fingerprint] = position
    scan_lines = []
    for scan in dataset.scans:
        scan_lines.append(json.dumps({
            "day": scan.day,
            "source": scan.source,
            "observations": [
                [obs.ip, cert_index[obs.fingerprint], obs.entity,
                 list(obs.handshake) if obs.handshake is not None else None]
                for obs in scan.observations
            ],
        }, separators=(",", ":")))
    manifest = {
        "format": 1,
        "n_scans": len(dataset.scans),
        "n_certificates": len(dataset.certificates),
        "n_observations": dataset.n_observations,
    }
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as archive:
        archive.writestr("manifest.json", json.dumps(manifest, indent=2))
        archive.writestr("certificates.der", bytes(blob))
        archive.writestr("scans.jsonl", "\n".join(scan_lines))


class TestV1Compatibility:
    def test_v1_archive_still_loads(self, tmp_path):
        dataset = small_dataset()
        path = tmp_path / "legacy.rpz"
        save_dataset_v1(dataset, path)
        loaded = load_dataset(path)
        assert len(loaded.scans) == len(dataset.scans)
        assert set(loaded.certificates) == set(dataset.certificates)
        for original, restored in zip(dataset.scans, loaded.scans):
            assert restored.observations == original.observations

    def test_v1_handshakes_and_entities_load(self, tmp_path):
        cert = make_cert(cn="v1hs", key_seed=5)
        handshake = HandshakeRecord(version=0x0303, cipher=0xC013,
                                    tcp_window=29200, ip_ttl=64)
        scan = Scan(
            day=DAY0, source="test",
            observations=[Observation(1, cert.fingerprint, "device:3", handshake)],
        )
        dataset = ScanDataset([scan], {cert.fingerprint: cert})
        path = tmp_path / "legacy-hs.rpz"
        save_dataset_v1(dataset, path)
        loaded = load_dataset(path)
        assert loaded.handshake_of(cert.fingerprint) == handshake
        assert loaded.entities_of(cert.fingerprint) == {"device:3"}

    def test_v1_and_v3_load_identically(self, tmp_path):
        dataset = small_dataset()
        v1, v3 = tmp_path / "one.rpz", tmp_path / "two.rpz"
        save_dataset_v1(dataset, v1)
        save_dataset(dataset, v3)
        from_v1, from_v3 = load_dataset(v1), load_dataset(v3)
        for left, right in zip(from_v1.scans, from_v3.scans):
            assert left.observations == list(right.observations)
        assert set(from_v1.certificates) == set(from_v3.certificates)


class TestV2Compatibility:
    def test_v2_archive_still_loads(self, tmp_path):
        dataset = small_dataset()
        path = tmp_path / "legacy2.rpz"
        save_dataset_v2(dataset, path)
        assert read_manifest(path)["format"] == 2
        loaded = load_dataset(path)
        assert len(loaded.scans) == len(dataset.scans)
        assert set(loaded.certificates) == set(dataset.certificates)
        for original, restored in zip(dataset.scans, loaded.scans):
            assert restored.observations == original.observations

    def test_v2_handshakes_and_entities_load(self, tmp_path):
        cert = make_cert(cn="v2hs", key_seed=6)
        handshake = HandshakeRecord(version=0x0303, cipher=0xC013,
                                    tcp_window=29200, ip_ttl=64)
        scan = Scan(
            day=DAY0, source="test",
            observations=[Observation(1, cert.fingerprint, "device:5", handshake)],
        )
        dataset = ScanDataset([scan], {cert.fingerprint: cert})
        path = tmp_path / "legacy2-hs.rpz"
        save_dataset_v2(dataset, path)
        loaded = load_dataset(path)
        assert loaded.handshake_of(cert.fingerprint) == handshake
        assert loaded.entities_of(cert.fingerprint) == {"device:5"}

    def test_v2_and_v3_load_identically(self, tmp_path):
        dataset = small_dataset()
        v2, v3 = tmp_path / "two.rpz", tmp_path / "three.rpz"
        save_dataset_v2(dataset, v2)
        save_dataset(dataset, v3)
        from_v2, from_v3 = load_dataset(v2), load_dataset(v3)
        for left, right in zip(from_v2.scans, from_v3.scans):
            assert left.observations == list(right.observations)
        assert set(from_v2.certificates) == set(from_v3.certificates)
