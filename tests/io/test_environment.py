"""Tests for analysis-environment serialization."""

from repro.io.environment import (
    AnalysisEnvironment,
    load_environment,
    save_environment,
)
from repro.net.asn import ASType


class TestEnvironmentRoundTrip:
    def test_trust_store_survives(self, tmp_path, tiny_synthetic):
        environment = AnalysisEnvironment.of_world(tiny_synthetic.world)
        path = tmp_path / "env.rpe"
        save_environment(environment, path)
        loaded = load_environment(path)
        original = {c.fingerprint for c in environment.trust_store}
        restored = {c.fingerprint for c in loaded.trust_store}
        assert restored == original

    def test_routing_survives(self, tmp_path, tiny_synthetic):
        world = tiny_synthetic.world
        environment = AnalysisEnvironment.of_world(world)
        path = tmp_path / "env.rpe"
        save_environment(environment, path)
        loaded = load_environment(path)
        assert loaded.routing.snapshot_days() == world.routing.snapshot_days()
        # Spot-check origin lookups across the transfer boundary.
        day = world.config.start_day + 50
        for device in world.devices[:25]:
            if not device.is_active(day):
                continue
            ip = world.device_ip(device, day)
            for when in (day, world.config.prefix_transfer_day + 10):
                assert loaded.routing.origin_as(ip, when) == world.routing.origin_as(ip, when)

    def test_registry_survives(self, tmp_path, tiny_synthetic):
        world = tiny_synthetic.world
        path = tmp_path / "env.rpe"
        save_environment(AnalysisEnvironment.of_world(world), path)
        loaded = load_environment(path)
        assert len(loaded.registry) == len(world.registry)
        deutsche_telekom = loaded.registry.get(3320)
        assert deutsche_telekom is not None
        assert deutsche_telekom.as_type is ASType.TRANSIT_ACCESS
        assert deutsche_telekom.country_at(5000) == "DEU"

    def test_study_over_loaded_environment(self, tmp_path, tiny_synthetic, tiny_study):
        from repro.study import Study

        path = tmp_path / "env.rpe"
        save_environment(AnalysisEnvironment.of_world(tiny_synthetic.world), path)
        loaded = load_environment(path)
        study = Study(
            dataset=tiny_synthetic.scans,
            trust_store=loaded.trust_store,
            as_of=loaded.routing.origin_as,
            registry=loaded.registry,
        )
        assert study.validation().invalid == tiny_study.invalid
