"""Tests for the pluggable dataset backends."""

from repro.io import save_dataset
from repro.io.backends import ArchiveBackend, DatasetBackend, InMemoryBackend
from repro.scanner.dataset import ScanDataset

from ..core.helpers import DAY0, make_cert, make_dataset


def corpus():
    cert_a = make_cert(cn="a", key_seed=1)
    cert_b = make_cert(cn="b", key_seed=2, sans=("x.example",))
    return make_dataset(
        [
            (DAY0, "umich", [(100, cert_a), (200, cert_b)]),
            (DAY0 + 7, "rapid7", [(101, cert_a)]),
        ]
    )


class TestProtocol:
    def test_backends_satisfy_protocol(self, tmp_path):
        dataset = corpus()
        path = tmp_path / "c.rpz"
        save_dataset(dataset, path)
        assert isinstance(InMemoryBackend.from_dataset(dataset), DatasetBackend)
        assert isinstance(ArchiveBackend(path), DatasetBackend)


class TestInMemoryBackend:
    def test_round_trip(self):
        dataset = corpus()
        rebuilt = ScanDataset.from_backend(InMemoryBackend.from_dataset(dataset))
        assert len(rebuilt.scans) == len(dataset.scans)
        for left, right in zip(dataset.scans, rebuilt.scans):
            assert left.day == right.day
            assert left.source == right.source
            assert left.observations == right.observations
        assert set(rebuilt.certificates) == set(dataset.certificates)

    def test_describe(self):
        backend = InMemoryBackend.from_dataset(corpus())
        info = backend.describe()
        assert info["n_scans"] == 2
        assert info["n_observations"] == 3
        assert info["n_certificates"] == 2

    def test_columnar_storage_is_compact(self):
        # The backend holds columns + metadata, not row objects.
        backend = InMemoryBackend.from_dataset(corpus())
        assert len(backend.columns) == 3
        assert [meta[2:] for meta in backend.scan_meta] == [(0, 2), (2, 3)]

    def test_analyses_identical_through_backend(self, tiny_synthetic):
        dataset = tiny_synthetic.scans
        rebuilt = ScanDataset.from_backend(InMemoryBackend.from_dataset(dataset))
        from repro.core.validation import validate_dataset

        direct = validate_dataset(dataset, tiny_synthetic.world.trust_store)
        routed = validate_dataset(rebuilt, tiny_synthetic.world.trust_store)
        assert direct.invalid == routed.invalid
        assert direct.valid == routed.valid


class TestArchiveBackend:
    def test_round_trip(self, tmp_path):
        dataset = corpus()
        path = tmp_path / "c.rpz"
        save_dataset(dataset, path)
        rebuilt = ScanDataset.from_backend(ArchiveBackend(path))
        for left, right in zip(dataset.scans, rebuilt.scans):
            assert left.observations == right.observations
        assert set(rebuilt.certificates) == set(dataset.certificates)

    def test_describe_reads_only_manifest(self, tmp_path):
        dataset = corpus()
        path = tmp_path / "c.rpz"
        save_dataset(dataset, path)
        info = ArchiveBackend(path).describe()
        assert info["format"] == 3
        assert info["n_observations"] == 3

    def test_piecemeal_loads(self, tmp_path):
        dataset = corpus()
        path = tmp_path / "c.rpz"
        save_dataset(dataset, path)
        backend = ArchiveBackend(path)
        assert set(backend.load_certificates()) == set(dataset.certificates)
        assert len(backend.load_scans()) == 2
