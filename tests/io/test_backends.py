"""Tests for the pluggable dataset backends."""

import pytest

from repro.io import save_dataset
from repro.io.backends import (
    ArchiveBackend,
    DatasetBackend,
    InMemoryBackend,
    LazyCertificates,
    MappedBackend,
)
from repro.io.encoding import FP_HASH_SEGMENT, SegmentReader, SegmentWriter
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry
from repro.scanner.dataset import ScanDataset

from ..core.helpers import DAY0, make_cert, make_dataset


def corpus():
    cert_a = make_cert(cn="a", key_seed=1)
    cert_b = make_cert(cn="b", key_seed=2, sans=("x.example",))
    return make_dataset(
        [
            (DAY0, "umich", [(100, cert_a), (200, cert_b)]),
            (DAY0 + 7, "rapid7", [(101, cert_a)]),
        ]
    )


class TestProtocol:
    def test_backends_satisfy_protocol(self, tmp_path):
        dataset = corpus()
        path = tmp_path / "c.rpz"
        save_dataset(dataset, path)
        assert isinstance(InMemoryBackend.from_dataset(dataset), DatasetBackend)
        assert isinstance(ArchiveBackend(path), DatasetBackend)


class TestInMemoryBackend:
    def test_round_trip(self):
        dataset = corpus()
        rebuilt = ScanDataset.from_backend(InMemoryBackend.from_dataset(dataset))
        assert len(rebuilt.scans) == len(dataset.scans)
        for left, right in zip(dataset.scans, rebuilt.scans):
            assert left.day == right.day
            assert left.source == right.source
            assert left.observations == right.observations
        assert set(rebuilt.certificates) == set(dataset.certificates)

    def test_describe(self):
        backend = InMemoryBackend.from_dataset(corpus())
        info = backend.describe()
        assert info["n_scans"] == 2
        assert info["n_observations"] == 3
        assert info["n_certificates"] == 2

    def test_columnar_storage_is_compact(self):
        # The backend holds columns + metadata, not row objects.
        backend = InMemoryBackend.from_dataset(corpus())
        assert len(backend.columns) == 3
        assert [meta[2:] for meta in backend.scan_meta] == [(0, 2), (2, 3)]

    def test_analyses_identical_through_backend(self, tiny_synthetic):
        dataset = tiny_synthetic.scans
        rebuilt = ScanDataset.from_backend(InMemoryBackend.from_dataset(dataset))
        from repro.core.validation import validate_dataset

        direct = validate_dataset(dataset, tiny_synthetic.world.trust_store)
        routed = validate_dataset(rebuilt, tiny_synthetic.world.trust_store)
        assert direct.invalid == routed.invalid
        assert direct.valid == routed.valid


class TestArchiveBackend:
    def test_round_trip(self, tmp_path):
        dataset = corpus()
        path = tmp_path / "c.rpz"
        save_dataset(dataset, path)
        rebuilt = ScanDataset.from_backend(ArchiveBackend(path))
        for left, right in zip(dataset.scans, rebuilt.scans):
            assert left.observations == right.observations
        assert set(rebuilt.certificates) == set(dataset.certificates)

    def test_describe_reads_only_manifest(self, tmp_path):
        dataset = corpus()
        path = tmp_path / "c.rpz"
        save_dataset(dataset, path)
        info = ArchiveBackend(path).describe()
        assert info["format"] == 3
        assert info["n_observations"] == 3

    def test_piecemeal_loads(self, tmp_path):
        dataset = corpus()
        path = tmp_path / "c.rpz"
        save_dataset(dataset, path)
        backend = ArchiveBackend(path)
        assert set(backend.load_certificates()) == set(dataset.certificates)
        assert len(backend.load_scans()) == 2


@pytest.fixture()
def metrics():
    registry = MetricsRegistry()
    obs_runtime.activate(metrics=registry)
    try:
        yield registry
    finally:
        obs_runtime.deactivate()


@pytest.fixture()
def mapped(tmp_path):
    dataset = corpus()
    path = tmp_path / "mapped.rpz"
    save_dataset(dataset, path)
    return dataset, path


def _strip_hash_segment(src, dst):
    """Rewrite a container without ``cert_hash`` (a pre-segment corpus)."""
    reader = SegmentReader(src)
    writer = SegmentWriter(dst, meta=dict(reader.meta))
    for name in reader.names():
        if name == FP_HASH_SEGMENT:
            continue
        entry = reader.entry(name)
        writer.add_chunks(
            name, (reader.raw(name),), kind=entry["kind"],
            typecode=entry.get("typecode"), stride=entry.get("stride"),
        )
    writer.close()


class TestLazyCertificates:
    def test_saved_containers_carry_the_hash_segment(self, mapped):
        _, path = mapped
        assert FP_HASH_SEGMENT in SegmentReader(path)

    def test_lookups_use_the_persisted_hash_index(self, mapped):
        dataset, path = mapped
        certs = MappedBackend(path).load_certificates()
        for fingerprint, expected in dataset.certificates.items():
            assert certs[fingerprint].subject_cn == expected.subject_cn
        assert certs._hash is not None
        assert certs._sorted_rows is None

    def test_parse_memo_counts_actual_parses_only(self, mapped, metrics):
        dataset, path = mapped
        certs = MappedBackend(path).load_certificates()
        fingerprints = list(dataset.certificates)
        for fingerprint in fingerprints:
            certs[fingerprint]
        assert metrics.counters["io.der_parse_total"] == len(fingerprints)
        for fingerprint in fingerprints * 3:
            certs[fingerprint]
        assert metrics.counters["io.der_parse_total"] == len(fingerprints)

    def test_memo_is_bounded_and_evicts_lru(self, mapped, metrics):
        _, path = mapped
        certs = LazyCertificates(SegmentReader(path), cache_size=1)
        first, second = list(certs)[:2]
        certs[first]
        certs[second]  # evicts first
        certs[second]  # hit
        certs[first]   # reparse
        assert metrics.counters["io.der_parse_total"] == 3

    def test_missing_and_malformed_keys(self, mapped):
        _, path = mapped
        certs = MappedBackend(path).load_certificates()
        with pytest.raises(KeyError):
            certs[b"\x00" * 32]
        assert b"\x00" * 32 not in certs
        assert "not-bytes" not in certs

    def test_containers_without_the_segment_fall_back(
        self, mapped, tmp_path
    ):
        dataset, path = mapped
        legacy = tmp_path / "legacy.rpz"
        _strip_hash_segment(path, legacy)
        assert FP_HASH_SEGMENT not in SegmentReader(legacy)
        certs = MappedBackend(legacy).load_certificates()
        for fingerprint, expected in dataset.certificates.items():
            assert certs[fingerprint].subject_cn == expected.subject_cn
        assert certs._hash is None
        assert certs._sorted_rows is not None
        with pytest.raises(KeyError):
            certs[b"\xff" * 32]
