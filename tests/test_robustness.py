"""Failure injection and cross-module invariants.

Fuzzes the parse boundaries (DER, archives), and property-tests the
methodology invariants that no single unit test pins down: input-order
independence, monotonicity in tolerance parameters, and determinism.
"""

import json
import zipfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dedup import classify_unique_certificates
from repro.core.features import Feature
from repro.core.linking import link_on_feature
from repro.io.store import load_dataset, save_dataset
from repro.x509.asn1 import DERError, DERReader
from repro.x509.certificate import Certificate

from .core.helpers import DAY0, make_cert, make_dataset, make_keypair


class TestDERFuzz:
    @given(st.binary(max_size=200))
    def test_reader_never_crashes_on_garbage(self, blob):
        reader = DERReader(blob)
        try:
            while not reader.at_end():
                reader.read_tlv()
        except DERError:
            pass  # rejection is the contract; any other exception fails

    @given(st.binary(max_size=300))
    def test_certificate_parser_rejects_cleanly(self, blob):
        try:
            Certificate.from_der(blob)
        except (DERError, ValueError, OverflowError):
            pass

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=400), st.integers(min_value=0, max_value=255))
    def test_truncated_and_bitflipped_certs_never_crash(self, cut, flip):
        cert = make_cert(cn="fuzz", key_seed=1, sans=("a.example",),
                         crl=("http://crl/x",))
        blob = bytearray(cert.to_der())
        blob = blob[: max(1, min(cut, len(blob)))]
        blob[len(blob) // 2] ^= flip
        try:
            Certificate.from_der(bytes(blob))
        except (DERError, ValueError, OverflowError):
            pass


class TestArchiveFailures:
    def test_missing_member(self, tmp_path):
        path = tmp_path / "broken.rpz"
        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr("manifest.json", json.dumps({"format": 1}))
            # no certificates.der / scans.jsonl
        with pytest.raises(KeyError):
            load_dataset(path)

    def test_truncated_container(self, tmp_path):
        cert = make_cert(cn="t", key_seed=1)
        dataset = make_dataset([(DAY0, [(1, cert)])])
        path = tmp_path / "t.rpz"
        save_dataset(dataset, path)
        broken = tmp_path / "broken.rpz"
        blob = path.read_bytes()
        broken.write_bytes(blob[:-10])
        with pytest.raises(Exception):
            load_dataset(broken)

    def test_corrupt_certificate_record(self, tmp_path):
        cert = make_cert(cn="t", key_seed=1)
        dataset = make_dataset([(DAY0, [(1, cert)])])
        path = tmp_path / "t.rpz"
        save_dataset(dataset, path)
        from repro.io.encoding import SegmentReader

        entry = SegmentReader(path).entry("certificates.der")
        blob = bytearray(path.read_bytes())
        # Flip bytes inside the first DER record (past the length prefix).
        for offset in range(entry["offset"] + 8, entry["offset"] + 16):
            blob[offset] ^= 0xFF
        broken = tmp_path / "broken.rpz"
        broken.write_bytes(bytes(blob))
        loaded = load_dataset(broken)
        with pytest.raises(Exception):
            loaded.certificates[cert.fingerprint]

    def test_not_a_zip(self, tmp_path):
        path = tmp_path / "junk.rpz"
        path.write_bytes(b"definitely not a zip")
        with pytest.raises(zipfile.BadZipFile):
            load_dataset(path)


class TestMethodologyInvariants:
    def build_population(self, n_chains=4, n_loners=3):
        certs = []
        scans = {DAY0: [], DAY0 + 7: [], DAY0 + 14: []}
        for chain in range(n_chains):
            keypair = make_keypair(100 + chain)
            for epoch, day in enumerate(scans):
                cert = make_cert(cn=f"chain-{chain}-{epoch}", keypair=keypair)
                scans[day].append((chain + 1, cert))
                certs.append(cert)
        for loner in range(n_loners):
            cert = make_cert(cn=f"loner-{loner}", key_seed=200 + loner)
            scans[DAY0].append((50 + loner, cert))
            certs.append(cert)
        dataset = make_dataset(sorted(scans.items()))
        return dataset, [c.fingerprint for c in certs]

    @settings(max_examples=10, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_linking_is_input_order_independent(self, rng):
        dataset, fingerprints = self.build_population()
        shuffled = list(fingerprints)
        rng.shuffle(shuffled)
        base = link_on_feature(dataset, fingerprints, Feature.PUBLIC_KEY)
        permuted = link_on_feature(dataset, shuffled, Feature.PUBLIC_KEY)
        assert {g.fingerprints for g in base.groups} == {
            g.fingerprints for g in permuted.groups
        }

    @given(st.integers(min_value=0, max_value=4))
    def test_linked_count_monotone_in_overlap_allowance(self, allowance):
        dataset, fingerprints = self.build_population()
        tighter = link_on_feature(
            dataset, fingerprints, Feature.PUBLIC_KEY, allowance
        )
        looser = link_on_feature(
            dataset, fingerprints, Feature.PUBLIC_KEY, allowance + 1
        )
        assert looser.total_linked >= tighter.total_linked

    @given(st.integers(min_value=1, max_value=4))
    def test_dedup_unique_set_monotone_in_threshold(self, threshold):
        cert_a = make_cert(cn="a", key_seed=1)
        cert_b = make_cert(cn="b", key_seed=2)
        dataset = make_dataset(
            [
                (DAY0, [(1, cert_a), (2, cert_a), (3, cert_a), (9, cert_b)]),
                (DAY0 + 7, [(1, cert_a), (9, cert_b)]),
            ]
        )
        fps = [cert_a.fingerprint, cert_b.fingerprint]
        tight = classify_unique_certificates(dataset, fps, threshold)
        loose = classify_unique_certificates(dataset, fps, threshold + 1)
        assert tight.unique <= loose.unique

    def test_groups_partition_their_members(self):
        dataset, fingerprints = self.build_population()
        result = link_on_feature(dataset, fingerprints, Feature.PUBLIC_KEY)
        seen = set()
        for group in result.groups:
            for fingerprint in group.fingerprints:
                assert fingerprint not in seen
                seen.add(fingerprint)
        assert seen <= set(fingerprints)


class TestWorldDeterminismAcrossProcesses:
    def test_fingerprints_are_process_independent(self):
        # A regression here means PYTHONHASHSEED leaked into the world.
        import os
        import pathlib
        import subprocess
        import sys

        import repro

        # The child runs under a *controlled* environment so each
        # PYTHONHASHSEED value genuinely differs — but it still needs to
        # find the package, which may be on PYTHONPATH rather than
        # installed (the scrubbed env previously made the import fail,
        # masking what this test measures).
        package_root = str(pathlib.Path(repro.__file__).resolve().parents[1])
        script = (
            "from repro.datasets.synthetic import generate;"
            "from repro.internet.population import WorldConfig;"
            "cfg = WorldConfig(seed=5, n_devices=12, n_websites=4,"
            " n_generic_access=8, n_enterprise=3, n_hosting=3, unused_roots=0);"
            "ds = generate(cfg, scan_stride=40);"
            "print(sorted(fp.hex() for fp in ds.scans.certificates)[:3])"
        )
        outputs = set()
        for hash_seed in ("0", "424242"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True,
                env={
                    "PYTHONHASHSEED": hash_seed,
                    "PATH": "/usr/bin:/bin",
                    "PYTHONPATH": os.pathsep.join(
                        [package_root, os.environ.get("PYTHONPATH", "")]
                    ).rstrip(os.pathsep),
                },
            )
            assert result.returncode == 0, result.stderr
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1
