"""Tests for the synthetic dataset presets."""

from repro.datasets.synthetic import generate, tiny
from repro.internet.population import WorldConfig


class TestTinyPreset:
    def test_structure(self, tiny_synthetic):
        assert len(tiny_synthetic.world.devices) == 220
        assert len(tiny_synthetic.world.websites) == 75
        assert len(tiny_synthetic.campaigns) == 2
        assert len(tiny_synthetic.scans.scans) > 10

    def test_both_campaigns_ran(self, tiny_synthetic):
        sources = {scan.source for scan in tiny_synthetic.scans.scans}
        assert sources == {"umich", "rapid7"}

    def test_deterministic(self, tiny_synthetic):
        clone = tiny(seed=2016)
        assert len(clone.scans.scans) == len(tiny_synthetic.scans.scans)
        for a, b in zip(clone.scans.scans, tiny_synthetic.scans.scans):
            assert a.day == b.day
            assert a.observations == b.observations

    def test_different_seed_differs(self):
        other = tiny(seed=7)
        base = tiny(seed=2016)
        assert (
            sorted(other.scans.certificates)
            != sorted(base.scans.certificates)
        )

    def test_certificates_resolve(self, tiny_synthetic):
        dataset = tiny_synthetic.scans
        for scan in dataset.scans[:3]:
            for obs in scan.observations:
                cert = dataset.certificate(obs.fingerprint)
                assert cert.fingerprint == obs.fingerprint


class TestGenerate:
    def test_custom_config(self):
        config = WorldConfig(
            seed=1, n_devices=30, n_websites=10, n_generic_access=8,
            n_enterprise=3, n_hosting=3, unused_roots=0,
        )
        synthetic = generate(config, scan_stride=20)
        assert len(synthetic.world.devices) == 30
        assert synthetic.scans.n_observations > 0
