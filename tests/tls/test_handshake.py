"""Tests for the TLS substrate: ciphers, negotiation, vendor profiles."""

import pytest

from repro.tls.ciphers import (
    REGISTRY,
    ZGRAB_OFFER,
    KeyExchange,
    forward_secure_fraction,
    suite,
)
from repro.tls.handshake import ServerProfile, TLSVersion, negotiate
from repro.tls.profiles import (
    VENDOR_TLS_PROFILES,
    WEBSITE_TLS_PROFILE,
    tls_profile_for,
)


class TestCipherRegistry:
    def test_lookup(self):
        aes = suite(0x002F)
        assert aes.name == "TLS_RSA_WITH_AES_128_CBC_SHA"
        assert aes.key_exchange is KeyExchange.RSA
        assert not aes.forward_secure

    def test_unknown_code(self):
        with pytest.raises(KeyError):
            suite(0xFFFF)

    def test_pfs_classification(self):
        assert suite(0xC013).forward_secure        # ECDHE
        assert suite(0x0033).forward_secure        # DHE
        assert not suite(0x0005).forward_secure    # RC4/RSA

    def test_zgrab_offer_covers_registry(self):
        assert set(ZGRAB_OFFER) == set(REGISTRY)

    def test_forward_secure_fraction(self):
        assert forward_secure_fraction([0xC013, 0x002F]) == 0.5
        assert forward_secure_fraction([]) == 0.0


class TestNegotiate:
    def test_server_preference_wins(self):
        profile = ServerProfile((0x002F, 0xC013), TLSVersion.TLS1_2)
        record = negotiate(profile)
        # Client prefers ECDHE first, but the server list starts with RSA.
        assert record.cipher == 0x002F

    def test_version_is_minimum(self):
        profile = ServerProfile((0x002F,), TLSVersion.TLS1_0)
        record = negotiate(profile, client_max_version=TLSVersion.TLS1_2)
        assert record.version == int(TLSVersion.TLS1_0)
        modern = ServerProfile((0x002F,), TLSVersion.TLS1_2)
        record = negotiate(modern, client_max_version=TLSVersion.TLS1_1)
        assert record.version == int(TLSVersion.TLS1_1)

    def test_no_common_suite(self):
        profile = ServerProfile((0x002F,), TLSVersion.TLS1_0)
        assert negotiate(profile, client_offer=[0xC013]) is None

    def test_record_carries_transport_traits(self):
        profile = ServerProfile((0xC013,), TLSVersion.TLS1_2,
                                tcp_window=65535, ip_ttl=128)
        record = negotiate(profile)
        assert record.tcp_window == 65535
        assert record.ip_ttl == 128
        assert record.forward_secure

    def test_stack_fingerprint_excludes_cipher(self):
        profile = ServerProfile((0xC013, 0x002F), TLSVersion.TLS1_2)
        full = negotiate(profile)
        rsa_only_client = negotiate(profile, client_offer=[0x002F])
        # Different negotiated ciphers, same stack fingerprint.
        assert full.cipher != rsa_only_client.cipher
        assert full.stack_fingerprint() == rsa_only_client.stack_fingerprint()

    def test_records_hashable(self):
        profile = ServerProfile((0x002F,), TLSVersion.TLS1_0)
        assert isinstance(hash(negotiate(profile)), int)


class TestVendorProfiles:
    def test_every_catalog_vendor_has_a_profile(self):
        from repro.internet.vendors import standard_catalog

        for vendor in standard_catalog():
            assert vendor.name in VENDOR_TLS_PROFILES, vendor.name

    def test_lancom_has_no_pfs(self):
        # Footnote 10: Lancom devices do not support PFS.
        assert not tls_profile_for("lancom").supports_pfs()

    def test_fritzbox_supports_pfs(self):
        assert tls_profile_for("fritzbox").supports_pfs()

    def test_websites_support_pfs(self):
        assert WEBSITE_TLS_PROFILE.supports_pfs()

    def test_unknown_vendor_falls_back(self):
        profile = tls_profile_for("never-heard-of-it")
        assert not profile.supports_pfs()

    def test_profiles_negotiate_against_zgrab(self):
        for name, profile in VENDOR_TLS_PROFILES.items():
            assert negotiate(profile) is not None, name

    def test_fingerprints_distinguish_vendor_families(self):
        # The extension's premise: stacks differ observably across families.
        fingerprints = {
            negotiate(profile).stack_fingerprint()
            for profile in VENDOR_TLS_PROFILES.values()
        }
        assert len(fingerprints) >= 8
