"""Tests for the AS registry."""

import pytest

from repro.net.asn import ASInfo, ASRegistry, ASType, OrgRecord


def make_as(asn=3320, as_type=ASType.TRANSIT_ACCESS):
    return ASInfo(
        asn=asn,
        name=f"AS{asn}",
        as_type=as_type,
        org_history=[
            OrgRecord(valid_from=0, org_name="Deutsche Telekom AG", country="DEU"),
            OrgRecord(valid_from=400, org_name="Deutsche Telekom AG", country="DEU"),
        ],
    )


class TestASInfo:
    def test_org_at_picks_closest_snapshot(self):
        info = ASInfo(
            asn=1,
            name="AS1",
            as_type=ASType.CONTENT,
            org_history=[
                OrgRecord(0, "Old Org", "USA"),
                OrgRecord(300, "New Org", "DEU"),
            ],
        )
        # Closest, not most-recent-before: mirrors CAIDA's coarse snapshots.
        assert info.org_at(100).org_name == "Old Org"
        assert info.org_at(200).org_name == "New Org"
        assert info.country_at(500) == "DEU"

    def test_org_at_empty_history(self):
        info = ASInfo(asn=2, name="AS2", as_type=ASType.UNKNOWN)
        assert info.org_at(10) is None
        assert info.country_at(10) is None


class TestASRegistry:
    def test_add_get_contains(self):
        registry = ASRegistry()
        info = make_as()
        registry.add(info)
        assert registry.get(3320) is info
        assert 3320 in registry
        assert 9999 not in registry
        assert registry.get(9999) is None
        assert len(registry) == 1

    def test_duplicate_registration_rejected(self):
        registry = ASRegistry()
        registry.add(make_as())
        with pytest.raises(ValueError):
            registry.add(make_as())

    def test_classify(self):
        registry = ASRegistry.from_infos(
            [make_as(1, ASType.CONTENT), make_as(2, ASType.ENTERPRISE)]
        )
        assert registry.classify(1) is ASType.CONTENT
        assert registry.classify(2) is ASType.ENTERPRISE
        assert registry.classify(12345) is ASType.UNKNOWN

    def test_by_type(self):
        registry = ASRegistry.from_infos(
            [
                make_as(1, ASType.CONTENT),
                make_as(2, ASType.CONTENT),
                make_as(3, ASType.TRANSIT_ACCESS),
            ]
        )
        assert {info.asn for info in registry.by_type(ASType.CONTENT)} == {1, 2}
        assert registry.by_type(ASType.UNKNOWN) == []

    def test_iteration(self):
        infos = [make_as(1), make_as(2), make_as(3)]
        registry = ASRegistry.from_infos(infos)
        assert sorted(info.asn for info in registry) == [1, 2, 3]
