"""Tests for the BGP prefix-to-AS substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.net.bgp import PrefixTable, Route, RoutingHistory
from repro.net.ip import Prefix, str_to_ip


def make_table():
    return PrefixTable(
        [
            Route(Prefix.parse("10.0.0.0/8"), 100),
            Route(Prefix.parse("10.1.0.0/16"), 200),
            Route(Prefix.parse("10.1.2.0/24"), 300),
            Route(Prefix.parse("192.0.2.0/24"), 400),
        ]
    )


class TestPrefixTable:
    def test_longest_prefix_match(self):
        table = make_table()
        assert table.origin_as(str_to_ip("10.1.2.3")) == 300
        assert table.origin_as(str_to_ip("10.1.9.9")) == 200
        assert table.origin_as(str_to_ip("10.9.9.9")) == 100
        assert table.origin_as(str_to_ip("192.0.2.55")) == 400

    def test_unrouted_returns_none(self):
        table = make_table()
        assert table.lookup(str_to_ip("8.8.8.8")) is None
        assert table.origin_as(str_to_ip("8.8.8.8")) is None

    def test_reannounce_replaces(self):
        table = make_table()
        table.add(Route(Prefix.parse("10.1.2.0/24"), 999))
        assert table.origin_as(str_to_ip("10.1.2.3")) == 999
        assert len(table) == 4

    def test_withdraw(self):
        table = make_table()
        assert table.withdraw(Prefix.parse("10.1.2.0/24"))
        assert table.origin_as(str_to_ip("10.1.2.3")) == 200
        assert not table.withdraw(Prefix.parse("10.1.2.0/24"))
        assert len(table) == 3

    def test_prefixes_of(self):
        table = make_table()
        table.add(Route(Prefix.parse("10.2.0.0/16"), 100))
        assert set(map(str, table.prefixes_of(100))) == {"10.0.0.0/8", "10.2.0.0/16"}

    def test_transfer_returns_new_table(self):
        table = make_table()
        moved = table.transfer(Prefix.parse("10.1.0.0/16"), 555)
        assert moved.origin_as(str_to_ip("10.1.9.9")) == 555
        # The original table is untouched.
        assert table.origin_as(str_to_ip("10.1.9.9")) == 200

    def test_transfer_of_unannounced_prefix_fails(self):
        with pytest.raises(KeyError):
            make_table().transfer(Prefix.parse("172.16.0.0/12"), 1)

    def test_copy_is_independent(self):
        table = make_table()
        clone = table.copy()
        clone.withdraw(Prefix.parse("10.0.0.0/8"))
        assert table.origin_as(str_to_ip("10.9.9.9")) == 100
        assert clone.origin_as(str_to_ip("10.9.9.9")) is None

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_lookup_result_always_covers_query(self, ip):
        table = make_table()
        route = table.lookup(ip)
        if route is not None:
            assert route.prefix.contains(ip)

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_lookup_is_most_specific(self, ip):
        table = make_table()
        route = table.lookup(ip)
        if route is not None:
            covering = [r for r in table if r.prefix.contains(ip)]
            assert route.prefix.length == max(r.prefix.length for r in covering)


class TestRoutingHistory:
    def test_constant_history(self):
        history = RoutingHistory.constant(make_table())
        assert history.origin_as(str_to_ip("10.1.2.3"), 0) == 300
        assert history.origin_as(str_to_ip("10.1.2.3"), 10_000) == 300

    def test_snapshot_selection(self):
        before = make_table()
        after = before.transfer(Prefix.parse("10.1.0.0/16"), 555)
        history = RoutingHistory([(0, before), (100, after)])
        assert history.origin_as(str_to_ip("10.1.9.9"), 50) == 200
        assert history.origin_as(str_to_ip("10.1.9.9"), 100) == 555
        assert history.origin_as(str_to_ip("10.1.9.9"), 500) == 555

    def test_days_before_first_snapshot_use_first(self):
        history = RoutingHistory([(100, make_table())])
        assert history.origin_as(str_to_ip("10.1.2.3"), 0) == 300

    def test_unsorted_input_is_sorted(self):
        before = make_table()
        after = before.transfer(Prefix.parse("10.1.0.0/16"), 555)
        history = RoutingHistory([(100, after), (0, before)])
        assert history.snapshot_days() == [0, 100]
        assert history.origin_as(str_to_ip("10.1.9.9"), 10) == 200

    def test_duplicate_days_rejected(self):
        table = make_table()
        with pytest.raises(ValueError):
            RoutingHistory([(0, table), (0, table)])

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            RoutingHistory([])

    def test_add_snapshot(self):
        before = make_table()
        history = RoutingHistory([(0, before)])
        after = before.transfer(Prefix.parse("10.1.0.0/16"), 777)
        history.add_snapshot(200, after)
        assert history.origin_as(str_to_ip("10.1.9.9"), 250) == 777
        with pytest.raises(ValueError):
            history.add_snapshot(200, after)
