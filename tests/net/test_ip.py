"""Tests for IPv4 address and prefix arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.net.ip import (
    IPV4_SPACE,
    Prefix,
    ip_to_str,
    is_private,
    is_reserved,
    looks_like_ipv4,
    slash8,
    slash16,
    slash24,
    str_to_ip,
    summarize_slash8,
)


class TestConversions:
    def test_round_trip_known_values(self):
        assert ip_to_str(0) == "0.0.0.0"
        assert ip_to_str(IPV4_SPACE - 1) == "255.255.255.255"
        assert str_to_ip("192.168.1.1") == 0xC0A80101
        assert ip_to_str(0xC0A80101) == "192.168.1.1"

    @given(st.integers(min_value=0, max_value=IPV4_SPACE - 1))
    def test_round_trip_property(self, ip):
        assert str_to_ip(ip_to_str(ip)) == ip

    def test_out_of_range_int_rejected(self):
        with pytest.raises(ValueError):
            ip_to_str(IPV4_SPACE)
        with pytest.raises(ValueError):
            ip_to_str(-1)

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1.2.3.-4", ""]
    )
    def test_bad_strings_rejected(self, bad):
        with pytest.raises(ValueError):
            str_to_ip(bad)

    def test_looks_like_ipv4(self):
        assert looks_like_ipv4("192.168.1.1")
        assert not looks_like_ipv4("example.com")
        assert not looks_like_ipv4("192.168.1")
        assert not looks_like_ipv4("")


class TestNetworkTruncation:
    def test_slash8(self):
        assert slash8(str_to_ip("10.1.2.3")) == 10
        assert slash8(str_to_ip("192.168.1.1")) == 192

    def test_slash16(self):
        assert slash16(str_to_ip("10.1.2.3")) == str_to_ip("10.1.0.0")

    def test_slash24(self):
        assert slash24(str_to_ip("10.1.2.3")) == str_to_ip("10.1.2.0")

    @given(st.integers(min_value=0, max_value=IPV4_SPACE - 1))
    def test_truncations_are_idempotent(self, ip):
        assert slash24(slash24(ip)) == slash24(ip)
        assert slash16(slash16(ip)) == slash16(ip)

    def test_summarize_slash8(self):
        ips = [str_to_ip("10.0.0.1"), str_to_ip("10.9.9.9"), str_to_ip("192.0.0.1")]
        assert summarize_slash8(ips) == {10: 2, 192: 1}


class TestPrefix:
    def test_parse_and_str_round_trip(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert str(prefix) == "10.0.0.0/8"
        assert prefix.length == 8
        assert prefix.size == 2 ** 24

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.1/8")
        with pytest.raises(ValueError):
            Prefix(str_to_ip("10.0.0.1"), 8)

    def test_of_masks_host_bits(self):
        prefix = Prefix.of(str_to_ip("10.1.2.3"), 16)
        assert str(prefix) == "10.1.0.0/16"

    def test_contains(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.contains(str_to_ip("10.255.255.255"))
        assert not prefix.contains(str_to_ip("11.0.0.0"))

    def test_contains_prefix_nesting(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.1.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_first_last(self):
        prefix = Prefix.parse("192.168.1.0/24")
        assert prefix.first == str_to_ip("192.168.1.0")
        assert prefix.last == str_to_ip("192.168.1.255")

    def test_hosts_iteration(self):
        prefix = Prefix.parse("192.168.1.0/30")
        assert list(prefix.hosts()) == [
            str_to_ip("192.168.1.0"),
            str_to_ip("192.168.1.1"),
            str_to_ip("192.168.1.2"),
            str_to_ip("192.168.1.3"),
        ]

    def test_zero_length_prefix_covers_everything(self):
        prefix = Prefix.parse("0.0.0.0/0")
        assert prefix.contains(0)
        assert prefix.contains(IPV4_SPACE - 1)
        assert prefix.size == IPV4_SPACE

    def test_slash32_is_single_host(self):
        prefix = Prefix.parse("1.2.3.4/32")
        assert prefix.size == 1
        assert prefix.contains(str_to_ip("1.2.3.4"))
        assert not prefix.contains(str_to_ip("1.2.3.5"))

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            Prefix(0, 33)
        with pytest.raises(ValueError):
            Prefix(0, -1)

    def test_ordering_and_hashing(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.0.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert a < b < c
        assert len({a, b, c, Prefix.parse("10.0.0.0/8")}) == 3

    @given(
        st.integers(min_value=0, max_value=IPV4_SPACE - 1),
        st.integers(min_value=0, max_value=32),
    )
    def test_of_always_contains_source(self, ip, length):
        assert Prefix.of(ip, length).contains(ip)

    @given(
        st.integers(min_value=0, max_value=IPV4_SPACE - 1),
        st.integers(min_value=1, max_value=32),
    )
    def test_size_matches_first_last_span(self, ip, length):
        prefix = Prefix.of(ip, length)
        assert prefix.last - prefix.first + 1 == prefix.size


class TestReservedSpace:
    def test_private_blocks(self):
        assert is_private(str_to_ip("192.168.1.1"))
        assert is_private(str_to_ip("10.20.30.40"))
        assert is_private(str_to_ip("172.16.0.1"))
        assert not is_private(str_to_ip("8.8.8.8"))

    def test_reserved_blocks(self):
        assert is_reserved(str_to_ip("127.0.0.1"))
        assert is_reserved(str_to_ip("224.0.0.1"))
        assert is_reserved(str_to_ip("100.64.0.1"))
        assert not is_reserved(str_to_ip("93.184.216.34"))

    def test_private_implies_reserved(self):
        for text in ("10.0.0.1", "172.31.255.255", "192.168.0.0"):
            ip = str_to_ip(text)
            assert is_private(ip) and is_reserved(ip)
