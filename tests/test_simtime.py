"""Tests for the simulated-time base and seeding helpers."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro import simtime
from repro.seeding import stable_rng, stable_seed


class TestSimtime:
    def test_epoch(self):
        assert simtime.day_to_date(0) == datetime.date(2000, 1, 1)
        assert simtime.date_to_day(datetime.date(2000, 1, 1)) == 0

    def test_paper_anchor_days(self):
        assert simtime.day_to_date(simtime.UMICH_FIRST_SCAN_DAY) == datetime.date(2012, 6, 10)
        assert simtime.day_to_date(simtime.RAPID7_FIRST_SCAN_DAY) == datetime.date(2013, 10, 30)

    @given(st.integers(min_value=simtime.MIN_DAY, max_value=simtime.MAX_DAY))
    def test_round_trip(self, day):
        assert simtime.date_to_day(simtime.day_to_date(day)) == day

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            simtime.day_to_date(simtime.MAX_DAY + 1)
        with pytest.raises(ValueError):
            simtime.day_to_date(simtime.MIN_DAY - 1)

    def test_datetime_conversion(self):
        dt = simtime.day_to_datetime(100)
        assert dt.hour == 0 and dt.minute == 0
        assert simtime.datetime_to_day(dt) == 100
        # Time of day truncates.
        assert simtime.datetime_to_day(dt.replace(hour=23)) == 100

    def test_format_day(self):
        assert simtime.format_day(0) == "2000-01-01"


class TestSeeding:
    def test_stable_across_calls(self):
        assert stable_seed(1, "x", 2) == stable_seed(1, "x", 2)

    def test_different_scopes_differ(self):
        assert stable_seed(1, "x") != stable_seed(1, "y")
        assert stable_seed(1, "x") != stable_seed(2, "x")

    def test_rng_streams_independent(self):
        a = stable_rng("a")
        b = stable_rng("b")
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]

    def test_rng_reproducible(self):
        assert stable_rng("s", 1).random() == stable_rng("s", 1).random()

    def test_known_hash_independence(self):
        # The seed must not depend on Python's per-process str hashing.
        # (A regression here would only show across interpreter runs, so we
        # pin the value.)
        assert stable_seed("probe") == stable_seed("probe")
        assert isinstance(stable_seed("probe"), int)
        assert stable_seed("probe") < 2 ** 64
