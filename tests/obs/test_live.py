"""The live plane: LiveServer endpoints, LatencyRecorder, repro top."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    LatencyRecorder,
    LiveServer,
    MetricsRegistry,
    Tracer,
    render_top,
)
from repro.obs.live import LATENCY_BUCKETS_MS


def _fetch(url: str) -> "tuple[bytes, str]":
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.read(), response.headers.get("Content-Type", "")


@pytest.fixture()
def plane():
    """A started server over a tracer/registry pair with data in both."""
    tracer = Tracer(process="live-test")
    registry = MetricsRegistry()
    registry.inc("ingest.files_ingested", 3)
    registry.gauge("process.rss_bytes", 4096.0)
    tracer.add_sink(LatencyRecorder(registry))
    with tracer.span("ingest/poll"):
        pass
    health = {"last_append_day": 413}
    server = LiveServer(tracer, registry, health=health).start()
    try:
        yield server, tracer, registry, health
    finally:
        server.stop()


class TestLiveServer:
    def test_ephemeral_port_bound_and_url(self, plane):
        server, _, _, _ = plane
        assert server.port != 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_metrics_endpoint_serves_prometheus_text(self, plane):
        server, _, _, _ = plane
        body, ctype = _fetch(server.url + "/metrics")
        text = body.decode()
        assert ctype.startswith("text/plain")
        assert "repro_ingest_files_ingested_total 3" in text
        assert "repro_process_rss_bytes 4096" in text
        assert "# TYPE repro_latency_ingest histogram" in text

    def test_healthz_reports_liveness_and_health_dict(self, plane):
        server, _, _, health = plane
        body, ctype = _fetch(server.url + "/healthz")
        payload = json.loads(body)
        assert ctype.startswith("application/json")
        assert payload["status"] == "ok"
        assert payload["process"] == "live-test"
        assert payload["spans_completed"] == 1
        assert payload["last_span"]["name"] == "ingest/poll"
        assert payload["last_append_day"] == 413
        # The health dict is shared live: a mutation shows on next scrape.
        health["last_append_day"] = 414
        assert json.loads(_fetch(server.url + "/healthz")[0])[
            "last_append_day"] == 414

    def test_vars_snapshot_with_quantiles_and_span_tail(self, plane):
        server, tracer, _, _ = plane
        for index in range(30):
            with tracer.span(f"ingest/poll{index}"):
                pass
        payload = json.loads(_fetch(server.url + "/vars")[0])
        assert payload["counters"]["ingest.files_ingested"] == 3
        assert payload["gauges"]["process.rss_bytes"] == 4096.0
        latency = payload["histograms"]["latency.ingest"]
        assert latency["count"] == 31
        assert latency["p50"] is not None
        assert latency["p99"] is not None
        assert latency["p50"] <= latency["p99"]
        # The span tail is bounded (default 20) and holds the newest spans.
        assert len(payload["spans"]) == 20
        assert payload["spans"][-1]["name"] == "ingest/poll29"

    def test_unknown_path_is_404(self, plane):
        server, _, _, _ = plane
        with pytest.raises(urllib.error.HTTPError) as caught:
            _fetch(server.url + "/nope")
        assert caught.value.code == 404

    def test_request_counter_and_query_strings(self, plane):
        server, _, _, _ = plane
        before = server.requests
        _fetch(server.url + "/healthz?probe=1")
        assert server.requests == before + 1

    def test_double_start_rejected_and_stop_idempotent(self, plane):
        server, _, _, _ = plane
        with pytest.raises(RuntimeError, match="already started"):
            server.start()
        server.stop()
        server.stop()


class TestLatencyRecorder:
    def test_root_spans_bucket_under_their_first_component(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        tracer.add_sink(LatencyRecorder(registry))
        with tracer.span("ingest/append_day"):
            with tracer.span("ingest/append_day/copy"):
                pass
        # Only the root recorded; the child would double-count its parent.
        assert set(registry.histograms) == {"latency.ingest"}
        bounds, _, _, n = registry.histograms["latency.ingest"]
        assert n == 1
        assert bounds == LATENCY_BUCKETS_MS

    def test_distinct_roots_get_distinct_stages(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        tracer.add_sink(LatencyRecorder(registry))
        with tracer.span("scan"):
            pass
        with tracer.span("dedup"):
            pass
        assert set(registry.histograms) == {"latency.scan", "latency.dedup"}


class TestRenderTop:
    SNAPSHOT = {
        "health": {
            "process": "ingest-watch", "pid": 99, "uptime_seconds": 12.0,
            "spans_completed": 5, "last_append_day": 413,
            "files_ingested": 2,
        },
        "gauges": {
            "process.rss_bytes": 2048.0, "process.uss_bytes": 1024.0,
            "process.cpu_seconds": 1.5, "process.open_fds": 12,
        },
        "counters": {"ingest.files_ingested": 2, "ingest.watch_polls": 40},
        "histograms": {
            "latency.ingest": {"count": 3, "p50": 1.5, "p99": 4.0},
            "not_latency": {"count": 1, "p50": 1.0, "p99": 1.0},
        },
    }

    def test_first_frame_totals(self):
        frame = render_top(self.SNAPSHOT)
        assert "repro top — ingest-watch (pid 99)" in frame
        assert "uptime 12s" in frame
        assert "rss 2.0KiB" in frame
        assert "uss 1.0KiB" in frame
        assert "cpu 1.5s" in frame
        assert "fds 12" in frame
        assert "last append day 413" in frame
        assert "ingest.files_ingested" in frame
        assert "/s" not in frame  # no rates without a previous frame
        assert "p50=1.50 p99=4.00" in frame
        # Only latency.* histograms render in the latency section.
        assert "not_latency" not in frame

    def test_second_frame_shows_rates(self):
        previous = {
            "counters": {"ingest.files_ingested": 0, "ingest.watch_polls": 20}
        }
        frame = render_top(self.SNAPSHOT, previous=previous, interval=2.0)
        assert "1.0/s" in frame   # (2 - 0) / 2s
        assert "10.0/s" in frame  # (40 - 20) / 2s

    def test_sparse_snapshot_renders(self):
        frame = render_top({"health": {}, "gauges": {}, "counters": {}})
        assert frame.startswith("repro top — ?")
