"""Resource telemetry: /proc readers, gauge publication, the sampler."""

import pytest

from repro.obs import MetricsRegistry, ResourceSampler
from repro.obs import resources


FAKE_ROLLUP = """\
560d2c80c000-7ffc99ed3000 ---p 00000000 00:00 0    [rollup]
Rss:                 300 kB
Pss:                 200 kB
Shared_Clean:         50 kB
Private_Clean:        20 kB
Private_Dirty:        80 kB
Swap:                  4 kB
"""


@pytest.fixture()
def fake_proc(tmp_path, monkeypatch):
    """Deterministic /proc stand-in so parsing asserts exact bytes."""
    rollup = tmp_path / "smaps_rollup"
    rollup.write_text(FAKE_ROLLUP)
    monkeypatch.setattr(resources, "_SMAPS_PATH", str(rollup))
    return rollup


class TestProcReaders:
    def test_smaps_rollup_parses_kib_fields_to_bytes(self, fake_proc):
        fields = resources.smaps_rollup()
        assert fields == {
            "Rss": 300 * 1024, "Pss": 200 * 1024,
            "Private_Clean": 20 * 1024, "Private_Dirty": 80 * 1024,
            "Swap": 4 * 1024,
        }

    def test_rss_and_uss_derive_from_rollup(self, fake_proc):
        assert resources.rss_bytes() == 300 * 1024
        # USS = Private_Clean + Private_Dirty: nobody-shares-these pages.
        assert resources.uss_bytes() == (20 + 80) * 1024

    def test_missing_proc_degrades_to_none(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            resources, "_SMAPS_PATH", str(tmp_path / "absent")
        )
        monkeypatch.setattr(resources, "_FD_PATH", str(tmp_path / "no-fds"))
        assert resources.smaps_rollup() is None
        assert resources.rss_bytes() is None
        assert resources.uss_bytes() is None
        assert resources.open_fds() is None

    def test_open_fds_counts_directory_entries(self, tmp_path, monkeypatch):
        fd_dir = tmp_path / "fd"
        fd_dir.mkdir()
        for name in "012":
            (fd_dir / name).write_text("")
        monkeypatch.setattr(resources, "_FD_PATH", str(fd_dir))
        assert resources.open_fds() == 3

    def test_cpu_seconds_is_monotone_nonnegative(self):
        first = resources.cpu_seconds()
        sum(range(200_000))
        assert resources.cpu_seconds() >= first >= 0.0


class _Reader:
    def __init__(self, bytes_materialized):
        self.bytes_materialized = bytes_materialized


class TestSampleInto:
    def test_publishes_process_gauges(self, fake_proc):
        registry = MetricsRegistry()
        sampled = resources.sample_into(registry)
        assert registry.gauges["process.rss_bytes"] == 300 * 1024
        assert registry.gauges["process.uss_bytes"] == 100 * 1024
        assert registry.gauges["process.cpu_seconds"] >= 0.0
        assert "process.open_fds" in registry.gauges
        assert sampled == {
            name: registry.gauges[name] for name in sampled
        }

    def test_materialized_delta_against_previous(self, fake_proc):
        registry = MetricsRegistry()
        registry.inc("io.bytes_materialized", 700)
        resources.sample_into(registry, previous_materialized=200)
        assert registry.gauges["io.bytes_materialized_delta"] == 500.0

    def test_watched_readers_get_per_container_gauges(self, fake_proc):
        registry = MetricsRegistry()
        resources.sample_into(
            registry, watched={"corpus": _Reader(4096), "cache": _Reader(0)}
        )
        assert registry.gauges["io.materialized_bytes.corpus"] == 4096.0
        assert registry.gauges["io.materialized_bytes.cache"] == 0.0


class TestResourceSampler:
    def test_interval_validation(self):
        with pytest.raises(ValueError, match="interval"):
            ResourceSampler(MetricsRegistry(), interval=0.0)

    def test_start_samples_synchronously(self, fake_proc):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry, interval=60.0)
        sampler.start()
        try:
            # Gauges exist before the first timer tick fires.
            assert registry.gauges["process.rss_bytes"] == 300 * 1024
            assert sampler.samples == 1
            with pytest.raises(RuntimeError, match="already started"):
                sampler.start()
        finally:
            sampler.stop()
        sampler.stop()  # idempotent

    def test_sample_tracks_materialization_deltas(self, fake_proc):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry, interval=60.0)
        sampler.sample()  # primes the previous counter reading
        registry.inc("io.bytes_materialized", 123)
        sampler.sample()
        assert registry.gauges["io.bytes_materialized_delta"] == 123.0
        assert sampler.samples == 2

    def test_watch_publishes_reader_gauges(self, fake_proc):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry, interval=60.0)
        sampler.watch("corpus", _Reader(2048))
        sampler.sample()
        assert registry.gauges["io.materialized_bytes.corpus"] == 2048.0

    def test_background_thread_keeps_sampling(self, fake_proc):
        import time

        registry = MetricsRegistry()
        sampler = ResourceSampler(registry, interval=0.01)
        sampler.start()
        try:
            deadline = time.monotonic() + 2.0
            while sampler.samples < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            sampler.stop()
        assert sampler.samples >= 3
