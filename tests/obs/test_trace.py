"""Span/Tracer unit tests and the span-tree integrity property."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import NULL_SPAN, Tracer


class TestSpan:
    def test_ids_assigned_in_entry_order(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                pass
        assert (a.span_id, b.span_id) == (1, 2)

    def test_parent_links_follow_nesting(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
            with tracer.span("sibling") as sibling:
                pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert sibling.parent_id == root.span_id

    def test_completion_order_children_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [span.name for span in tracer.spans] == ["inner", "outer"]

    def test_timings_non_negative_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                sum(range(1000))
        assert inner.wall >= 0.0
        assert outer.wall >= inner.wall
        assert outer.cpu >= 0.0

    def test_attributes_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", day=3) as span:
            span.set(observations=7)
        assert span.attributes == {"day": 3, "observations": 7}
        assert span.to_dict()["attrs"] == {"day": 3, "observations": 7}

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            assert span.set(anything=1) is NULL_SPAN


class TestTracer:
    def test_current_tracks_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
        assert tracer.current is None

    def test_mark_and_export_delta(self):
        tracer = Tracer()
        with tracer.span("before"):
            pass
        mark = tracer.mark()
        with tracer.span("after"):
            pass
        exported = tracer.export_spans(since=mark)
        assert [record["name"] for record in exported] == ["after"]

    def test_adopt_renumbers_and_reparents(self):
        worker = Tracer(process="worker-1")
        with worker.span("task"):
            with worker.span("task/step"):
                pass
        shipped = worker.export_spans()

        parent = Tracer()
        with parent.span("stage") as stage:
            parent.adopt(shipped)
        by_name = {span.name: span for span in parent.spans}
        # The worker's root hangs under the span open at adoption time.
        assert by_name["task"].parent_id == stage.span_id
        # Internal links are preserved through the id remap.
        assert by_name["task/step"].parent_id == by_name["task"].span_id
        ids = [span.span_id for span in parent.spans]
        assert len(ids) == len(set(ids))
        assert by_name["task"].process == "worker-1"

    def test_adopt_with_explicit_parent(self):
        worker = Tracer(process="w")
        with worker.span("leaf"):
            pass
        parent = Tracer()
        with parent.span("anchor") as anchor:
            pass
        parent.adopt(worker.export_spans(), parent_id=anchor.span_id)
        assert parent.spans[-1].parent_id == anchor.span_id


class TestStreaming:
    """The live plane's hooks: completion sinks and the retain bound."""

    def test_sinks_see_spans_in_completion_order(self):
        tracer = Tracer()
        seen = []
        tracer.add_sink(lambda span: seen.append(span.name))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert seen == ["inner", "outer"]

    def test_sinks_run_in_add_order(self):
        tracer = Tracer()
        calls = []
        tracer.add_sink(lambda span: calls.append("first"))
        tracer.add_sink(lambda span: calls.append("second"))
        with tracer.span("s"):
            pass
        assert calls == ["first", "second"]

    def test_remove_sink_detaches_and_restores_off_path(self):
        tracer = Tracer()
        seen = []
        sink = seen.append
        tracer.add_sink(sink)
        with tracer.span("while-attached"):
            pass
        tracer.remove_sink(sink)
        with tracer.span("after-detach"):
            pass
        assert [span.name for span in seen] == ["while-attached"]
        # With no sinks and no retain, completion is back to one None check.
        assert tracer._live is None
        tracer.remove_sink(sink)  # missing sinks are ignored

    def test_retain_bounds_memory_but_not_totals(self):
        tracer = Tracer()
        tracer.retain = 2
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [span.name for span in tracer.spans] == ["s3", "s4"]
        assert tracer.completed_total == 5
        assert tracer.mark() == 5

    def test_retain_preserves_mark_export_delta_semantics(self):
        tracer = Tracer()
        tracer.retain = 3
        with tracer.span("old"):
            pass
        mark = tracer.mark()
        for index in range(3):
            with tracer.span(f"new{index}"):
                pass
        # "old" was trimmed, but the watermark still slices correctly.
        exported = tracer.export_spans(since=mark)
        assert [record["name"] for record in exported] == [
            "new0", "new1", "new2",
        ]

    def test_retain_trims_immediately_when_set(self):
        tracer = Tracer()
        for index in range(4):
            with tracer.span(f"s{index}"):
                pass
        tracer.retain = 1
        assert [span.name for span in tracer.spans] == ["s3"]
        tracer.retain = None
        assert tracer._live is None

    def test_retain_validation(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="positive"):
            tracer.retain = 0

    def test_adopt_streams_to_sinks(self):
        worker = Tracer(process="w")
        with worker.span("task"):
            pass
        parent = Tracer()
        seen = []
        parent.add_sink(lambda span: seen.append(span.name))
        parent.adopt(worker.export_spans())
        assert seen == ["task"]


# Trees as nested lists: each element is a node, its value the children.
_TREES = st.recursive(
    st.just([]), lambda kids: st.lists(kids, max_size=3), max_leaves=12
)


@given(forest=st.lists(_TREES, max_size=3))
def test_span_tree_integrity(forest):
    """Replaying any nesting yields a tree with exact parent/child links."""
    tracer = Tracer()
    expected_parent = {}

    def replay(children, parent_id):
        for index, grandchildren in enumerate(children):
            with tracer.span(f"node{index}") as span:
                expected_parent[span.span_id] = parent_id
                replay(grandchildren, span.span_id)

    replay(forest, None)
    assert tracer.current is None
    by_id = {span.span_id: span for span in tracer.spans}
    assert len(by_id) == len(tracer.spans), "span ids must be unique"
    assert len(tracer.spans) == len(expected_parent)
    for span in tracer.spans:
        assert span.parent_id == expected_parent[span.span_id]
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            assert parent.start <= span.start
            assert parent.wall >= span.wall >= 0.0
