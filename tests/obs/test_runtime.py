"""The process-wide sink: no-op fast path, activation, worker protocol."""

import os
import subprocess
import sys

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.obs import runtime
from repro.obs.trace import _NullSpan


@pytest.fixture(autouse=True)
def _pristine_runtime():
    """Park any ambient sink (e.g. the REPRO_OBS=1 auto-activated pair)
    so every test here starts from — and restores — a clean runtime."""
    saved = runtime.tracer(), runtime.registry()
    runtime.deactivate()
    yield
    runtime.deactivate()
    if saved[0] is not None:
        runtime.activate(*saved)


class TestFastPath:
    def test_off_by_default(self):
        assert not runtime.enabled()
        assert runtime.tracer() is None
        assert runtime.registry() is None

    def test_span_is_null_when_off(self):
        assert isinstance(runtime.span("anything"), _NullSpan)

    def test_recording_helpers_are_noops_when_off(self):
        runtime.inc("c")
        runtime.observe("h", 1.0)
        runtime.gauge("g", 1.0)  # must not raise


class TestActivation:
    def test_activated_scopes_and_restores(self):
        trace, metrics = Tracer(), MetricsRegistry()
        with runtime.activated(trace, metrics):
            assert runtime.enabled()
            assert runtime.tracer() is trace
            runtime.inc("c", 2)
            with runtime.span("s"):
                pass
        assert not runtime.enabled()
        assert metrics.counters["c"] == 2
        assert [span.name for span in trace.spans] == ["s"]

    def test_activated_nests_and_restores_previous(self):
        outer = (Tracer(), MetricsRegistry())
        inner = (Tracer(), MetricsRegistry())
        with runtime.activated(*outer):
            with runtime.activated(*inner):
                runtime.inc("c")
            assert runtime.registry() is outer[1]
        assert inner[1].counters == {"c": 1}

    def test_env_knob_activates_at_import(self):
        env = dict(os.environ, REPRO_OBS="1")
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        code = (
            "from repro.obs import runtime; "
            "raise SystemExit(0 if runtime.enabled() else 1)"
        )
        assert subprocess.run(
            [sys.executable, "-c", code], env=env
        ).returncode == 0


class TestWorkerProtocol:
    def teardown_method(self):
        runtime.deactivate()

    def test_disabled_worker_ships_nothing(self):
        runtime.install_worker(parent_enabled=False)
        assert runtime.task_mark() is None
        assert runtime.task_delta(None) is None

    def test_round_trip_equals_direct_recording(self):
        # Simulate: parent activates, "worker" records, delta absorbed.
        runtime.install_worker(parent_enabled=True)
        worker_trace = runtime.tracer()
        mark = runtime.task_mark()
        with runtime.span("task", item=1):
            runtime.inc("work.done", 3)
            runtime.observe("work.size", 2)
        delta = runtime.task_delta(mark)
        assert worker_trace.process.startswith("worker-")

        parent_trace, parent_metrics = Tracer(), MetricsRegistry()
        with runtime.activated(parent_trace, parent_metrics):
            with runtime.span("fanout"):
                runtime.absorb(delta)
        assert parent_metrics.counters["work.done"] == 3
        assert parent_metrics.histograms["work.size"][3] == 1
        adopted = {span.name: span for span in parent_trace.spans}
        assert adopted["task"].parent_id == adopted["fanout"].span_id

    def test_install_worker_resets_inherited_sink(self):
        inherited = (Tracer(), MetricsRegistry())
        runtime.activate(*inherited)
        runtime.install_worker(parent_enabled=True)
        assert runtime.tracer() is not inherited[0]
        assert runtime.registry() is not inherited[1]
