"""Exporter formats: JSONL trace, Prometheus text, ASCII span tree."""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    counter_table,
    prometheus_text,
    render_span_tree,
    write_trace,
)
from repro.obs.export import TRACE_SCHEMA


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("run"):
        for day in range(5):
            with tracer.span(f"scan/day={day}"):
                pass
        with tracer.span("dedup"):
            pass
    return tracer


class TestWriteTrace:
    def test_jsonl_schema(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "trace.jsonl"
        count = write_trace(tracer, path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        meta, spans = lines[0], lines[1:]
        assert meta == {
            "type": "meta", "schema": TRACE_SCHEMA,
            "process": "main", "n_spans": count,
        }
        assert len(spans) == count == 7
        for record in spans:
            assert record["type"] == "span"
            assert set(record) >= {
                "id", "parent", "name", "start", "wall", "cpu", "process",
            }


class TestPrometheusText:
    def test_counters_gauges_histograms(self):
        metrics = MetricsRegistry()
        metrics.inc("dedup.certs_collapsed", 12)
        metrics.gauge("kernels.as_memo_entries", 7)
        metrics.observe_many("pipeline.group_size", [2, 2, 30])
        text = prometheus_text(metrics)
        assert "# TYPE repro_dedup_certs_collapsed_total counter" in text
        assert "repro_dedup_certs_collapsed_total 12" in text
        assert "repro_kernels_as_memo_entries 7" in text
        # Buckets are cumulative and +Inf equals the sample count.
        assert 'repro_pipeline_group_size_bucket{le="2"} 2' in text
        assert 'repro_pipeline_group_size_bucket{le="50"} 3' in text
        assert 'repro_pipeline_group_size_bucket{le="+Inf"} 3' in text
        assert "repro_pipeline_group_size_sum 34" in text
        assert "repro_pipeline_group_size_count 3" in text

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestCounterTable:
    def test_sorted_and_aligned(self):
        metrics = MetricsRegistry()
        metrics.inc("b.second", 2)
        metrics.inc("a.first", 1)
        lines = counter_table(metrics).splitlines()
        assert lines[0].startswith("a.first")
        assert lines[1].startswith("b.second")

    def test_empty(self):
        assert "no counters" in counter_table(MetricsRegistry())


class TestSpanTree:
    def test_collapses_high_cardinality_siblings(self):
        rendered = render_span_tree(_sample_tracer())
        assert "run" in rendered
        assert "scan/day=*  x5" in rendered
        assert "scan/day=3" not in rendered
        assert "dedup" in rendered

    def test_small_sibling_groups_stay_individual(self):
        tracer = Tracer()
        with tracer.span("run"):
            for day in range(3):
                with tracer.span(f"scan/day={day}"):
                    pass
        rendered = render_span_tree(tracer)
        assert "scan/day=1" in rendered
        assert "x3" not in rendered

    def test_max_depth_prunes(self):
        rendered = render_span_tree(_sample_tracer(), max_depth=1)
        assert "run" in rendered
        assert "dedup" not in rendered

    def test_empty_tracer(self):
        assert "no spans" in render_span_tree(Tracer())
