"""Exporter formats: JSONL trace, Prometheus text, ASCII span tree."""

import json
import re

import pytest

from repro.obs import (
    MetricsRegistry,
    RotatingJsonlSink,
    Tracer,
    counter_table,
    prometheus_text,
    render_span_tree,
    write_trace,
)
from repro.obs.export import SAMPLE_ENV, TRACE_SCHEMA


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("run"):
        for day in range(5):
            with tracer.span(f"scan/day={day}"):
                pass
        with tracer.span("dedup"):
            pass
    return tracer


class TestWriteTrace:
    def test_jsonl_schema(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "trace.jsonl"
        count = write_trace(tracer, path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        meta, spans = lines[0], lines[1:]
        assert meta == {
            "type": "meta", "schema": TRACE_SCHEMA,
            "process": "main", "n_spans": count,
        }
        assert len(spans) == count == 7
        for record in spans:
            assert record["type"] == "span"
            assert set(record) >= {
                "id", "parent", "name", "start", "wall", "cpu", "process",
            }


class TestPrometheusText:
    def test_counters_gauges_histograms(self):
        metrics = MetricsRegistry()
        metrics.inc("dedup.certs_collapsed", 12)
        metrics.gauge("kernels.as_memo_entries", 7)
        metrics.observe_many("pipeline.group_size", [2, 2, 30])
        text = prometheus_text(metrics)
        assert "# TYPE repro_dedup_certs_collapsed_total counter" in text
        assert "repro_dedup_certs_collapsed_total 12" in text
        assert "repro_kernels_as_memo_entries 7" in text
        # Buckets are cumulative and +Inf equals the sample count.
        assert 'repro_pipeline_group_size_bucket{le="2"} 2' in text
        assert 'repro_pipeline_group_size_bucket{le="50"} 3' in text
        assert 'repro_pipeline_group_size_bucket{le="+Inf"} 3' in text
        assert "repro_pipeline_group_size_sum 34" in text
        assert "repro_pipeline_group_size_count 3" in text

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestPrometheusEdgeCases:
    """Sanitization collisions, label escaping, bucket-line ordering."""

    def test_colliding_names_share_one_type_line(self):
        # "a.b" and "a_b" both sanitize to repro_a_b_total; exposition
        # format allows one TYPE line per metric, so the family carries
        # the registry name in a label instead.
        metrics = MetricsRegistry()
        metrics.inc("ingest.files", 3)
        metrics.inc("ingest_files", 5)
        text = prometheus_text(metrics)
        assert text.count("# TYPE repro_ingest_files_total counter") == 1
        assert 'repro_ingest_files_total{name="ingest.files"} 3' in text
        assert 'repro_ingest_files_total{name="ingest_files"} 5' in text
        # No bare (unlabeled) sample may coexist with the labeled ones.
        assert not re.search(r"^repro_ingest_files_total \d", text, re.M)

    def test_colliding_gauges_get_name_labels(self):
        metrics = MetricsRegistry()
        metrics.gauge("io.bytes", 1.5)
        metrics.gauge("io_bytes", 2.5)
        text = prometheus_text(metrics)
        assert text.count("# TYPE repro_io_bytes gauge") == 1
        assert 'repro_io_bytes{name="io.bytes"} 1.5' in text
        assert 'repro_io_bytes{name="io_bytes"} 2.5' in text

    def test_non_colliding_names_stay_unlabeled(self):
        metrics = MetricsRegistry()
        metrics.inc("dedup.collapsed", 1)
        metrics.inc("dedup.considered", 2)
        text = prometheus_text(metrics)
        assert "repro_dedup_collapsed_total 1" in text
        assert "{" not in text

    def test_label_values_escape_backslash_quote_newline(self):
        # Three registry names that all sanitize to the same family and
        # contain every character the exposition format escapes.
        metrics = MetricsRegistry()
        metrics.inc('x"y', 1)
        metrics.inc("x\\y", 2)
        metrics.inc("x\ny", 3)
        text = prometheus_text(metrics)
        assert text.count("# TYPE repro_x_y_total counter") == 1
        assert 'repro_x_y_total{name="x\\"y"} 1' in text
        assert 'repro_x_y_total{name="x\\\\y"} 2' in text
        assert 'repro_x_y_total{name="x\\ny"} 3' in text
        # The escaped output itself must stay one physical line per sample.
        assert all("# TYPE" in line or line.startswith("repro_")
                   for line in text.splitlines())

    def test_histogram_buckets_ordered_and_cumulative(self):
        metrics = MetricsRegistry()
        metrics.observe_many("lat", [0.5, 3, 3, 40, 10**9])
        text = prometheus_text(metrics)
        lines = text.splitlines()
        bucket_lines = [line for line in lines
                        if line.startswith("repro_lat_bucket")]
        bounds = [re.search(r'le="([^"]+)"', line).group(1)
                  for line in bucket_lines]
        # +Inf renders last, finite bounds in strictly increasing order.
        assert bounds[-1] == "+Inf"
        finite = [float(bound) for bound in bounds[:-1]]
        assert finite == sorted(finite)
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts), "cumulative counts must be monotone"
        assert counts[-1] == 5  # +Inf covers every sample, overflow included
        # _sum and _count close the family, after every bucket line.
        order = [lines.index(line) for line in bucket_lines]
        sum_index = next(i for i, line in enumerate(lines)
                         if line.startswith("repro_lat_sum "))
        count_index = lines.index("repro_lat_count 5")
        assert max(order) < sum_index < count_index


class TestRotatingJsonlSink:
    def _stream(self, sink, names):
        tracer = Tracer(process="stream-test")
        tracer.add_sink(sink)
        for name in names:
            with tracer.span(name):
                pass
        return tracer

    def test_streams_spans_with_meta_header(self, tmp_path):
        path = tmp_path / "live.jsonl"
        sink = RotatingJsonlSink(path, process="stream-test")
        self._stream(sink, ["a", "b"])
        sink.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {
            "type": "meta", "schema": TRACE_SCHEMA, "process": "stream-test",
            "streaming": True, "sequence": 0, "sample_stride": 1,
        }
        assert [record["name"] for record in lines[1:]] == ["a", "b"]
        assert all(record["type"] == "span" for record in lines[1:])
        assert (sink.seen, sink.written) == (2, 2)

    def test_each_span_is_flushed_immediately(self, tmp_path):
        path = tmp_path / "live.jsonl"
        sink = RotatingJsonlSink(path)
        self._stream(sink, ["early"])
        # Readable before close: a crash loses at most the span in flight.
        assert "early" in path.read_text()
        sink.close()

    def test_rotation_is_size_capped_and_bounded(self, tmp_path):
        path = tmp_path / "live.jsonl"
        # max_bytes=1: every span write trips a rotation.
        sink = RotatingJsonlSink(path, max_bytes=1, max_files=3)
        self._stream(sink, [f"s{i}" for i in range(5)])
        sink.close()
        assert sink.rotations == 5
        rotated_1 = tmp_path / "live.jsonl.1"
        rotated_2 = tmp_path / "live.jsonl.2"
        assert rotated_1.exists() and rotated_2.exists()
        assert not (tmp_path / "live.jsonl.3").exists(), "max_files bounds"
        # The newest rotated file holds the last span and its sequence.
        lines = [json.loads(line)
                 for line in rotated_1.read_text().splitlines()]
        assert lines[0]["sequence"] == 4
        assert lines[1]["name"] == "s4"
        assert json.loads(rotated_2.read_text().splitlines()[1])["name"] == "s3"

    def test_sampling_stride_is_deterministic(self, tmp_path):
        path = tmp_path / "live.jsonl"
        sink = RotatingJsonlSink(path, sample=0.5)
        assert sink.stride == 2
        self._stream(sink, [f"s{i}" for i in range(6)])
        sink.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["sample_stride"] == 2
        # Keeps the 1st, 3rd, 5th completion — deterministically.
        assert [record["name"] for record in lines[1:]] == ["s0", "s2", "s4"]
        assert (sink.seen, sink.written) == (6, 3)

    def test_sample_rate_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV, "0.25")
        sink = RotatingJsonlSink(tmp_path / "live.jsonl")
        assert sink.stride == 4

    def test_invalid_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="sample rate"):
            RotatingJsonlSink(tmp_path / "x.jsonl", sample=0.0)
        with pytest.raises(ValueError, match="sample rate"):
            RotatingJsonlSink(tmp_path / "x.jsonl", sample=1.5)
        with pytest.raises(ValueError, match="max_files"):
            RotatingJsonlSink(tmp_path / "x.jsonl", max_files=0)

    def test_close_is_idempotent(self, tmp_path):
        sink = RotatingJsonlSink(tmp_path / "live.jsonl")
        self._stream(sink, ["a"])
        sink.close()
        sink.close()


class TestCounterTable:
    def test_sorted_and_aligned(self):
        metrics = MetricsRegistry()
        metrics.inc("b.second", 2)
        metrics.inc("a.first", 1)
        lines = counter_table(metrics).splitlines()
        assert lines[0].startswith("a.first")
        assert lines[1].startswith("b.second")

    def test_empty(self):
        assert "no counters" in counter_table(MetricsRegistry())


class TestSpanTree:
    def test_collapses_high_cardinality_siblings(self):
        rendered = render_span_tree(_sample_tracer())
        assert "run" in rendered
        assert "scan/day=*  x5" in rendered
        assert "scan/day=3" not in rendered
        assert "dedup" in rendered

    def test_small_sibling_groups_stay_individual(self):
        tracer = Tracer()
        with tracer.span("run"):
            for day in range(3):
                with tracer.span(f"scan/day={day}"):
                    pass
        rendered = render_span_tree(tracer)
        assert "scan/day=1" in rendered
        assert "x3" not in rendered

    def test_max_depth_prunes(self):
        rendered = render_span_tree(_sample_tracer(), max_depth=1)
        assert "run" in rendered
        assert "dedup" not in rendered

    def test_empty_tracer(self):
        assert "no spans" in render_span_tree(Tracer())

    @staticmethod
    def _fanned_out_trace(child_wall):
        """A stage whose 4 collapsed children carry fabricated wall time."""
        records = [{
            "id": 1, "parent": None, "name": "link", "start": 0.0,
            "wall": 1.0, "cpu": 0.9, "process": "main", "attrs": {},
        }]
        records.extend({
            "id": index, "parent": 1, "name": f"link/feature={index}",
            "start": 0.01, "wall": child_wall, "cpu": child_wall,
            "process": f"worker-{index}", "attrs": {},
        } for index in range(2, 6))
        tracer = Tracer()
        tracer.adopt(records)
        return tracer

    def test_parallel_aggregates_marked_and_shared_against_parent(self):
        # 4 workers × 0.5s inside a 1.0s stage: the collapsed row sums to
        # 2.0s — more wall than its parent elapsed.  It must be marked
        # (parallel) and its share computed against the parent's wall
        # (200% = 2× parallelism), not the run total.
        rendered = self._fanned_out_trace(child_wall=0.5)
        lines = render_span_tree(rendered).splitlines()
        aggregate = next(line for line in lines if "link/feature=*" in line)
        assert "x4" in aggregate
        assert "(parallel)" in aggregate
        assert "200.0%" in aggregate

    def test_serial_aggregates_stay_unmarked(self):
        # 4 × 0.2s inside a 1.0s stage sums below the parent's elapsed
        # wall: a plain sequential aggregate, shared against the run.
        rendered = self._fanned_out_trace(child_wall=0.2)
        lines = render_span_tree(rendered).splitlines()
        aggregate = next(line for line in lines if "link/feature=*" in line)
        assert "x4" in aggregate
        assert "(parallel)" not in aggregate
        assert "80.0%" in aggregate
