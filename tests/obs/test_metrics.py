"""MetricsRegistry semantics: recording, snapshots, deltas, merges."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import MetricsRegistry
from repro.obs.metrics import DEFAULT_BUCKETS, estimate_quantile


class TestRecording:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("a.b")
        registry.inc("a.b", 4)
        assert registry.counters["a.b"] == 5

    def test_gauges_keep_last(self):
        registry = MetricsRegistry()
        registry.gauge("g", 3.0)
        registry.gauge("g", 1.0)
        assert registry.gauges["g"] == 1.0

    def test_histogram_bucket_boundaries_are_le(self):
        registry = MetricsRegistry()
        registry.observe("h", 1)      # le="1" bucket
        registry.observe("h", 1.5)    # le="2"
        registry.observe("h", 99999)  # +Inf overflow
        bounds, counts, total, n = registry.histograms["h"]
        assert bounds == DEFAULT_BUCKETS
        assert counts[0] == 1
        assert counts[1] == 1
        assert counts[-1] == 1
        assert (total, n) == (1 + 1.5 + 99999, 3)

    def test_observe_many(self):
        registry = MetricsRegistry()
        registry.observe_many("h", [2, 2, 3])
        assert registry.histograms["h"][3] == 3


class TestDeltaAndMerge:
    def test_delta_drops_untouched_counters(self):
        registry = MetricsRegistry()
        registry.inc("seen", 2)
        mark = registry.snapshot()
        registry.inc("fresh", 1)
        delta = registry.delta_since(mark)
        assert delta["counters"] == {"fresh": 1}

    def test_delta_subtracts_histograms(self):
        registry = MetricsRegistry()
        registry.observe("h", 5)
        mark = registry.snapshot()
        registry.observe("h", 7)
        delta = registry.delta_since(mark)
        _, counts, total, n = delta["histograms"]["h"]
        assert (sum(counts), total, n) == (1, 7.0, 1)

    def test_merge_counters_sum_gauges_max(self):
        left = MetricsRegistry()
        left.inc("c", 3)
        left.gauge("g", 10.0)
        right = MetricsRegistry()
        right.inc("c", 4)
        right.gauge("g", 2.0)
        left.merge(right.snapshot())
        assert left.counters["c"] == 7
        assert left.gauges["g"] == 10.0

    def test_merge_none_is_noop(self):
        registry = MetricsRegistry()
        registry.merge(None)
        registry.merge({})
        assert registry.counters == {}


class TestEstimateQuantile:
    """The p50/p99 estimator the live plane serves from bucket cells."""

    def test_empty_histogram_is_none(self):
        registry = MetricsRegistry()
        registry.observe("h", 1)
        empty = [DEFAULT_BUCKETS, [0] * (len(DEFAULT_BUCKETS) + 1), 0.0, 0]
        assert estimate_quantile(empty, 0.5) is None

    def test_quantile_out_of_range_raises(self):
        registry = MetricsRegistry()
        registry.observe("h", 1)
        cell = registry.histograms["h"]
        with pytest.raises(ValueError, match="quantile"):
            estimate_quantile(cell, 1.5)
        with pytest.raises(ValueError, match="quantile"):
            estimate_quantile(cell, -0.1)

    def test_interpolates_inside_the_bucket(self):
        # One sample in the (0, 1] bucket: the q-quantile interpolates
        # linearly across that bucket's width.
        registry = MetricsRegistry()
        registry.observe("h", 1)
        cell = registry.histograms["h"]
        assert estimate_quantile(cell, 0.5) == pytest.approx(0.5)
        assert estimate_quantile(cell, 1.0) == pytest.approx(1.0)

    def test_rank_walks_the_cumulative_counts(self):
        # 2 samples ≤ 1 and 2 samples in (2, 5]: the median sits at the
        # first bucket's upper edge, p99 deep inside the (2, 5] bucket.
        registry = MetricsRegistry()
        registry.observe_many("h", [1, 1, 3, 4])
        cell = registry.histograms["h"]
        assert estimate_quantile(cell, 0.5) == pytest.approx(1.0)
        p99 = estimate_quantile(cell, 0.99)
        assert 2.0 < p99 <= 5.0

    def test_overflow_clamps_to_last_finite_bound(self):
        registry = MetricsRegistry()
        registry.observe("h", 10**9)  # +Inf bucket
        cell = registry.histograms["h"]
        assert estimate_quantile(cell, 0.5) == DEFAULT_BUCKETS[-1]

    def test_bounds_respect_custom_buckets(self):
        registry = MetricsRegistry()
        registry.observe("h", 15.0, buckets=(10.0, 20.0))
        cell = registry.histograms["h"]
        estimate = estimate_quantile(cell, 0.5)
        assert 10.0 < estimate <= 20.0


_EVENTS = st.lists(
    st.one_of(
        st.tuples(st.just("inc"), st.sampled_from("abc"),
                  st.integers(min_value=1, max_value=50)),
        # Integer-valued samples: the pipeline's histograms record counts
        # and sizes, for which float summation is exact and merge order
        # cannot drift the sum (non-integer samples would be subject to
        # ordinary float non-associativity in the last bit).
        st.tuples(st.just("observe"), st.sampled_from("hk"),
                  st.integers(min_value=0, max_value=20000)),
    ),
    max_size=40,
)


@given(events=_EVENTS, cut=st.integers(min_value=0, max_value=40))
def test_merged_shards_equal_serial(events, cut):
    """Splitting a recording at any point and merging the shards back
    reproduces the serial registry exactly — the cross-process guarantee."""
    serial = MetricsRegistry()
    shards = [MetricsRegistry(), MetricsRegistry()]
    for index, (kind, name, value) in enumerate(events):
        shard = shards[0] if index < cut else shards[1]
        getattr(serial, kind)(name, value)
        getattr(shard, kind)(name, value)
    merged = MetricsRegistry()
    for shard in shards:
        merged.merge(shard.snapshot())
    snapshot = merged.snapshot()
    assert snapshot["counters"] == serial.snapshot()["counters"]
    assert snapshot["histograms"] == serial.snapshot()["histograms"]
