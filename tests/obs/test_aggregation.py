"""Cross-process aggregation: worker counters equal serial, results
unperturbed, and the derived stage view stays consistent.

These are the acceptance tests of the observability layer: the scan
campaign and the per-feature linking passes run once serially and once
over a worker pool, under full tracing, and every schedule-invariant
metric must come out bitwise-identical.  Counters whose value depends on
*how* the work was scheduled — the kernel-cache hit/miss pair, which
measures sharing across tasks — are execution-local by naming convention
(``kernels.cache_*``) and excluded; see docs/observability.md.
"""

import pytest

from repro.datasets.synthetic import generate
from repro.internet.population import WorldConfig
from repro.obs import MetricsRegistry, Tracer
from repro.obs import runtime as obs_runtime
from repro.study import Study

#: A world small enough to scan twice in-test but rich enough to link.
_CONFIG = dict(
    n_devices=90, n_websites=30, n_generic_access=12, n_enterprise=3,
    n_hosting=3, unused_roots=2,
)

EXECUTION_LOCAL_PREFIX = "kernels.cache_"


def _observed_run(workers: int):
    """Scan + full analysis under tracing; returns (study, trace, metrics)."""
    trace, metrics = Tracer(), MetricsRegistry()
    with obs_runtime.activated(trace, metrics):
        with trace.span("run", workers=workers):
            bundle = generate(
                WorldConfig(seed=11, **_CONFIG), scan_stride=10,
                workers=workers,
            )
            study = Study.from_synthetic(
                bundle, workers=workers, observe=True
            )
            study.validation()
            study.dedup()
            study.feature_evaluations()
            study.pipeline()
            study.tracked_devices()
    return study, trace, metrics


@pytest.fixture(scope="module")
def serial_run():
    return _observed_run(workers=1)


@pytest.fixture(scope="module")
def pooled_run():
    return _observed_run(workers=4)


def _schedule_invariant(counters: dict) -> dict:
    return {
        name: value for name, value in counters.items()
        if not name.startswith(EXECUTION_LOCAL_PREFIX)
    }


class TestWorkerAggregation:
    def test_counter_totals_equal_serial(self, serial_run, pooled_run):
        _, _, serial = serial_run
        _, _, pooled = pooled_run
        assert _schedule_invariant(pooled.counters) == \
            _schedule_invariant(serial.counters)

    def test_histograms_equal_serial(self, serial_run, pooled_run):
        _, _, serial = serial_run
        _, _, pooled = pooled_run
        assert pooled.snapshot()["histograms"] == \
            serial.snapshot()["histograms"]

    def test_every_subsystem_reported(self, pooled_run):
        _, _, metrics = pooled_run
        subsystems = {name.split(".", 1)[0] for name in metrics.counters}
        assert {
            "scanner", "validation", "dedup", "linking", "consistency",
            "pipeline", "tracking",
        } <= subsystems

    def test_results_identical_across_schedules(self, serial_run, pooled_run):
        serial_study = serial_run[0]
        pooled_study = pooled_run[0]
        assert serial_study.validation().invalid == \
            pooled_study.validation().invalid
        assert serial_study.pipeline().linked_certificates == \
            pooled_study.pipeline().linked_certificates
        assert serial_study.pipeline().field_order == \
            pooled_study.pipeline().field_order


class TestAdoptedTrace:
    def test_tree_integrity_with_worker_spans(self, pooled_run):
        _, trace, _ = pooled_run
        ids = [span.span_id for span in trace.spans]
        assert len(ids) == len(set(ids)), "adopted span ids must be unique"
        known = set(ids)
        for span in trace.spans:
            assert span.parent_id is None or span.parent_id in known

    def test_worker_spans_land_under_their_fanout_stage(self, pooled_run):
        _, trace, _ = pooled_run
        by_id = {span.span_id: span for span in trace.spans}
        day_spans = [s for s in trace.spans if s.name.startswith("scan/day=")]
        feature_spans = [
            s for s in trace.spans if s.name.startswith("link/feature=")
        ]
        assert day_spans and feature_spans
        assert all(s.process.startswith("worker-") for s in day_spans)
        assert {
            by_id[s.parent_id].name for s in feature_spans
        } == {"feature_evaluations"}

    def test_span_tree_covers_all_stages(self, pooled_run):
        _, trace, _ = pooled_run
        names = {span.name for span in trace.spans}
        assert {
            "validation", "kernels", "dedup", "feature_evaluations",
            "pipeline", "tracking",
        } <= names


class TestObservationNeutrality:
    def test_observed_matches_unobserved(self, serial_run, tiny_synthetic):
        """Tracing must never perturb results: an observed study over the
        session corpus equals the plain one bit for bit."""
        plain = Study.from_synthetic(tiny_synthetic)
        observed = Study.from_synthetic(tiny_synthetic, observe=True)
        assert observed.validation().invalid == plain.validation().invalid
        assert observed.dedup() == plain.dedup()
        assert observed.pipeline().linked_certificates == \
            plain.pipeline().linked_certificates
        assert [d.device_key for d in observed.tracked_devices()] == \
            [d.device_key for d in plain.tracked_devices()]


class TestStageTimings:
    def test_lazy_and_explicit_kernel_builds_agree(self, tiny_synthetic):
        # Explicit fresh sinks: under REPRO_OBS=1 a session-global tracer
        # is active and Study would otherwise adopt (and share) it.
        def fresh_study():
            world = tiny_synthetic.world
            return Study(
                dataset=tiny_synthetic.scans,
                trust_store=world.trust_store,
                as_of=world.routing.origin_as,
                registry=world.registry,
                trace=Tracer(),
                metrics=MetricsRegistry(),
            )

        explicit = fresh_study()
        explicit.kernels()
        explicit.dedup()
        lazy = fresh_study()
        lazy.dedup()  # pulls the kernel build in lazily
        expected = {
            "validation", "kernels", "kernels_index", "kernels_intervals",
            "kernels_matrix", "dedup",
        }
        assert expected <= set(explicit.stage_timings)
        assert set(lazy.stage_timings) == set(explicit.stage_timings)
        # The kernels span is recorded exactly once either way.
        assert sum(
            1 for span in lazy.trace.spans if span.name == "kernels"
        ) == 1

    def test_detail_spans_stay_out_of_the_flat_view(self, serial_run):
        study, _, _ = serial_run
        for key in study.stage_timings:
            assert "/" not in key and "=" not in key
