"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def saved_corpus(tmp_path_factory):
    """A tiny corpus + environment generated through the CLI itself."""
    directory = tmp_path_factory.mktemp("cli")
    corpus = directory / "corpus.rpz"
    environment = directory / "environment.rpe"
    code = main(
        [
            "generate", "--preset", "tiny", "--seed", "7",
            "--corpus", str(corpus), "--environment", str(environment),
        ]
    )
    assert code == 0
    return corpus, environment


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.preset == "tiny"
        assert args.seed == 2016
        assert not args.handshakes

    def test_analysis_commands_accept_preset(self):
        args = build_parser().parse_args(["census", "--preset", "tiny"])
        assert args.preset == "tiny"


class TestCommands:
    def test_generate_writes_both_artifacts(self, saved_corpus):
        corpus, environment = saved_corpus
        assert corpus.exists()
        assert environment.exists()

    def test_info(self, saved_corpus, capsys):
        corpus, _ = saved_corpus
        assert main(["info", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "n_scans" in out
        assert "n_certificates" in out

    def test_census_from_saved(self, saved_corpus, capsys):
        corpus, environment = saved_corpus
        code = main(
            ["census", "--corpus", str(corpus), "--environment", str(environment)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "invalid:" in out
        assert "top invalid issuers" in out

    def test_link_from_saved(self, saved_corpus, capsys):
        corpus, environment = saved_corpus
        code = main(
            ["link", "--corpus", str(corpus), "--environment", str(environment)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pipeline: linked" in out
        assert "Public Key" in out

    def test_track_from_saved(self, saved_corpus, capsys):
        corpus, environment = saved_corpus
        code = main(
            ["track", "--corpus", str(corpus), "--environment", str(environment)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trackable devices" in out

    def test_analysis_without_inputs_fails(self):
        with pytest.raises(SystemExit):
            main(["census"])
