"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def saved_corpus(tmp_path_factory):
    """A tiny corpus + environment generated through the CLI itself."""
    directory = tmp_path_factory.mktemp("cli")
    corpus = directory / "corpus.rpz"
    environment = directory / "environment.rpe"
    code = main(
        [
            "generate", "--preset", "tiny", "--seed", "7",
            "--corpus", str(corpus), "--environment", str(environment),
        ]
    )
    assert code == 0
    return corpus, environment


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.preset == "tiny"
        assert args.seed == 2016
        assert not args.handshakes

    def test_analysis_commands_accept_preset(self):
        args = build_parser().parse_args(["census", "--preset", "tiny"])
        assert args.preset == "tiny"

    def test_analysis_commands_accept_obs_flags(self):
        args = build_parser().parse_args(
            ["link", "--preset", "tiny", "--trace", "t.jsonl", "--metrics"]
        )
        assert args.trace == "t.jsonl"
        assert args.metrics == "-"

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.dataset == "tiny"
        assert args.workers == 1
        assert args.trace is None
        assert args.metrics is None

    def test_cache_flags(self):
        args = build_parser().parse_args(
            ["link", "--preset", "tiny", "--cache-dir", "cache", "--no-cache"]
        )
        assert args.cache_dir == "cache"
        assert args.no_cache
        args = build_parser().parse_args(
            ["profile", "--cache-dir", "artifacts"]
        )
        assert args.cache_dir == "artifacts"
        assert not args.no_cache

    def test_no_cache_disables_cache_dir(self):
        from repro.cli import _make_cache

        with_cache = build_parser().parse_args(
            ["census", "--preset", "tiny", "--cache-dir", "cache"]
        )
        assert _make_cache(with_cache) is not None
        disabled = build_parser().parse_args(
            ["census", "--preset", "tiny", "--cache-dir", "cache", "--no-cache"]
        )
        assert _make_cache(disabled) is None


class TestCommands:
    def test_generate_writes_both_artifacts(self, saved_corpus):
        corpus, environment = saved_corpus
        assert corpus.exists()
        assert environment.exists()

    def test_info(self, saved_corpus, capsys):
        corpus, _ = saved_corpus
        assert main(["info", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "backend: mapped" in out
        assert "format: 3" in out
        assert "per-column bytes:" in out
        assert "n_scans" in out
        assert "n_certificates" in out
        assert "n_observations" in out
        assert "workers: 1" in out

    def test_info_reports_cache_status(self, saved_corpus, capsys, tmp_path):
        corpus, environment = saved_corpus
        cache_dir = tmp_path / "artifact-cache"
        assert main(["info", str(corpus), "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "cache digest:" in out
        assert "cache: miss" in out
        # Warm the cache through an analysis command, then re-inspect.
        assert main(
            ["census", "--corpus", str(corpus), "--environment",
             str(environment), "--cache-dir", str(cache_dir)]
        ) == 0
        capsys.readouterr()
        assert main(["info", str(corpus), "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        # census builds (and therefore persists) only the validation
        # artifact; a link/track run would add the kernels section.
        assert "cache: hit (validation)" in out

    def test_info_echoes_worker_count(self, saved_corpus, capsys):
        corpus, _ = saved_corpus
        assert main(["info", str(corpus), "--workers", "3"]) == 0
        assert "workers: 3" in capsys.readouterr().out

    def test_census_from_saved(self, saved_corpus, capsys):
        corpus, environment = saved_corpus
        code = main(
            ["census", "--corpus", str(corpus), "--environment", str(environment)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "invalid:" in out
        assert "top invalid issuers" in out

    def test_link_from_saved(self, saved_corpus, capsys):
        corpus, environment = saved_corpus
        code = main(
            ["link", "--corpus", str(corpus), "--environment", str(environment)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pipeline: linked" in out
        assert "Public Key" in out

    def test_track_from_saved(self, saved_corpus, capsys):
        corpus, environment = saved_corpus
        code = main(
            ["track", "--corpus", str(corpus), "--environment", str(environment)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trackable devices" in out

    def test_analysis_without_inputs_fails(self):
        with pytest.raises(SystemExit):
            main(["census"])


class TestStreamOut:
    def test_parser_accepts_stream_out_and_xlarge(self):
        args = build_parser().parse_args(
            ["generate", "--preset", "xlarge", "--stream-out"]
        )
        assert args.preset == "xlarge"
        assert args.stream_out

    def test_xlarge_is_generate_only(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["census", "--preset", "xlarge"])

    def test_stream_out_matches_in_memory_generate(
        self, saved_corpus, tmp_path, capsys
    ):
        corpus, _ = saved_corpus  # built by plain generate (tiny, seed 7)
        streamed = tmp_path / "streamed.rpz"
        environment = tmp_path / "streamed.rpe"
        code = main(
            ["generate", "--preset", "tiny", "--seed", "7", "--stream-out",
             "--corpus", str(streamed), "--environment", str(environment)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "corpus digest:" in out
        assert streamed.read_bytes() == corpus.read_bytes()
        assert environment.exists()
        # The streamed corpus is a first-class analysis input.
        assert main(["info", str(streamed)]) == 0


class TestConvert:
    @pytest.fixture()
    def legacy_corpus(self, saved_corpus, tmp_path):
        """A v2 zip archive holding the same corpus as saved_corpus."""
        from repro.io import load_dataset, save_dataset_v2

        corpus, _ = saved_corpus
        legacy = tmp_path / "legacy.rpz"
        save_dataset_v2(load_dataset(corpus), legacy)
        return corpus, legacy

    def test_convert_produces_native_equivalent(
        self, legacy_corpus, tmp_path, capsys
    ):
        corpus, legacy = legacy_corpus
        out = tmp_path / "upgraded.rpz"
        assert main(["convert", str(legacy), "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "format 2" in printed
        assert "corpus digest:" in printed
        # The converter re-interns in canonical corpus order, so the
        # upgraded archive is bitwise-identical to a native format 3 save.
        assert out.read_bytes() == corpus.read_bytes()

    def test_convert_default_output_path(self, legacy_corpus, capsys):
        _, legacy = legacy_corpus
        assert main(["convert", str(legacy)]) == 0
        assert legacy.with_name("legacy.v3.rpz").exists()

    def test_convert_rejects_format3_input(self, saved_corpus):
        corpus, _ = saved_corpus
        with pytest.raises(SystemExit, match="already a format 3"):
            main(["convert", str(corpus)])


class TestObservability:
    def test_link_with_trace_and_metrics(self, saved_corpus, tmp_path, capsys):
        corpus, environment = saved_corpus
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            ["link", "--corpus", str(corpus), "--environment",
             str(environment), "--trace", str(trace_path), "--metrics"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert trace_path.exists()
        assert f"spans to {trace_path}" in out
        assert "repro_dedup_certs_unique_total" in out

    def test_profile_writes_trace_and_prints_tree(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            ["profile", "--dataset", "tiny", "--seed", "7", "--workers", "2",
             "--trace", str(trace_path), "--metrics", str(metrics_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The printed tree covers every pipeline stage.
        for stage in ("scan", "validation", "kernels", "dedup",
                      "feature_evaluations", "pipeline", "tracking"):
            assert stage in out
        assert "scanner.observations_recorded" in out
        lines = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert lines[0]["type"] == "meta"
        names = {record["name"] for record in lines[1:]}
        assert any(name.startswith("scan/day=") for name in names)
        assert any(name.startswith("link/feature=") for name in names)
        assert "repro_scanner_scans_executed_total" in metrics_path.read_text()

    def test_profile_with_rpz_requires_environment(self, saved_corpus):
        corpus, _ = saved_corpus
        with pytest.raises(SystemExit):
            main(["profile", "--dataset", str(corpus)])

    def test_profile_from_saved_corpus(self, saved_corpus, capsys):
        corpus, environment = saved_corpus
        code = main(
            ["profile", "--dataset", str(corpus), "--environment",
             str(environment), "--max-depth", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "load" in out
        assert "dedup.certs_considered" in out


class TestAppendCommand:
    """O(day) ingestion through the CLI: `repro append` and info digests."""

    def test_parser_requires_out_and_day(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["append", "corpus.rpz"])
        args = build_parser().parse_args(
            ["append", "corpus.rpz", "--out", "grown.rpz", "--day", "5555",
             "--seed", "7"]
        )
        assert args.day == 5555
        assert args.preset == "tiny"

    @staticmethod
    def _truncated_base(path, seed):
        """The tiny-preset corpus minus its last scan day."""
        from repro.cli import _PRESETS
        from repro.datasets.synthetic import _world_campaigns
        from repro.internet.population import WorldConfig
        from repro.io.store import StreamingDatasetWriter
        from repro.scanner.engine import ScanEngine

        settings = dict(_PRESETS["tiny"])
        stride = settings.pop("stride")
        world, campaigns = _world_campaigns(
            WorldConfig(seed=seed, **settings), stride
        )
        engine = ScanEngine(world)
        schedule = sorted(
            ((day, campaign)
             for campaign in campaigns for day in campaign.scan_days),
            key=lambda task: (task[0], task[1].name),
        )
        last_day = max(day for day, _ in schedule)
        writer = StreamingDatasetWriter(path)
        for day, campaign in schedule:
            if day != last_day:
                writer.add_shard(engine.run_shard(campaign, day))
        writer.close(engine.certificate_store)
        return last_day

    def test_append_matches_full_generate(
        self, saved_corpus, tmp_path, capsys
    ):
        corpus, _ = saved_corpus
        base = tmp_path / "base.rpz"
        last_day = self._truncated_base(base, seed=7)
        grown = tmp_path / "grown.rpz"
        cache_dir = tmp_path / "cache"
        code = main(
            ["append", str(base), "--out", str(grown), "--preset", "tiny",
             "--seed", "7", "--day", str(last_day),
             "--cache-dir", str(cache_dir)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"appended day {last_day}" in out
        assert "corpus digest:" in out
        # Byte-identical to the corpus a full generate run wrote.
        assert grown.read_bytes() == corpus.read_bytes()
        # --cache-dir records the grown corpus' delta lineage.
        assert (cache_dir / "lineage.json").exists()

    def test_append_unknown_day_fails(self, saved_corpus, tmp_path):
        corpus, _ = saved_corpus
        with pytest.raises(SystemExit, match="no campaign"):
            main(
                ["append", str(corpus), "--out", str(tmp_path / "g.rpz"),
                 "--seed", "7", "--day", "1"]
            )

    def test_info_digest_without_paging_columns(self, saved_corpus, capsys):
        from repro.obs import runtime as obs_runtime
        from repro.obs.metrics import MetricsRegistry

        corpus, _ = saved_corpus
        registry = MetricsRegistry()
        obs_runtime.activate(metrics=registry)
        try:
            code = main(["info", str(corpus)])
        finally:
            obs_runtime.deactivate()
        assert code == 0
        assert "corpus digest:" in capsys.readouterr().out
        # The digest streams over the file: nothing is mapped or copied
        # out of column segments.
        assert registry.counters.get("io.bytes_materialized", 0) == 0
        assert registry.counters.get("io.mmap_open_total", 0) == 0


class TestLivePlaneCommands:
    """`repro shard`, `repro ingest --watch`, and `repro top`."""

    def test_parser_shard_requires_day(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shard"])
        args = build_parser().parse_args(["shard", "--day", "120"])
        assert args.preset == "tiny"
        assert args.drop_dir == "."
        assert args.out is None

    def test_parser_ingest_requires_watch(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ingest", "c.rpz"])
        args = build_parser().parse_args(["ingest", "c.rpz", "--watch", "d"])
        assert args.interval == 2.0
        assert not args.once
        assert args.max_days is None
        assert args.serve is None
        assert args.trace_stream is None
        assert args.retain == 512

    def test_parser_top_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.url == "http://127.0.0.1:9110"
        assert args.interval == 2.0
        assert args.iterations == 1

    def test_parse_endpoint(self):
        from repro.cli import _parse_endpoint

        assert _parse_endpoint("9110") == ("127.0.0.1", 9110)
        assert _parse_endpoint(":8080") == ("127.0.0.1", 8080)
        assert _parse_endpoint("0.0.0.0:80") == ("0.0.0.0", 80)
        with pytest.raises(SystemExit, match="HOST:PORT"):
            _parse_endpoint("nope")

    def test_ingest_rejects_bad_interval(self, tmp_path):
        with pytest.raises(SystemExit, match="interval"):
            main(["ingest", str(tmp_path / "c.rpz"), "--watch",
                  str(tmp_path), "--interval", "0"])

    def test_shard_then_ingest_matches_generate(
        self, saved_corpus, tmp_path, capsys
    ):
        corpus, _ = saved_corpus
        watched = tmp_path / "watched.rpz"
        last_day = TestAppendCommand._truncated_base(watched, seed=7)
        drops = tmp_path / "drops"
        drops.mkdir()
        assert main(
            ["shard", "--preset", "tiny", "--seed", "7",
             "--day", str(last_day), "--drop-dir", str(drops)]
        ) == 0
        out = capsys.readouterr().out
        assert f"dropped day {last_day}" in out
        assert "drop digest:" in out
        drop = drops / f"day-{last_day:05d}.rps"
        assert drop.exists()
        trace_stream = tmp_path / "stream.jsonl"
        assert main(
            ["ingest", str(watched), "--watch", str(drops), "--once",
             "--serve", "127.0.0.1:0", "--trace-stream", str(trace_stream)]
        ) == 0
        out = capsys.readouterr().out
        assert "live plane at http://127.0.0.1:" in out
        assert "ingested 1 drop file(s) (0 rejected)" in out
        assert f"last appended day: {last_day}" in out
        # The daemon-ingested corpus is byte-identical to a full
        # generate run — the watch path preserves append invariance.
        assert watched.read_bytes() == corpus.read_bytes()
        assert drop.with_name(drop.name + ".done").exists()
        # The streaming sink left a parseable JSONL trace behind.
        import json

        lines = trace_stream.read_text().splitlines()
        assert json.loads(lines[0])["streaming"] is True

    def test_top_renders_live_snapshot(self, capsys):
        from repro.obs import LiveServer, MetricsRegistry, Tracer

        tracer = Tracer(process="cli-top")
        registry = MetricsRegistry()
        registry.inc("ingest.files_ingested", 2)
        with tracer.span("ingest/poll"):
            pass
        server = LiveServer(
            tracer, registry, health={"last_append_day": 7}
        ).start()
        try:
            assert main(["top", "--url", server.url, "--iterations", "1"]) == 0
        finally:
            server.stop()
        out = capsys.readouterr().out
        assert "repro top — cli-top" in out
        assert "last append day 7" in out
        assert "ingest.files_ingested" in out

    def test_top_unreachable_endpoint_fails(self):
        with pytest.raises(SystemExit, match="cannot reach"):
            main(["top", "--url", "http://127.0.0.1:1", "--iterations", "1"])


class TestCompactAfter:
    """`repro append --compact-after N` flattens long delta chains."""

    def test_parser_accepts_compact_after(self):
        args = build_parser().parse_args(
            ["append", "c.rpz", "--out", "g.rpz", "--day", "5555",
             "--compact-after", "30"]
        )
        assert args.compact_after == 30

    def test_append_compacts_when_chain_reaches_bound(
        self, saved_corpus, tmp_path, capsys
    ):
        import json

        from repro.io import load_dataset
        from repro.io.artifacts import ArtifactCache

        base = tmp_path / "base.rpz"
        last_day = TestAppendCommand._truncated_base(base, seed=7)
        grown = tmp_path / "grown.rpz"
        cache_dir = tmp_path / "cache"
        code = main(
            ["append", str(base), "--out", str(grown), "--preset", "tiny",
             "--seed", "7", "--day", str(last_day),
             "--cache-dir", str(cache_dir), "--compact-after", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "compacted delta chain (1 ancestors)" in out
        assert json.loads((cache_dir / "lineage.json").read_text()) == {}
        digest = load_dataset(grown).corpus_digest()
        cache = ArtifactCache(cache_dir)
        assert "kernels" in cache.status(digest)["sections"]

    def test_append_below_bound_keeps_the_chain(
        self, saved_corpus, tmp_path, capsys
    ):
        import json

        base = tmp_path / "base.rpz"
        last_day = TestAppendCommand._truncated_base(base, seed=7)
        cache_dir = tmp_path / "cache"
        code = main(
            ["append", str(base), "--out", str(tmp_path / "grown.rpz"),
             "--preset", "tiny", "--seed", "7", "--day", str(last_day),
             "--cache-dir", str(cache_dir), "--compact-after", "5"]
        )
        assert code == 0
        assert "compacted" not in capsys.readouterr().out
        lineage = json.loads((cache_dir / "lineage.json").read_text())
        assert len(lineage) == 1


class TestServeCommands:
    def test_parser_serve_defaults(self):
        args = build_parser().parse_args(
            ["serve", "c.rpz", "--environment", "e.rpe"]
        )
        assert args.listen == "127.0.0.1:0"
        assert args.workers == 1
        assert not args.no_warm
        assert args.max_seconds is None

    def test_parser_serve_requires_environment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "c.rpz"])

    def test_parser_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen", "http://127.0.0.1:1"])
        assert args.requests == 2000
        assert args.concurrency == 16
        assert args.mix is None
        assert args.seed == 2016
        assert not args.json

    def test_parse_mix(self):
        from repro.cli import _parse_mix

        assert _parse_mix("cert=8,track=2") == {"cert": 8, "track": 2}
        with pytest.raises(SystemExit, match="NAME=WEIGHT"):
            _parse_mix("cert")

    def test_serve_boots_warms_and_exits(self, saved_corpus, capsys):
        corpus, environment = saved_corpus
        code = main(
            ["serve", str(corpus), "--environment", str(environment),
             "--max-seconds", "0.5", "--no-cache"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serving queries at http://127.0.0.1:" in out

    def test_loadgen_unreachable_server_fails(self):
        with pytest.raises(Exception):
            main(["loadgen", "http://127.0.0.1:1", "--requests", "10"])


class TestFleetCommands:
    def test_parser_split_defaults(self):
        args = build_parser().parse_args(
            ["split", "c.rpz", "--environment", "e.rpe", "--out", "fleet"]
        )
        assert args.shards == 4
        assert not args.no_cache

    def test_parser_fleet_defaults(self):
        args = build_parser().parse_args(
            ["fleet", "c.rpz", "--environment", "e.rpe",
             "--fleet-dir", "fleet"]
        )
        assert args.shards == 4
        assert args.listen == "127.0.0.1:0"
        assert args.max_seconds is None

    def test_split_writes_a_verifiable_fleet(self, saved_corpus, tmp_path,
                                             capsys):
        from repro.io import load_fleet_manifest, verify_fleet

        corpus, environment = saved_corpus
        out = tmp_path / "fleet"
        code = main(
            ["split", str(corpus), "--environment", str(environment),
             "--out", str(out), "--shards", "2", "--no-cache"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "shard 0:" in printed and "shard 1:" in printed
        assert "fleet.json" in printed
        manifest = load_fleet_manifest(out)
        assert manifest.shards == 2
        verify_fleet(manifest)

    def test_split_rejects_bad_shard_counts(self, saved_corpus, tmp_path):
        corpus, environment = saved_corpus
        with pytest.raises(Exception):
            main(
                ["split", str(corpus), "--environment", str(environment),
                 "--out", str(tmp_path / "f"), "--shards", "0",
                 "--no-cache"]
            )
