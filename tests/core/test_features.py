"""Tests for feature extraction and the Table 5 census."""

from repro.core.features import (
    Feature,
    absence_rates,
    extract,
    linkable_value,
    non_uniqueness_census,
)

from .helpers import DAY0, make_cert, make_dataset, make_keypair


class TestExtract:
    def test_not_before_includes_seconds(self):
        cert = make_cert(nb=100, nb_secs=4242)
        assert extract(cert, Feature.NOT_BEFORE) == (100, 4242)

    def test_not_after(self):
        cert = make_cert(nb=100, days=50, nb_secs=7)
        assert extract(cert, Feature.NOT_AFTER) == (150, 7)

    def test_common_name(self):
        assert extract(make_cert(cn="fritz.box"), Feature.COMMON_NAME) == "fritz.box"

    def test_public_key(self):
        keypair = make_keypair(3)
        cert = make_cert(keypair=keypair)
        assert extract(cert, Feature.PUBLIC_KEY) == keypair.public

    def test_san_list(self):
        cert = make_cert(sans=("a.example", "b.example"))
        assert extract(cert, Feature.SAN_LIST) == ("a.example", "b.example")

    def test_issuer_serial(self):
        cert = make_cert(cn="sub", issuer_cn="PlayBook: AA:BB", serial=42)
        issuer, serial = extract(cert, Feature.ISSUER_SERIAL)
        assert issuer.cn == "PlayBook: AA:BB"
        assert serial == 42

    def test_crl(self):
        cert = make_cert(crl=("http://crl.example/x.crl",))
        assert extract(cert, Feature.CRL) == ("http://crl.example/x.crl",)

    def test_absent_features_are_none(self):
        cert = make_cert()
        for feature in (Feature.SAN_LIST, Feature.CRL, Feature.AIA,
                        Feature.OCSP, Feature.OID):
            assert extract(cert, feature) is None


class TestLinkableValue:
    def test_ip_literal_cn_dropped(self):
        cert = make_cert(cn="192.168.1.1")
        assert extract(cert, Feature.COMMON_NAME) == "192.168.1.1"
        assert linkable_value(cert, Feature.COMMON_NAME) is None

    def test_domain_cn_kept(self):
        cert = make_cert(cn="box1.myfritz.net")
        assert linkable_value(cert, Feature.COMMON_NAME) == "box1.myfritz.net"

    def test_other_features_unaffected(self):
        cert = make_cert(cn="192.168.1.1", nb=7, nb_secs=5)
        assert linkable_value(cert, Feature.NOT_BEFORE) == (7, 5)


class TestCensus:
    def build(self):
        shared_key = make_keypair(1)
        a = make_cert(cn="same", keypair=shared_key, nb=DAY0 - 10)
        b = make_cert(cn="same", key_seed=2, nb=DAY0 - 20)
        c = make_cert(cn="other", keypair=shared_key, nb=DAY0 - 30,
                      crl=("http://crl/1",))
        dataset = make_dataset([(DAY0, [(1, a), (2, b), (3, c)])])
        return dataset, (a, b, c)

    def test_non_uniqueness(self):
        dataset, certs = self.build()
        fps = [cert.fingerprint for cert in certs]
        census = non_uniqueness_census(dataset, fps)
        assert census[Feature.COMMON_NAME] == 2 / 3   # 'same' shared by two
        assert census[Feature.PUBLIC_KEY] == 2 / 3    # shared key on a and c
        assert census[Feature.NOT_BEFORE] == 0.0      # all distinct stamps
        assert census[Feature.CRL] == 0.0             # one carrier, unique

    def test_absence_rates(self):
        dataset, certs = self.build()
        fps = [cert.fingerprint for cert in certs]
        rates = absence_rates(dataset, fps)
        assert rates[Feature.CRL] == 2 / 3
        assert rates[Feature.COMMON_NAME] == 0.0
        assert rates[Feature.OID] == 1.0

    def test_empty_population(self):
        dataset, _ = self.build()
        census = non_uniqueness_census(dataset, [])
        assert all(value == 0.0 for value in census.values())


class TestPaperShape:
    def test_rare_extensions_mostly_absent(self, tiny_synthetic, tiny_study):
        # Paper: >99 % of invalid certificates lack CRL/AIA/OCSP/OID.
        rates = absence_rates(tiny_synthetic.scans, tiny_study.invalid)
        for feature in (Feature.CRL, Feature.AIA, Feature.OCSP, Feature.OID):
            assert rates[feature] > 0.95

    def test_issuer_serial_least_shared(self, tiny_synthetic, tiny_study):
        # Table 5's ordering: IN+SN is by far the least shared feature.
        census = non_uniqueness_census(tiny_synthetic.scans, tiny_study.invalid)
        assert census[Feature.ISSUER_SERIAL] < census[Feature.COMMON_NAME]
        assert census[Feature.ISSUER_SERIAL] < census[Feature.PUBLIC_KEY]
