"""Kernel-vs-naive parity for the §6 columnar linking kernels.

Every kernel (FeatureMatrix grouping/census, CertIntervals dedup and
lifetimes, fused consistency) must be bitwise-identical to the pre-kernel
row path.  These tests build a randomized corpus — shared keys, colliding
Common Names and Not Before stamps, IP-literal CNs, multi-homed and
zero-observation certificates — and compare both paths explicitly, plus
run the pipeline end-to-end under ``REPRO_LINK_PARITY=1`` so the in-tree
cross-checks fire.
"""

import random

import pytest

from repro.core.consistency import evaluate_link_result, group_consistency
from repro.core.dedup import _naive_classify, classify_unique_certificates
from repro.core.features import (
    Feature,
    _naive_absence_rates,
    _naive_non_uniqueness_census,
    absence_rates,
    extract,
    linkable_value,
    non_uniqueness_census,
)
from repro.core.kernels import fused_group_consistency
from repro.core.linking import _naive_group_by_feature, group_by_feature, link_on_feature
from repro.core.pipeline import (
    _naive_lifetime_improvement,
    iterative_link,
    lifetime_improvement,
)
from repro.scanner.records import Observation, Scan
from repro.scanner.dataset import ScanDataset

from .helpers import DAY0, make_cert, make_dataset, make_keypair


def random_corpus(seed=7, n_certs=36, n_scans=8, n_unobserved=3):
    """A randomized corpus exercising every kernel edge at once.

    Deliberate collisions (shared keypairs, repeated CNs and Not Before
    stamps), IPv4-literal Common Names, SAN/CRL carriers, multi-homed
    certificates (up to four addresses in one scan), shared /24s, and a
    few certificates present in the table but never observed.
    """
    rng = random.Random(seed)
    keypairs = [make_keypair(s) for s in range(1, 7)]
    cns = ["WD2GO 7", "fritz.box", "192.168.1.1", "10.0.0.138", "box-%d"]
    certs = []
    for i in range(n_certs):
        cn = rng.choice(cns)
        if cn == "box-%d":
            cn = f"box-{rng.randrange(6)}"
        certs.append(
            make_cert(
                cn=cn,
                keypair=rng.choice(keypairs),
                nb=DAY0 - rng.randrange(60),
                nb_secs=rng.choice([None, 1234, 4321]),
                sans=("a.example", "b.example") if rng.random() < 0.3 else (),
                crl=("http://crl.example/x",) if rng.random() < 0.2 else (),
            )
        )
    scans = []
    certificates = {}
    for day_index in range(n_scans):
        observations = []
        for cert in certs:
            if rng.random() < 0.6:
                continue
            certificates[cert.fingerprint] = cert
            base_ip = 0x0A000000 + rng.randrange(4) * 256 + rng.randrange(40)
            for extra in range(rng.choice([1, 1, 1, 2, 4])):
                observations.append(
                    Observation(ip=base_ip + extra * 7, fingerprint=cert.fingerprint)
                )
        scans.append(Scan(day=DAY0 + 7 * day_index, source="test", observations=observations))
    for i in range(n_unobserved):
        ghost = make_cert(cn=f"never-seen-{i}", key_seed=100 + i)
        certificates[ghost.fingerprint] = ghost
    return ScanDataset(scans, certificates)


def random_as_of(ip, day):
    """A deterministic, lumpy (ip, day) → ASN mapping."""
    return (ip >> 10) % 5 + (1 if day % 14 == 0 else 0)


@pytest.fixture(scope="module")
def corpus():
    return random_corpus()


@pytest.fixture(scope="module")
def population(corpus):
    return sorted(corpus.certificates)


class TestFeatureMatrix:
    def test_round_trips_every_extracted_value(self, corpus):
        matrix = corpus.feature_matrix
        for fingerprint, cert in corpus.certificates.items():
            for feature in Feature:
                assert matrix.raw_value(feature, fingerprint) == extract(cert, feature)

    def test_linkable_ids_drop_ip_literal_cns(self, corpus):
        matrix = corpus.feature_matrix
        for fingerprint, cert in corpus.certificates.items():
            value_id = matrix.linkable_id(Feature.COMMON_NAME, fingerprint)
            expected = linkable_value(cert, Feature.COMMON_NAME)
            if expected is None:
                assert value_id == -1
            else:
                assert matrix.values[Feature.COMMON_NAME][value_id] == expected

    def test_equal_values_share_one_id(self, corpus):
        matrix = corpus.feature_matrix
        for feature in Feature:
            values = matrix.values[feature]
            assert len(values) == len(set(values))

    def test_census_and_absence_match_naive(self, corpus, population):
        assert non_uniqueness_census(corpus, population) == \
            _naive_non_uniqueness_census(corpus, population)
        assert absence_rates(corpus, population) == \
            _naive_absence_rates(corpus, population)


class TestIntervalKernel:
    def test_intervals_match_ips_by_scan(self, corpus):
        spans = corpus.intervals
        for fingerprint, cert_id in corpus.columns.fingerprint_ids.items():
            by_scan = corpus.ips_by_scan(fingerprint)
            scan_idxs = sorted(by_scan)
            sizes = [len(ips) for ips in by_scan.values()]
            assert spans.first_scan[cert_id] == scan_idxs[0]
            assert spans.last_scan[cert_id] == scan_idxs[-1]
            assert spans.n_scans[cert_id] == len(scan_idxs)
            assert spans.max_ips[cert_id] == max(sizes)
            assert spans.min_ips[cert_id] == min(sizes)

    def test_dedup_matches_naive_at_every_threshold(self, corpus):
        observed = sorted(corpus.columns.fingerprint_ids)
        for threshold in (1, 2, 3, 4):
            kernel = classify_unique_certificates(corpus, observed, threshold)
            naive = _naive_classify(corpus, observed, threshold)
            assert kernel == naive

    def test_zero_observation_certificate_is_unique(self, corpus, population):
        # Regression: max(sizes) used to raise ValueError on an empty
        # sequence for table-only certificates; they are single-device.
        ghosts = set(population) - set(corpus.columns.fingerprint_ids)
        assert ghosts, "corpus should carry never-observed certificates"
        result = classify_unique_certificates(corpus, population)
        assert ghosts <= result.unique

    def test_zero_observation_minimal_case(self):
        seen = make_cert(cn="seen", key_seed=1)
        ghost = make_cert(cn="ghost", key_seed=2)
        dataset = make_dataset([(DAY0, [(100, seen)])])
        dataset.certificates[ghost.fingerprint] = ghost
        result = classify_unique_certificates(
            dataset, [seen.fingerprint, ghost.fingerprint]
        )
        assert ghost.fingerprint in result.unique
        assert seen.fingerprint in result.unique


class TestLinkingKernels:
    @pytest.mark.parametrize("feature", list(Feature), ids=lambda f: f.name)
    def test_grouping_matches_naive(self, corpus, population, feature):
        observed = [fp for fp in population if fp in corpus.columns.fingerprint_ids]
        kernel = group_by_feature(corpus, observed, feature)
        naive = _naive_group_by_feature(corpus, observed, feature)
        assert kernel == naive
        assert list(kernel) == list(naive)  # same first-appearance order

    @pytest.mark.parametrize("feature", list(Feature), ids=lambda f: f.name)
    def test_consistency_matches_reference(self, corpus, feature):
        observed = sorted(corpus.columns.fingerprint_ids)
        result = link_on_feature(corpus, observed, feature)
        report = evaluate_link_result(corpus, result, random_as_of)
        for group in result.groups:
            fused = fused_group_consistency(
                corpus, group.fingerprints, random_as_of
            )
            reference = tuple(
                group_consistency(corpus, group, level, random_as_of)
                for level in ("ip", "/24", "/16", "as")
            )
            assert fused == reference
        assert report.total_linked == result.total_linked

    def test_fused_levels_without_as_lookup(self, corpus):
        observed = sorted(corpus.columns.fingerprint_ids)
        ip_level, s24, s16, as_level = fused_group_consistency(
            corpus, observed[:5], None
        )
        assert as_level == 0.0
        assert 0.0 <= ip_level <= s24 <= s16 <= 1.0


class TestEndToEndParity:
    def test_pipeline_under_parity_env(self, corpus, monkeypatch):
        monkeypatch.setenv("REPRO_LINK_PARITY", "1")
        observed = sorted(corpus.columns.fingerprint_ids)
        dedup = classify_unique_certificates(corpus, observed)
        pipeline = iterative_link(corpus, sorted(dedup.unique), random_as_of)
        improvement = lifetime_improvement(corpus, pipeline, sorted(dedup.unique))
        naive = _naive_lifetime_improvement(
            corpus, pipeline, sorted(dedup.unique)
        )
        assert improvement == naive

    def test_matrix_survives_pickling(self, corpus):
        # Workers receive the kernels with the pickled dataset.
        import pickle

        corpus.feature_matrix
        corpus.intervals
        clone = pickle.loads(pickle.dumps(corpus))
        assert clone._feature_matrix is not None
        assert clone._intervals is not None
        assert clone.feature_matrix.rows == corpus.feature_matrix.rows
        assert list(clone.intervals.first_scan) == list(corpus.intervals.first_scan)
