"""Tests for network-fingerprint-augmented linking (§6.3 future work)."""

import pytest

from repro.core.features import Feature
from repro.core.linking import link_on_feature
from repro.core.netlink import (
    link_on_feature_with_fingerprint,
    pfs_support,
    stack_fingerprints,
)
from repro.scanner.dataset import ScanDataset
from repro.scanner.records import Observation, Scan
from repro.tls.handshake import HandshakeRecord

from .helpers import DAY0, make_cert, make_keypair

ROUTER_STACK = HandshakeRecord(version=0x0301, cipher=0x002F, tcp_window=5840, ip_ttl=64)
CAMERA_STACK = HandshakeRecord(version=0x0301, cipher=0x0005, tcp_window=8192, ip_ttl=255)
PFS_STACK = HandshakeRecord(version=0x0303, cipher=0xC013, tcp_window=29200, ip_ttl=64)


def make_dataset_with_handshakes(scan_specs):
    """[(day, [(ip, cert, handshake), ...]), ...] → ScanDataset."""
    scans = []
    certificates = {}
    for day, rows in scan_specs:
        observations = []
        for ip, cert, handshake in rows:
            certificates[cert.fingerprint] = cert
            observations.append(
                Observation(ip=ip, fingerprint=cert.fingerprint, handshake=handshake)
            )
        scans.append(Scan(day=day, source="test", observations=observations))
    return ScanDataset(scans, certificates)


class TestStackFingerprints:
    def test_index(self):
        a = make_cert(cn="a", key_seed=1)
        b = make_cert(cn="b", key_seed=2)
        dataset = make_dataset_with_handshakes(
            [(DAY0, [(1, a, ROUTER_STACK), (2, b, None)])]
        )
        index = stack_fingerprints(dataset, [a.fingerprint, b.fingerprint])
        assert index[a.fingerprint] == ROUTER_STACK.stack_fingerprint()
        assert index[b.fingerprint] is None

    def test_unobserved_certificate(self):
        a = make_cert(cn="a", key_seed=1)
        dataset = make_dataset_with_handshakes([(DAY0, [])])
        index = stack_fingerprints(dataset, [a.fingerprint])
        assert index[a.fingerprint] is None


class TestFingerprintLinking:
    def test_splits_cross_stack_coincidences(self):
        # Two devices with the SAME Not Before stamp (a coincidence the
        # plain §6.3.2 method would link) but different firmware stacks.
        router = make_cert(cn="r", key_seed=1, nb=DAY0 - 50, nb_secs=777)
        camera = make_cert(cn="c", key_seed=2, nb=DAY0 - 50, nb_secs=777)
        dataset = make_dataset_with_handshakes(
            [
                (DAY0, [(1, router, ROUTER_STACK)]),
                (DAY0 + 7, [(2, camera, CAMERA_STACK)]),
            ]
        )
        fps = [router.fingerprint, camera.fingerprint]
        plain = link_on_feature(dataset, fps, Feature.NOT_BEFORE)
        augmented = link_on_feature_with_fingerprint(
            dataset, fps, Feature.NOT_BEFORE
        )
        assert plain.total_linked == 2          # the false positive
        assert augmented.total_linked == 0      # split by fingerprint

    def test_same_stack_chains_still_link(self):
        keypair = make_keypair(5)
        a = make_cert(cn="gen-a", keypair=keypair)
        b = make_cert(cn="gen-b", keypair=keypair)
        dataset = make_dataset_with_handshakes(
            [(DAY0, [(1, a, ROUTER_STACK)]), (DAY0 + 7, [(1, b, ROUTER_STACK)])]
        )
        result = link_on_feature_with_fingerprint(
            dataset, [a.fingerprint, b.fingerprint], Feature.PUBLIC_KEY
        )
        assert result.total_linked == 2

    def test_missing_handshakes_fall_back_to_plain_bucketing(self):
        keypair = make_keypair(6)
        a = make_cert(cn="x-a", keypair=keypair)
        b = make_cert(cn="x-b", keypair=keypair)
        dataset = make_dataset_with_handshakes(
            [(DAY0, [(1, a, None)]), (DAY0 + 7, [(1, b, None)])]
        )
        result = link_on_feature_with_fingerprint(
            dataset, [a.fingerprint, b.fingerprint], Feature.PUBLIC_KEY
        )
        assert result.total_linked == 2

    def test_overlap_rule_still_applies(self):
        keypair = make_keypair(7)
        a = make_cert(cn="o-a", keypair=keypair)
        b = make_cert(cn="o-b", keypair=keypair)
        dataset = make_dataset_with_handshakes(
            [
                (DAY0, [(1, a, ROUTER_STACK), (2, b, ROUTER_STACK)]),
                (DAY0 + 7, [(1, a, ROUTER_STACK), (2, b, ROUTER_STACK)]),
            ]
        )
        result = link_on_feature_with_fingerprint(
            dataset, [a.fingerprint, b.fingerprint], Feature.PUBLIC_KEY
        )
        assert result.total_linked == 0
        assert result.rejected_values == 1


class TestPFS:
    def test_report(self):
        shared = make_keypair(1)
        lancom_a = make_cert(cn="l-a", keypair=shared)
        lancom_b = make_cert(cn="l-b", keypair=shared)
        fritz = make_cert(cn="f", key_seed=9)
        dataset = make_dataset_with_handshakes(
            [
                (DAY0, [(1, lancom_a, ROUTER_STACK), (2, lancom_b, ROUTER_STACK),
                        (3, fritz, PFS_STACK)]),
            ]
        )
        report = pfs_support(
            dataset, [lancom_a.fingerprint, lancom_b.fingerprint, fritz.fingerprint]
        )
        assert report.n_with_handshake == 3
        assert report.pfs_fraction == pytest.approx(1 / 3)
        # Both Lancom certs share a key AND lack PFS — footnote 10.
        assert report.shared_key_without_pfs == 2

    def test_no_handshakes(self):
        cert = make_cert()
        dataset = make_dataset_with_handshakes([(DAY0, [(1, cert, None)])])
        report = pfs_support(dataset, [cert.fingerprint])
        assert report.n_with_handshake == 0
        assert report.pfs_fraction == 0.0


class TestEndToEnd:
    def test_synthetic_collection(self):
        from repro.datasets.synthetic import generate
        from repro.internet.population import WorldConfig

        config = WorldConfig(seed=3, n_devices=60, n_websites=15,
                             n_generic_access=10, n_enterprise=4,
                             n_hosting=4, unused_roots=0)
        synthetic = generate(config, scan_stride=20, collect_handshakes=True)
        dataset = synthetic.scans
        with_handshake = sum(
            1 for scan in dataset.scans for obs in scan.observations
            if obs.handshake is not None
        )
        assert with_handshake == dataset.n_observations

    def test_default_collection_has_no_handshakes(self, tiny_synthetic):
        # The paper's corpora contained only certificates; default matches.
        for scan in tiny_synthetic.scans.scans[:2]:
            assert all(obs.handshake is None for obs in scan.observations)
