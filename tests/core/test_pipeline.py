"""Tests for the §6.4 pipeline: Table 6 evaluation, iterative linking,
and the §6.4.4 lifetime improvement."""

from repro.core.features import Feature
from repro.core.pipeline import (
    evaluate_all_features,
    iterative_link,
    lifetime_improvement,
)

from .helpers import DAY0, make_cert, make_dataset, make_keypair


def flat_as(ip, day):
    """Everything in one AS."""
    return 1


def build_small_population():
    """Two PK-linkable chains, one CN-linkable chain, one loner."""
    device_a = make_keypair(1)
    device_b = make_keypair(2)
    a1 = make_cert(cn="a-0", keypair=device_a)
    a2 = make_cert(cn="a-1", keypair=device_a)
    b1 = make_cert(cn="WD2GO 7", key_seed=10, nb=DAY0 - 30)
    b2 = make_cert(cn="WD2GO 7", key_seed=11, nb=DAY0 + 3)
    lone = make_cert(cn="lonely", key_seed=20)
    c1 = make_cert(cn="c-0", keypair=device_b)
    c2 = make_cert(cn="c-1", keypair=device_b)
    dataset = make_dataset(
        [
            (DAY0, [(1, a1), (2, b1), (3, lone), (4, c1)]),
            (DAY0 + 7, [(1, a2), (2, b1), (4, c1)]),
            (DAY0 + 14, [(2, b2), (4, c2)]),
        ]
    )
    fps = {c.fingerprint for c in (a1, a2, b1, b2, lone, c1, c2)}
    return dataset, fps


class TestEvaluateAllFeatures:
    def test_linked_and_unique_counts(self):
        dataset, fps = build_small_population()
        evaluations = evaluate_all_features(dataset, fps, flat_as)
        pk = evaluations[Feature.PUBLIC_KEY]
        cn = evaluations[Feature.COMMON_NAME]
        assert pk.total_linked == 4          # the two PK chains
        assert cn.total_linked == 2          # the WD2GO chain
        # PK chains are linked by nothing else; same for the CN chain.
        assert pk.uniquely_linked == 4
        assert cn.uniquely_linked == 2

    def test_consistency_populated(self):
        dataset, fps = build_small_population()
        evaluations = evaluate_all_features(dataset, fps, flat_as)
        assert evaluations[Feature.PUBLIC_KEY].consistency.as_level == 1.0
        assert evaluations[Feature.PUBLIC_KEY].consistency.ip_level == 1.0


class TestIterativeLink:
    def test_links_with_default_order(self):
        dataset, fps = build_small_population()
        result = iterative_link(dataset, fps, flat_as)
        assert result.linked_certificates == 6
        assert result.input_size == 7
        assert 0.8 < result.linked_fraction < 0.9

    def test_certs_linked_once_only(self):
        dataset, fps = build_small_population()
        result = iterative_link(dataset, fps, flat_as)
        seen = []
        for group in result.groups:
            seen.extend(group.fingerprints)
        assert len(seen) == len(set(seen))

    def test_explicit_field_order(self):
        dataset, fps = build_small_population()
        result = iterative_link(
            dataset, fps, flat_as, field_order=[Feature.COMMON_NAME]
        )
        assert result.field_order == (Feature.COMMON_NAME,)
        assert result.linked_certificates == 2

    def test_threshold_excludes_low_consistency_fields(self):
        # Split the WD2GO chain across two ASes: CN's AS-consistency drops
        # to 2/3 < 0.9 and the field is excluded from the pipeline.
        device_a = make_keypair(1)
        a1 = make_cert(cn="a-0", keypair=device_a)
        a2 = make_cert(cn="a-1", keypair=device_a)
        b1 = make_cert(cn="WD2GO 7", key_seed=10, nb=DAY0 - 30)
        b2 = make_cert(cn="WD2GO 7", key_seed=11, nb=DAY0 + 3)
        dataset = make_dataset(
            [
                (DAY0, [(1, a1), (100, b1)]),
                (DAY0 + 7, [(1, a2), (100, b1)]),
                (DAY0 + 14, [(200, b2)]),
            ]
        )
        fps = {c.fingerprint for c in (a1, a2, b1, b2)}
        as_of = lambda ip, day: 1 if ip < 100 else (2 if ip == 100 else 3)
        result = iterative_link(dataset, fps, as_of)
        assert Feature.COMMON_NAME in result.excluded
        assert result.linked_certificates == 2  # only the PK chain

    def test_group_size_cdf(self):
        dataset, fps = build_small_population()
        result = iterative_link(dataset, fps, flat_as)
        cdf = result.group_size_cdf()
        assert cdf.min == 2
        assert cdf.max == 2
        pk_cdf = result.group_size_cdf(Feature.PUBLIC_KEY)
        assert len(pk_cdf) == len(result.groups_of(Feature.PUBLIC_KEY))


class TestLifetimeImprovement:
    def test_linking_merges_ephemerals(self):
        # One device reissuing per scan: three single-scan certificates
        # merge into one 15-day unit.
        device = make_keypair(1)
        certs = [make_cert(cn=f"gen-{i}", keypair=device) for i in range(3)]
        loner = make_cert(cn="loner", key_seed=50)
        dataset = make_dataset(
            [
                (DAY0, [(1, certs[0]), (9, loner)]),
                (DAY0 + 7, [(1, certs[1])]),
                (DAY0 + 14, [(1, certs[2])]),
            ]
        )
        fps = {c.fingerprint for c in certs} | {loner.fingerprint}
        pipeline = iterative_link(dataset, fps, flat_as)
        improvement = lifetime_improvement(dataset, pipeline, fps)
        assert improvement.single_scan_fraction_before == 1.0
        # After: units are the merged group (15 days) and the loner.
        assert improvement.single_scan_fraction_after == 0.5
        assert improvement.mean_lifetime_before == 1.0
        assert improvement.mean_lifetime_after == (15 + 1) / 2

    def test_tiny_dataset_improvement_direction(self, tiny_synthetic, tiny_study):
        improvement = tiny_study.lifetime_improvement()
        # §6.4.4's headline: linking lengthens apparent lifetimes.
        assert improvement.mean_lifetime_after > improvement.mean_lifetime_before
