"""Tests for §5.2 key-sharing analysis (Figure 6)."""

import pytest

from repro.core.analysis.keys import key_sharing

from ..helpers import DAY0, make_cert, make_dataset, make_keypair


def build_population():
    lancom_key = make_keypair(1)
    shared = [
        make_cert(cn=f"lancom-{i}", keypair=lancom_key) for i in range(3)
    ]
    unique = [make_cert(cn=f"solo-{i}", key_seed=10 + i) for i in range(2)]
    certs = shared + unique
    dataset = make_dataset([(DAY0, [(i, c) for i, c in enumerate(certs)])])
    return dataset, certs


class TestKeySharing:
    def test_counts(self):
        dataset, certs = build_population()
        report = key_sharing(dataset, [c.fingerprint for c in certs])
        assert report.n_certificates == 5
        assert report.n_keys == 3
        assert report.shared_fraction == pytest.approx(3 / 5)
        assert report.top_key_fraction == pytest.approx(3 / 5)

    def test_coverage_curve_monotone_and_complete(self):
        dataset, certs = build_population()
        report = key_sharing(dataset, [c.fingerprint for c in certs])
        xs = [x for x, _ in report.coverage_curve]
        ys = [y for _, y in report.coverage_curve]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert report.coverage_curve[-1] == (1.0, 1.0)

    def test_curve_above_diagonal(self):
        # y >= x always (a certificate carries at most one key).
        dataset, certs = build_population()
        report = key_sharing(dataset, [c.fingerprint for c in certs])
        for x, y in report.coverage_curve:
            assert y >= x

    def test_coverage_lookup(self):
        dataset, certs = build_population()
        report = key_sharing(dataset, [c.fingerprint for c in certs])
        # The top 1/3 of keys covers 3/5 of certificates.
        assert report.certificates_covered_by(1 / 3) == pytest.approx(3 / 5)

    def test_empty_population_rejected(self):
        dataset, _ = build_population()
        with pytest.raises(ValueError):
            key_sharing(dataset, [])


class TestPaperShape:
    def test_invalid_shares_keys_more_than_valid(self, tiny_synthetic, tiny_study):
        dataset = tiny_synthetic.scans
        invalid = key_sharing(dataset, tiny_study.invalid)
        valid = key_sharing(dataset, tiny_study.valid)
        # Paper: 47 % of invalid certificates share keys — far above valid.
        assert invalid.shared_fraction > valid.shared_fraction

    def test_lancom_style_key_dominates(self, tiny_synthetic, tiny_study):
        # Paper: one Lancom key appears on 6.5 % of invalid certificates.
        report = key_sharing(tiny_synthetic.scans, tiny_study.invalid)
        assert report.top_key_fraction > 0.02
