"""Tests for the §7.1 fleet-dynamics analysis."""

import pytest

from repro.core.analysis.fleet import population_series, turnover
from repro.core.tracking import TrackedDevice

DAY0 = 5000


def device(key, first, last):
    return TrackedDevice(
        device_key=key,
        fingerprints=(b"\x00" * 32,),
        sightings=((0, first, 1), (1, last, 1)),
    )


class TestPopulationSeries:
    def test_counts_alive_devices(self):
        devices = [
            device("a", DAY0, DAY0 + 100),
            device("b", DAY0 + 50, DAY0 + 200),
        ]
        series = population_series(devices, [DAY0, DAY0 + 75, DAY0 + 150, DAY0 + 300])
        assert series == [
            (DAY0, 1),
            (DAY0 + 75, 2),
            (DAY0 + 150, 1),
            (DAY0 + 300, 0),
        ]

    def test_empty_population(self):
        assert population_series([], [DAY0]) == [(DAY0, 0)]


class TestTurnover:
    def test_rates(self):
        # 300-day window, edge = 30 days.
        devices = [
            device("old", DAY0, DAY0 + 300),          # persistent
            device("new", DAY0 + 100, DAY0 + 300),    # arrival, no departure
            device("gone", DAY0, DAY0 + 150),         # departure, no arrival
            device("brief", DAY0 + 100, DAY0 + 150),  # both
        ]
        result = turnover(devices, DAY0, DAY0 + 300)
        assert result.n_devices == 4
        assert result.arrivals_per_month == pytest.approx(2 / (301 / 30))
        assert result.departures_per_month == pytest.approx(2 / (301 / 30))
        assert result.persistent_fraction == 0.25

    def test_edge_censoring(self):
        # A device spanning the whole window is neither arrival nor departure.
        devices = [device("forever", DAY0, DAY0 + 1000)]
        result = turnover(devices, DAY0, DAY0 + 1000)
        assert result.arrivals_per_month == 0.0
        assert result.departures_per_month == 0.0
        assert result.persistent_fraction == 1.0

    def test_lifespan_cdf(self):
        devices = [device("a", DAY0, DAY0 + 9), device("b", DAY0, DAY0 + 99)]
        result = turnover(devices, DAY0, DAY0 + 100)
        assert sorted(result.lifespan_cdf.values) == [10, 100]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            turnover([], DAY0, DAY0 + 1)


class TestOnSynthetic:
    def test_growing_population(self, tiny_synthetic, tiny_study):
        dataset = tiny_synthetic.scans
        devices = tiny_study.tracked_devices()
        series = population_series(devices, dataset.scan_days())
        # The IoT trend: more tracked devices alive late than early.
        early = sum(count for _, count in series[:3]) / 3
        late = sum(count for _, count in series[-3:]) / 3
        assert late > early

    def test_turnover_runs(self, tiny_synthetic, tiny_study):
        dataset = tiny_synthetic.scans
        result = turnover(
            tiny_study.tracked_devices(),
            dataset.scans[0].day,
            dataset.scans[-1].day,
        )
        assert result.n_devices > 0
        assert result.arrivals_per_month > 0
