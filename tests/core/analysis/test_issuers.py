"""Tests for §5.3 issuer-diversity analyses (Table 1)."""

from repro.core.analysis.issuers import (
    private_ip_issuer_count,
    self_signed_fraction,
    signing_key_concentration,
    top_issuers,
)

from ..helpers import DAY0, make_cert, make_dataset


def build_population():
    lancom = [
        make_cert(cn=f"l{i}", key_seed=i, issuer_cn="www.lancom-systems.de")
        for i in range(3)
    ]
    router = [make_cert(cn=f"r{i}", key_seed=10 + i, issuer_cn="192.168.1.1")
              for i in range(2)]
    empty = make_cert(cn="e", key_seed=20, issuer_cn="")
    certs = lancom + router + [empty]
    dataset = make_dataset([(DAY0, [(i, c) for i, c in enumerate(certs)])])
    return dataset, certs


class TestTopIssuers:
    def test_ranking(self):
        dataset, certs = build_population()
        rows = top_issuers(dataset, [c.fingerprint for c in certs], n=3)
        assert rows[0] == ("www.lancom-systems.de", 3)
        assert rows[1] == ("192.168.1.1", 2)

    def test_empty_issuer_labelled(self):
        dataset, certs = build_population()
        rows = top_issuers(dataset, [c.fingerprint for c in certs], n=10)
        labels = dict(rows)
        assert labels.get("(Empty string)") == 1

    def test_private_ip_issuer_count(self):
        dataset, certs = build_population()
        assert private_ip_issuer_count(dataset, [c.fingerprint for c in certs]) == 2


class TestSelfSignedFraction:
    def test_all_helper_certs_self_signed(self):
        dataset, certs = build_population()
        assert self_signed_fraction(dataset, [c.fingerprint for c in certs]) == 1.0

    def test_empty_population(self):
        dataset, _ = build_population()
        assert self_signed_fraction(dataset, []) == 0.0


class TestKeyConcentration:
    def test_aki_required_mode_skips_bare_certs(self):
        dataset, certs = build_population()
        result = signing_key_concentration(
            dataset, [c.fingerprint for c in certs], require_aki=True
        )
        assert result.n_certificates == 0

    def test_fallback_to_own_key(self):
        dataset, certs = build_population()
        result = signing_key_concentration(
            dataset, [c.fingerprint for c in certs], require_aki=False
        )
        assert result.n_certificates == len(certs)
        assert result.n_parent_keys == len(certs)  # all distinct keys


class TestPaperShape:
    def test_table1_issuers_present(self, tiny_synthetic, tiny_study):
        rows = top_issuers(tiny_synthetic.scans, tiny_study.invalid, n=8)
        labels = [label for label, _ in rows]
        # Table 1's invalid side: Lancom and 192.168.1.1 near the top.
        assert "www.lancom-systems.de" in labels
        assert "192.168.1.1" in labels

    def test_valid_issuers_are_cas(self, tiny_synthetic, tiny_study):
        rows = top_issuers(tiny_synthetic.scans, tiny_study.valid, n=5)
        labels = " ".join(label for label, _ in rows)
        assert "CA" in labels or "Authority" in labels or "Root" in labels

    def test_most_invalid_self_signed(self, tiny_synthetic, tiny_study):
        fraction = self_signed_fraction(tiny_synthetic.scans, tiny_study.invalid)
        assert fraction > 0.75   # paper: 88.0 %

    def test_valid_concentration_beats_invalid_diversity(self, tiny_synthetic, tiny_study):
        dataset = tiny_synthetic.scans
        valid = signing_key_concentration(dataset, tiny_study.valid)
        # Paper: five signing keys span half the valid certificates.
        assert valid.keys_for_half <= 8
        invalid = signing_key_concentration(dataset, tiny_study.invalid)
        # Invalid AKI-bearing certs come from multiple distinct parent keys
        # even at tiny scale (per-site CAs).
        if invalid.n_certificates:
            assert invalid.n_parent_keys >= 3
