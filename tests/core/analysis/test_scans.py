"""Tests for §4.1 scan-corpus analyses (Figures 1-2)."""

import pytest

from repro.core.analysis.scans import (
    blacklist_attribution,
    invalid_fraction_summary,
    per_scan_counts,
    scan_discrepancy,
)
from repro.core.validation import ValidationReport
from repro.x509.chain import VerifyResult, VerifyStatus

from ..helpers import DAY0, make_cert, make_dataset


def report_for(valid_certs, invalid_certs):
    results = {}
    for cert in valid_certs:
        results[cert.fingerprint] = VerifyResult(VerifyStatus.VALID)
    for cert in invalid_certs:
        results[cert.fingerprint] = VerifyResult(VerifyStatus.SELF_SIGNED)
    return ValidationReport(results=results)


class TestPerScanCounts:
    def test_counts(self):
        good = make_cert(cn="good", key_seed=1)
        bad = make_cert(cn="bad", key_seed=2)
        dataset = make_dataset(
            [
                (DAY0, "umich", [(1, good), (2, bad)]),
                (DAY0 + 7, "umich", [(2, bad)]),
            ]
        )
        counts = per_scan_counts(dataset, report_for([good], [bad]))
        assert counts[0].n_valid == 1 and counts[0].n_invalid == 1
        assert counts[1].n_valid == 0 and counts[1].n_invalid == 1
        assert counts[0].invalid_fraction == 0.5
        assert counts[1].invalid_fraction == 1.0

    def test_summary(self):
        good = make_cert(cn="good", key_seed=1)
        bad = make_cert(cn="bad", key_seed=2)
        dataset = make_dataset(
            [
                (DAY0, "umich", [(1, good), (2, bad)]),
                (DAY0 + 7, "umich", [(2, bad)]),
            ]
        )
        low, mean, high = invalid_fraction_summary(
            per_scan_counts(dataset, report_for([good], [bad]))
        )
        assert (low, mean, high) == (0.5, 0.75, 1.0)


class TestScanDiscrepancy:
    def test_unique_fractions_per_slash8(self):
        cert = make_cert()
        # /8 network 1: host 0x01000001 in both, 0x01000002 only umich.
        # /8 network 2: one host only in rapid7.
        dataset = make_dataset(
            [
                (DAY0, "umich", [(0x01000001, cert), (0x01000002, cert)]),
                (DAY0, "rapid7", [(0x01000001, cert), (0x02000001, cert)]),
            ]
        )
        rows = scan_discrepancy(dataset, DAY0)
        by_network = {row.network: row for row in rows}
        assert by_network[1].unique_to_a_fraction == 0.5
        assert by_network[1].unique_to_b_fraction == 0.0
        assert by_network[2].unique_to_b_fraction == 1.0

    def test_requires_both_sources(self):
        cert = make_cert()
        dataset = make_dataset([(DAY0, "umich", [(1, cert)])])
        with pytest.raises(ValueError):
            scan_discrepancy(dataset, DAY0)


class TestBlacklistAttribution:
    def test_persistent_blind_spot_explains_discrepancy(self, tiny_synthetic):
        dataset = tiny_synthetic.scans
        umich_days = {s.day for s in dataset.scans_from("umich")}
        rapid7_days = {s.day for s in dataset.scans_from("rapid7")}
        if not umich_days & rapid7_days:
            pytest.skip("no overlap day at this scale")
        table = tiny_synthetic.world.routing.table_at(0)
        attribution = blacklist_attribution(
            dataset,
            lambda ip: (table.lookup(ip).prefix if table.lookup(ip) else None),
        )
        # Rapid7's bigger blacklist → more prefixes always missing from it.
        assert (
            attribution.prefixes_always_missing_from_b
            >= attribution.prefixes_always_missing_from_a
        )
        # A meaningful share of the one-sided hosts is explained by the
        # persistent blind spots (paper: 74.0 % and 62.6 %).
        assert attribution.fraction_explained_a > 0.2

    def test_no_overlap_rejected(self):
        cert = make_cert()
        dataset = make_dataset(
            [(DAY0, "umich", [(1, cert)]), (DAY0 + 1, "rapid7", [(1, cert)])]
        )
        with pytest.raises(ValueError):
            blacklist_attribution(dataset, lambda ip: None)
