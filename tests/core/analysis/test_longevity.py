"""Tests for §5.1 longevity analyses (Figures 3, 4, 5)."""

import pytest

from repro.core.analysis.longevity import (
    ephemeral_fingerprints,
    lifetimes,
    reissue_gap,
    validity_periods,
)

from ..helpers import DAY0, make_cert, make_dataset


def build_population():
    short = make_cert(cn="valid-ish", key_seed=1, days=398)
    long_lived = make_cert(cn="router", key_seed=2, days=7300)
    negative = make_cert(cn="broken", key_seed=3, days=-365)
    dataset = make_dataset(
        [
            (DAY0, [(1, short), (2, long_lived), (3, negative)]),
            (DAY0 + 7, [(1, short)]),
        ]
    )
    return dataset, (short, long_lived, negative)


class TestValidityPeriods:
    def test_cdf_values(self):
        dataset, certs = build_population()
        cdf = validity_periods(dataset, [c.fingerprint for c in certs])
        assert sorted(cdf.values) == [-365, 398, 7300]

    def test_negative_fraction_visible(self):
        dataset, certs = build_population()
        cdf = validity_periods(dataset, [c.fingerprint for c in certs])
        # Figure 3's non-zero start: the CDF at zero equals the negative share.
        assert cdf.at(0) == pytest.approx(1 / 3)


class TestLifetimes:
    def test_single_scan_is_one_day(self):
        dataset, certs = build_population()
        summary = lifetimes(dataset, [c.fingerprint for c in certs])
        # long_lived and negative each seen once → 1 day; short seen twice
        # a week apart → 8 days (§5.1's inclusive definition).
        assert sorted(summary.cdf.values) == [1, 1, 8]
        assert summary.single_scan_fraction == pytest.approx(2 / 3)

    def test_ephemeral_selection(self):
        dataset, certs = build_population()
        ephemerals = ephemeral_fingerprints(
            dataset, [c.fingerprint for c in certs]
        )
        assert certs[0].fingerprint not in ephemerals
        assert len(ephemerals) == 2


class TestReissueGap:
    def test_gap_modes(self):
        fresh = make_cert(cn="fresh", key_seed=1, nb=DAY0 - 1)       # 1 day
        same_day = make_cert(cn="today", key_seed=2, nb=DAY0)        # 0 days
        firmware = make_cert(cn="old", key_seed=3, nb=DAY0 - 2000)   # >1000
        clock_ahead = make_cert(cn="future", key_seed=4, nb=DAY0 + 5)
        dataset = make_dataset(
            [(DAY0, [(1, fresh), (2, same_day), (3, firmware), (4, clock_ahead)])]
        )
        fps = [c.fingerprint for c in (fresh, same_day, firmware, clock_ahead)]
        gap = reissue_gap(dataset, fps)
        assert gap.same_day_fraction == 0.25
        assert gap.within_four_days_fraction == 0.5
        assert gap.over_1000_days_fraction == 0.25
        assert gap.negative_fraction == 0.25

    def test_empty_population_rejected(self):
        dataset, _ = build_population()
        with pytest.raises(ValueError):
            reissue_gap(dataset, [])


class TestPaperShapes:
    """Figures 3–5 on the tiny synthetic corpus."""

    def test_invalid_validity_much_longer_than_valid(self, tiny_synthetic, tiny_study):
        dataset = tiny_synthetic.scans
        invalid_cdf = validity_periods(dataset, tiny_study.invalid)
        valid_cdf = validity_periods(dataset, tiny_study.valid)
        # Paper: valid median 1.1y, invalid median 20y.
        assert valid_cdf.median < 800
        assert invalid_cdf.median > 5000

    def test_some_invalid_validity_negative(self, tiny_synthetic, tiny_study):
        cdf = validity_periods(tiny_synthetic.scans, tiny_study.invalid)
        assert 0.0 < cdf.at(0) < 0.20    # paper: 5.38 %

    def test_invalid_lifetimes_shorter(self, tiny_synthetic, tiny_study):
        dataset = tiny_synthetic.scans
        invalid = lifetimes(dataset, tiny_study.invalid)
        valid = lifetimes(dataset, tiny_study.valid)
        assert invalid.median_days < valid.median_days
        assert invalid.single_scan_fraction > 0.3

    def test_reissue_gap_bimodal(self, tiny_synthetic, tiny_study):
        dataset = tiny_synthetic.scans
        ephemerals = ephemeral_fingerprints(dataset, tiny_study.invalid)
        gap = reissue_gap(dataset, ephemerals)
        # Figure 5: most gaps are tiny, a solid tail exceeds 1000 days.
        assert gap.within_four_days_fraction > 0.4
        assert gap.over_1000_days_fraction > 0.05
