"""Tests for §5.4 host-diversity analyses (Figures 7-8, Tables 2-4)."""

import pytest

from repro.core.analysis.hosts import (
    as_diversity,
    as_type_breakdown,
    classify_issuer_device_type,
    device_type_breakdown,
    ip_diversity,
    top_hosting_ases,
)
from repro.net.asn import ASInfo, ASRegistry, ASType, OrgRecord

from ..helpers import DAY0, make_cert, make_dataset


def build_population():
    single = make_cert(cn="single", key_seed=1)
    replicated = make_cert(cn="cdn", key_seed=2)
    dataset = make_dataset(
        [
            (DAY0, [(1, single), (10, replicated), (11, replicated), (12, replicated)]),
            (DAY0 + 7, [(1, single), (10, replicated)]),
        ]
    )
    return dataset, single, replicated


def registry():
    return ASRegistry.from_infos(
        [
            ASInfo(10, "Access ISP", ASType.TRANSIT_ACCESS, [OrgRecord(0, "A", "USA")]),
            ASInfo(20, "Hosting Co", ASType.CONTENT, [OrgRecord(0, "H", "DEU")]),
        ]
    )


class TestIPDiversity:
    def test_mean_ips(self):
        dataset, single, replicated = build_population()
        result = ip_diversity(dataset, [single.fingerprint, replicated.fingerprint])
        # single: 1 IP both scans; replicated: (3 + 1) / 2 = 2.
        assert sorted(result.cdf.values) == [1.0, 2.0]
        assert result.max_mean_ips == 2.0


class TestASDiversity:
    def test_counts(self):
        dataset, single, replicated = build_population()
        as_of = lambda ip, day: 10 if ip < 10 else 20
        result = as_diversity(
            dataset, [single.fingerprint, replicated.fingerprint], as_of
        )
        assert sorted(result.ases_per_cert_cdf.values) == [1, 1]
        assert result.largest_as_share == 0.5
        assert result.n_ases == 2

    def test_concentration(self):
        dataset, single, replicated = build_population()
        as_of = lambda ip, day: 10  # everything one AS
        result = as_diversity(
            dataset, [single.fingerprint, replicated.fingerprint], as_of
        )
        assert result.largest_as_share == 1.0
        assert result.ases_for_70pct == 1


class TestASTypeBreakdown:
    def test_attribution(self):
        dataset, single, replicated = build_population()
        as_of = lambda ip, day: 10 if ip < 10 else 20
        breakdown = as_type_breakdown(
            dataset,
            [single.fingerprint, replicated.fingerprint],
            as_of,
            registry(),
        )
        assert breakdown[ASType.TRANSIT_ACCESS] == 0.5
        assert breakdown[ASType.CONTENT] == 0.5

    def test_unknown_as(self):
        dataset, single, _ = build_population()
        breakdown = as_type_breakdown(
            dataset, [single.fingerprint], lambda ip, day: None, registry()
        )
        assert breakdown[ASType.UNKNOWN] == 1.0


class TestTopHostingASes:
    def test_rows(self):
        dataset, single, replicated = build_population()
        as_of = lambda ip, day: 10 if ip < 10 else 20
        rows = top_hosting_ases(
            dataset,
            [single.fingerprint, replicated.fingerprint],
            as_of,
            registry(),
            n=2,
        )
        assert {row[0] for row in rows} == {10, 20}
        names = {row[0]: row[1] for row in rows}
        assert names[20] == "Hosting Co"
        countries = {row[0]: row[2] for row in rows}
        assert countries[20] == "DEU"


class TestDeviceTypeClassification:
    @pytest.mark.parametrize(
        "issuer,expected",
        [
            ("www.lancom-systems.de", "Home router/cable modem"),
            ("192.168.1.1", "Home router/cable modem"),
            ("remotewd.com", "Remote storage"),
            ("VMware", "Remote administration"),
            ("enterprise-gateway-site-3 CA", "VPN"),
            ("fw-0001.corp.internal", "Firewall"),
            ("IP Camera", "IP camera"),
            ("", "Unknown"),
            (None, "Unknown"),
            ("PlayBook: AA:BB:CC", "Unknown"),
        ],
    )
    def test_rules(self, issuer, expected):
        assert classify_issuer_device_type(issuer) == expected

    def test_breakdown_over_top_issuers(self):
        certs = (
            [make_cert(cn=f"l{i}", key_seed=i, issuer_cn="www.lancom-systems.de")
             for i in range(4)]
            + [make_cert(cn=f"w{i}", key_seed=10 + i, issuer_cn="remotewd.com")
               for i in range(2)]
        )
        dataset = make_dataset([(DAY0, [(i, c) for i, c in enumerate(certs)])])
        breakdown = device_type_breakdown(
            dataset, [c.fingerprint for c in certs], top_n_issuers=2
        )
        assert breakdown["Home router/cable modem"] == pytest.approx(4 / 6)
        assert breakdown["Remote storage"] == pytest.approx(2 / 6)


class TestPaperShapes:
    def test_invalid_served_by_fewer_hosts(self, tiny_synthetic, tiny_study):
        dataset = tiny_synthetic.scans
        invalid = ip_diversity(dataset, tiny_study.invalid)
        valid = ip_diversity(dataset, tiny_study.valid)
        # Figure 7: invalid overwhelmingly single-host (p99 ≈ 2 in the
        # paper; the shared-cert CPE batches stretch ours slightly), while
        # valid certificates reach far larger replication.
        assert invalid.cdf.median == 1.0
        assert invalid.p99 <= 5.0
        assert valid.max_mean_ips > invalid.max_mean_ips

    def test_invalid_mostly_transit_access(self, tiny_synthetic, tiny_study):
        # Table 2: 94.1 % of invalid certificates from transit/access ASes.
        world = tiny_synthetic.world
        breakdown = as_type_breakdown(
            tiny_synthetic.scans,
            tiny_study.invalid,
            world.routing.origin_as,
            world.registry,
        )
        assert breakdown[ASType.TRANSIT_ACCESS] > 0.75
        # Valid certificates come heavily from content networks.
        valid_breakdown = as_type_breakdown(
            tiny_synthetic.scans,
            tiny_study.valid,
            world.routing.origin_as,
            world.registry,
        )
        assert valid_breakdown[ASType.CONTENT] > breakdown[ASType.CONTENT]

    def test_table4_dominated_by_home_routers(self, tiny_synthetic, tiny_study):
        breakdown = device_type_breakdown(
            tiny_synthetic.scans, tiny_study.invalid, top_n_issuers=50
        )
        # Table 4: home routers/cable modems are the largest class.
        top_class = max(breakdown, key=breakdown.get)
        assert top_class in ("Home router/cable modem", "Unknown")
        assert breakdown.get("Home router/cable modem", 0) > 0.2
