"""Tests for valid-side reissue mining and incident forensics."""

import pytest

from repro.core.analysis.reissues import incident_window, valid_reissues

from ..helpers import DAY0, make_cert, make_dataset, make_keypair


def build_chain(cn, days, same_key_pairs=()):
    """Certificates for one CN first-seen on the given days."""
    certs = []
    shared = make_keypair(hash(cn) % 1000)
    for index, day in enumerate(days):
        if index in same_key_pairs:
            cert = make_cert(cn=cn, keypair=shared, nb=day)
        else:
            cert = make_cert(cn=cn, key_seed=hash((cn, index)) % 10**6, nb=day)
        certs.append((day, cert))
    return certs


class TestValidReissues:
    def test_chain_detection(self):
        chain = build_chain("site.example", [DAY0, DAY0 + 100, DAY0 + 200])
        dataset = make_dataset([(day, [(1, cert)]) for day, cert in chain])
        fps = [cert.fingerprint for _, cert in chain]
        reissues = valid_reissues(dataset, fps)
        assert len(reissues) == 2
        assert reissues[0].predecessor_age_days == 100
        assert all(r.common_name == "site.example" for r in reissues)

    def test_key_retention_flag(self):
        keypair = make_keypair(7)
        old = make_cert(cn="keep.example", keypair=keypair, nb=DAY0)
        new = make_cert(cn="keep.example", keypair=keypair, nb=DAY0 + 90)
        rekeyed = make_cert(cn="keep.example", key_seed=42, nb=DAY0 + 180)
        dataset = make_dataset(
            [(DAY0, [(1, old)]), (DAY0 + 90, [(1, new)]), (DAY0 + 180, [(1, rekeyed)])]
        )
        reissues = valid_reissues(
            dataset, [old.fingerprint, new.fingerprint, rekeyed.fingerprint]
        )
        assert [r.same_key for r in reissues] == [True, False]

    def test_single_cert_chains_ignored(self):
        cert = make_cert(cn="solo.example")
        dataset = make_dataset([(DAY0, [(1, cert)])])
        assert valid_reissues(dataset, [cert.fingerprint]) == []

    def test_cn_less_certs_ignored(self):
        from repro.x509.builder import CertificateBuilder
        from repro.x509.name import Name

        blank = (
            CertificateBuilder()
            .subject(Name.empty())
            .validity(DAY0, DAY0 + 100)
            .self_sign(rng=__import__("random").Random(1))
        )
        dataset = make_dataset([(DAY0, [(1, blank)])])
        assert valid_reissues(dataset, [blank.fingerprint]) == []


class TestIncidentWindow:
    def build_reissues(self):
        # Baseline: one reissue every 100 days across 10 sites; event: a
        # burst of rekeyed reissues right after day DAY0+500.
        scans = {}
        certs = []
        for site in range(10):
            chain = build_chain(
                f"s{site}.example",
                [DAY0, DAY0 + 300, DAY0 + 505 + site, DAY0 + 800],
            )
            for day, cert in chain:
                scans.setdefault(day, []).append((site + 1, cert))
                certs.append(cert)
        dataset = make_dataset(sorted(scans.items()))
        return valid_reissues(dataset, [c.fingerprint for c in certs])

    def test_spike_detection(self):
        reissues = self.build_reissues()
        window = incident_window(
            reissues, DAY0 + 500, window_days=30,
            first_day=DAY0, last_day=DAY0 + 800,
        )
        assert window.reissues_in_window == 10
        assert window.spike_factor > 3.0

    def test_quiet_window(self):
        reissues = self.build_reissues()
        window = incident_window(
            reissues, DAY0 + 100, window_days=30,
            first_day=DAY0, last_day=DAY0 + 800,
        )
        assert window.reissues_in_window == 0
        assert window.spike_factor == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            incident_window([], DAY0)


class TestHeartbleedWorld:
    def test_vulnerable_sites_reissue_out_of_schedule(self):
        from repro.internet.websites import CAHierarchy, Website

        hierarchy = CAHierarchy(1, epoch_day=5000)
        site = Website(
            website_id=1, domain="hb.example", ca=hierarchy.intermediates[0],
            world_seed=1, active_from=5000, active_until=6000,
            host_ips=[9], asn=26496,
            heartbleed_day=5400, vulnerable=True,
        )
        assert site.emergency_day is not None
        before = site.certificate_on(site.emergency_day - 1)
        after = site.certificate_on(site.emergency_day)
        assert before.fingerprint != after.fingerprint
        assert after.not_before >= site.emergency_day - 1

    def test_invulnerable_sites_unaffected(self):
        from repro.internet.websites import CAHierarchy, Website

        hierarchy = CAHierarchy(1, epoch_day=5000)
        site = Website(
            website_id=2, domain="ok.example", ca=hierarchy.intermediates[0],
            world_seed=1, active_from=5000, active_until=6000,
            host_ips=[9], asn=26496,
            heartbleed_day=5400, vulnerable=False,
        )
        assert site.emergency_day is None

    def test_emergency_reissues_mostly_rekey(self):
        from repro.internet.websites import CAHierarchy, Website

        hierarchy = CAHierarchy(1, epoch_day=5000)
        kept = total = 0
        for website_id in range(60):
            site = Website(
                website_id=website_id, domain=f"v{website_id}.example",
                ca=hierarchy.intermediates[0], world_seed=1,
                active_from=5000, active_until=6000, host_ips=[9], asn=26496,
                heartbleed_day=5400, vulnerable=True,
            )
            before = site.certificate_on(site.emergency_day - 1)
            after = site.certificate_on(site.emergency_day)
            total += 1
            if before.public_key == after.public_key:
                kept += 1
        # 4.1% expected retention: a 60-site sample should be far below half.
        assert kept / total < 0.2
