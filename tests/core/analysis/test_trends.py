"""Tests for the §5.4 growth-trend analysis."""

import pytest

from repro.core.analysis.scans import ScanCount, per_scan_counts
from repro.core.analysis.trends import fit_growth, growth_comparison


def counts_from(series):
    """[(day, valid, invalid), ...] → ScanCounts."""
    return [
        ScanCount(day=day, source="test", n_valid=valid, n_invalid=invalid)
        for day, valid, invalid in series
    ]


class TestFitGrowth:
    def test_perfect_linear_fit(self):
        counts = counts_from([(0, 10, 100), (100, 10, 200), (200, 10, 300)])
        fit = fit_growth(counts, "invalid")
        assert fit.slope_per_day == pytest.approx(1.0)
        assert fit.intercept == pytest.approx(100.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(300) == pytest.approx(400.0)

    def test_slope_per_year(self):
        counts = counts_from([(0, 0, 0), (365, 0, 365)])
        fit = fit_growth(counts, "invalid")
        assert fit.slope_per_year == pytest.approx(365.0)

    def test_flat_population(self):
        counts = counts_from([(0, 50, 7), (100, 50, 7), (200, 50, 7)])
        fit = fit_growth(counts, "valid")
        assert fit.slope_per_day == pytest.approx(0.0)
        assert fit.doubling_days() == float("inf")

    def test_doubling_days(self):
        counts = counts_from([(0, 0, 100), (100, 0, 200)])
        fit = fit_growth(counts, "invalid")
        # At day 100 the level is 200, growing 1/day → 200 days to double.
        assert fit.doubling_days() == pytest.approx(200.0)

    def test_requires_two_scans(self):
        with pytest.raises(ValueError):
            fit_growth(counts_from([(0, 1, 1)]))

    def test_unknown_population(self):
        with pytest.raises(ValueError):
            fit_growth(counts_from([(0, 1, 1), (1, 1, 1)]), "revoked")


class TestGrowthComparison:
    def test_invalid_grows_faster(self):
        counts = counts_from([(0, 100, 100), (100, 110, 200), (200, 120, 300)])
        comparison = growth_comparison(counts)
        assert comparison.invalid_grows_faster
        assert comparison.invalid.slope_per_day > comparison.valid.slope_per_day

    def test_share_extrapolation(self):
        counts = counts_from([(0, 100, 100), (100, 100, 300)])
        comparison = growth_comparison(counts)
        # Share keeps rising into the future.
        now = comparison.invalid_share_at(100)
        later = comparison.invalid_share_at(1000)
        assert later > now > 0.5

    def test_synthetic_corpus_shows_iot_growth(self, tiny_synthetic, tiny_study):
        # §5.4's forecast on the simulated corpus: invalid counts rise
        # faster than valid ones.
        counts = per_scan_counts(tiny_synthetic.scans, tiny_study.validation())
        comparison = growth_comparison(counts)
        assert comparison.invalid_grows_faster
        assert comparison.invalid.slope_per_year > 0
