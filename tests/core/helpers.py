"""Hand-built certificates and scan corpora for core-pipeline tests.

These helpers let tests construct exactly the observation patterns the
paper's figures describe (e.g. Figure 9's PK1/PK2/PK3 timeline) without
going through the world simulator.
"""

import random

from repro.seeding import stable_rng
from repro.scanner.dataset import ScanDataset
from repro.scanner.records import Observation, Scan
from repro.x509.builder import CertificateBuilder
from repro.x509.keys import generate_keypair
from repro.x509.name import Name

DAY0 = 5000


def make_keypair(seed):
    return generate_keypair(random.Random(seed), 128)


def make_cert(
    cn="device.local",
    key_seed=1,
    serial=None,
    nb=DAY0 - 100,
    days=7300,
    nb_secs=None,
    issuer_cn=None,
    sans=(),
    crl=(),
    keypair=None,
):
    """One self-signed certificate with the given linkable features.

    ``nb_secs`` defaults to a per-(cn, key_seed) pseudo-random value so two
    test certificates never share a Not Before stamp by accident; pass an
    explicit value to create deliberate collisions.
    """
    keypair = keypair or make_keypair(key_seed)
    if nb_secs is None:
        nb_secs = stable_rng("nb-secs", cn, key_seed).randrange(86400)
    builder = (
        CertificateBuilder()
        .subject(Name.common_name(cn))
        .serial(serial if serial is not None else stable_rng(cn, nb, key_seed).getrandbits(48))
        .validity(nb, nb + days, not_before_secs=nb_secs, not_after_secs=nb_secs)
        .keypair(keypair)
    )
    if issuer_cn is not None:
        builder.issuer(Name.common_name(issuer_cn))
    if sans:
        builder.subject_alt_names(list(sans))
    if crl:
        builder.crl_uris(list(crl))
    return builder.self_sign()


def make_dataset(scan_specs):
    """Build a ScanDataset from [(day, [(ip, cert), ...]), ...].

    Scan sources default to 'test'; pass (day, source, observations) for
    multi-campaign corpora.
    """
    scans = []
    certificates = {}
    for spec in scan_specs:
        if len(spec) == 3:
            day, source, rows = spec
        else:
            day, rows = spec
            source = "test"
        observations = []
        for ip, cert in rows:
            certificates[cert.fingerprint] = cert
            observations.append(Observation(ip=ip, fingerprint=cert.fingerprint))
        scans.append(Scan(day=day, source=source, observations=observations))
    return ScanDataset(scans, certificates)
