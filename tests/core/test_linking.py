"""Tests for §6.3.2 linking, including the Figure 9 reconstruction."""

from hypothesis import given, strategies as st

from repro.core.features import Feature
from repro.core.linking import _max_pairwise_overlap, link_on_feature

from .helpers import DAY0, make_cert, make_dataset, make_keypair


def link(dataset, feature=Feature.PUBLIC_KEY, **kwargs):
    fps = set()
    for scan in dataset.scans:
        fps |= scan.fingerprints()
    return link_on_feature(dataset, fps, feature, **kwargs)


class TestOverlapHelper:
    def test_disjoint(self):
        assert _max_pairwise_overlap([(0, 1), (2, 3)]) == 0

    def test_touching_one_scan(self):
        assert _max_pairwise_overlap([(0, 2), (2, 4)]) == 1

    def test_two_scan_overlap(self):
        assert _max_pairwise_overlap([(0, 3), (2, 4)]) == 2

    def test_containment(self):
        assert _max_pairwise_overlap([(0, 10), (3, 5)]) == 3

    def test_worst_pair_not_adjacent_in_start_order(self):
        # The worst pair is (0, 9) vs (5, 6) — overlap 2 — even though
        # (4, 4) sits between them in start order.
        assert _max_pairwise_overlap([(0, 9), (4, 4), (5, 6)]) == 2

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=0, max_value=30),
            ).map(lambda pair: (min(pair), max(pair))),
            min_size=2,
            max_size=8,
        )
    )
    def test_matches_brute_force(self, intervals):
        brute = max(
            min(e1, e2) - max(s1, s2) + 1
            for i, (s1, e1) in enumerate(intervals)
            for (s2, e2) in intervals[i + 1:]
        )
        assert _max_pairwise_overlap(intervals) == max(0, brute)


class TestFigure9:
    """The paper's worked example: PK1 and PK2 link, PK3 does not."""

    def build(self):
        pk1 = make_keypair(1)
        pk2 = make_keypair(2)
        pk3 = make_keypair(3)
        cert = lambda name, kp: make_cert(cn=name, keypair=kp)
        c1, c2 = cert("cert1", pk1), cert("cert2", pk1)
        c3, c4, c5 = cert("cert3", pk2), cert("cert4", pk2), cert("cert5", pk2)
        c6, c7, c8 = cert("cert6", pk3), cert("cert7", pk3), cert("cert8", pk3)
        scans = [
            (DAY0, [(1, c1), (3, c3), (5, c6)]),
            (DAY0 + 7, [(1, c2), (3, c3), (2, c4), (5, c6), (6, c7)]),
            (DAY0 + 14, [(2, c4), (5, c7)]),  # PK3: cert6/cert7 overlap 2 scans
            (DAY0 + 21, [(1, c2), (3, c5), (6, c8)]),
        ]
        # Adjust: cert6 must also appear in scan 3 to overlap cert7 twice.
        scans[2] = (DAY0 + 14, [(2, c4), (5, c7), (4, c6)])
        return make_dataset(scans), (c1, c2, c3, c4, c5, c6, c7, c8)

    def test_pk1_links(self):
        dataset, certs = self.build()
        result = link(dataset)
        groups = {g.value: set(g.fingerprints) for g in result.groups}
        c1, c2 = certs[0], certs[1]
        assert {c1.fingerprint, c2.fingerprint} in groups.values()

    def test_pk2_links_despite_single_scan_overlap(self):
        # cert3 and cert4 overlap on exactly one scan (the mid-scan IP
        # change) — still linkable.
        dataset, certs = self.build()
        result = link(dataset)
        linked = result.linked_fingerprints
        for cert in certs[2:5]:
            assert cert.fingerprint in linked

    def test_pk3_rejected_for_two_scan_overlap(self):
        dataset, certs = self.build()
        result = link(dataset)
        linked = result.linked_fingerprints
        for cert in certs[5:8]:
            assert cert.fingerprint not in linked
        assert result.rejected_values >= 1


class TestLinkMechanics:
    def test_singletons_not_grouped(self):
        a = make_cert(cn="a", key_seed=1)
        b = make_cert(cn="b", key_seed=2)
        dataset = make_dataset([(DAY0, [(1, a), (2, b)])])
        result = link(dataset)
        assert result.groups == []
        assert result.singleton_values == 2

    def test_common_name_links(self):
        a = make_cert(cn="WD2GO 293822", key_seed=1, nb=DAY0 - 10)
        b = make_cert(cn="WD2GO 293822", key_seed=2, nb=DAY0 + 5)
        dataset = make_dataset([(DAY0, [(1, a)]), (DAY0 + 7, [(1, b)])])
        result = link(dataset, Feature.COMMON_NAME)
        assert result.total_linked == 2

    def test_ip_literal_common_names_not_linked(self):
        # §6.4.1: IP-address Common Names are excluded from CN linking.
        a = make_cert(cn="192.168.1.1", key_seed=1)
        b = make_cert(cn="192.168.1.1", key_seed=2)
        dataset = make_dataset([(DAY0, [(1, a)]), (DAY0 + 7, [(1, b)])])
        result = link(dataset, Feature.COMMON_NAME)
        assert result.total_linked == 0

    def test_overlap_allowance_parameter(self):
        keypair = make_keypair(9)
        a = make_cert(cn="a", keypair=keypair)
        b = make_cert(cn="b", keypair=keypair)
        dataset = make_dataset(
            [
                (DAY0, [(1, a)]),
                (DAY0 + 7, [(1, a), (2, b)]),
                (DAY0 + 14, [(1, a), (2, b)]),  # two overlapping scans
            ]
        )
        strict = link(dataset, overlap_allowance=1)
        loose = link(dataset, overlap_allowance=2)
        assert strict.total_linked == 0
        assert loose.total_linked == 2

    def test_crl_linking(self):
        a = make_cert(cn="a", key_seed=1, crl=["http://crl.x/1.crl"], nb=DAY0 - 9)
        b = make_cert(cn="b", key_seed=2, crl=["http://crl.x/1.crl"], nb=DAY0 + 5)
        dataset = make_dataset([(DAY0, [(1, a)]), (DAY0 + 7, [(1, b)])])
        result = link(dataset, Feature.CRL)
        assert result.total_linked == 2

    def test_not_before_links_same_stamp(self):
        a = make_cert(cn="a", key_seed=1, nb=DAY0 - 50, nb_secs=1234)
        b = make_cert(cn="b", key_seed=2, nb=DAY0 - 50, nb_secs=1234)
        c = make_cert(cn="c", key_seed=3, nb=DAY0 - 50, nb_secs=9999)
        dataset = make_dataset([(DAY0, [(1, a)]), (DAY0 + 7, [(2, b), (3, c)])])
        result = link(dataset, Feature.NOT_BEFORE)
        assert result.total_linked == 2
        assert c.fingerprint not in result.linked_fingerprints
