"""Tests for the §6.2 scan-duplicate rule."""

from repro.core.dedup import classify_unique_certificates

from .helpers import DAY0, make_cert, make_dataset


def classify(dataset, **kwargs):
    fps = set()
    for scan in dataset.scans:
        fps |= scan.fingerprints()
    return classify_unique_certificates(dataset, fps, **kwargs)


class TestUniquenessRule:
    def test_single_ip_is_unique(self):
        cert = make_cert()
        dataset = make_dataset([(DAY0, [(100, cert)]), (DAY0 + 7, [(100, cert)])])
        result = classify(dataset)
        assert cert.fingerprint in result.unique

    def test_two_ips_once_is_unique(self):
        # A mid-scan mover: two addresses in one scan, one in the next.
        cert = make_cert()
        dataset = make_dataset(
            [(DAY0, [(100, cert), (200, cert)]), (DAY0 + 7, [(300, cert)])]
        )
        result = classify(dataset)
        assert cert.fingerprint in result.unique

    def test_three_ips_in_any_scan_is_non_unique(self):
        cert = make_cert()
        dataset = make_dataset(
            [
                (DAY0, [(100, cert), (200, cert), (300, cert)]),
                (DAY0 + 7, [(100, cert)]),
            ]
        )
        result = classify(dataset)
        assert cert.fingerprint in result.non_unique

    def test_exactly_two_ips_every_scan_is_non_unique(self):
        # §6.2's exception: probe order re-randomizes, so a constant two
        # addresses means two devices, not one mover.
        cert = make_cert()
        dataset = make_dataset(
            [
                (DAY0, [(100, cert), (200, cert)]),
                (DAY0 + 7, [(100, cert), (200, cert)]),
                (DAY0 + 14, [(100, cert), (200, cert)]),
            ]
        )
        result = classify(dataset)
        assert cert.fingerprint in result.non_unique

    def test_two_ips_in_single_scan_dataset_is_unique(self):
        # With only one scan there is no every-scan evidence; keep it.
        cert = make_cert()
        dataset = make_dataset([(DAY0, [(100, cert), (200, cert)])])
        result = classify(dataset)
        assert cert.fingerprint in result.unique

    def test_excluded_fraction(self):
        shared = make_cert(cn="shared", key_seed=1)
        solo = make_cert(cn="solo", key_seed=2)
        dataset = make_dataset(
            [(DAY0, [(1, shared), (2, shared), (3, shared), (9, solo)])]
        )
        result = classify(dataset)
        assert result.excluded_fraction == 0.5

    def test_threshold_parameter(self):
        # The ablation knob: with threshold 3, three addresses pass.
        cert = make_cert()
        dataset = make_dataset(
            [(DAY0, [(100, cert), (200, cert), (300, cert)])]
        )
        strict = classify(dataset, max_ips_per_scan=2)
        loose = classify(dataset, max_ips_per_scan=3)
        assert cert.fingerprint in strict.non_unique
        assert cert.fingerprint in loose.unique

    def test_zero_observations_is_unique(self):
        # Regression: a certificate in the table but never observed used to
        # crash on max([]) — it was never multi-homed, so keep it.
        seen = make_cert(cn="seen", key_seed=1)
        ghost = make_cert(cn="ghost", key_seed=2)
        dataset = make_dataset([(DAY0, [(100, seen)])])
        dataset.certificates[ghost.fingerprint] = ghost
        result = classify_unique_certificates(
            dataset, [seen.fingerprint, ghost.fingerprint]
        )
        assert ghost.fingerprint in result.unique

    def test_threshold_one_disables_exception(self):
        cert = make_cert()
        dataset = make_dataset(
            [(DAY0, [(100, cert)]), (DAY0 + 7, [(100, cert)])]
        )
        result = classify(dataset, max_ips_per_scan=1)
        assert cert.fingerprint in result.unique


class TestGroundTruth:
    def test_simulator_shared_certs_are_caught(self, tiny_synthetic, tiny_study):
        # Every certificate the simulator served from 3+ devices in one
        # scan must land in the non-unique set.  (The converse does not
        # hold: the every-scan-exactly-two exception deliberately
        # sacrifices some single movers, as the paper accepts.)
        dataset = tiny_synthetic.scans
        result = tiny_study.dedup()
        caught = 0
        for fingerprint in tiny_study.invalid:
            max_ips = dataset.max_ips_in_any_scan(fingerprint)
            if max_ips > 2:
                assert fingerprint in result.non_unique
                caught += 1
        assert caught > 0, "simulator produced no shared certificates"

    def test_most_invalid_certs_survive(self, tiny_study):
        # Paper: only 1.6 % of invalid certificates are excluded.
        assert tiny_study.dedup().excluded_fraction < 0.10
