"""Tests for the §6.4.2 case-study mechanics."""

import pytest

from repro.core.casestudies import (
    common_name_domains,
    fritzbox_predicate,
    playbook_predicate,
    split_consistency,
)
from repro.core.features import Feature
from repro.core.linking import link_on_feature

from .helpers import DAY0, make_cert, make_dataset, make_keypair


def flat_as(ip, day):
    return 1


class TestPredicates:
    def test_fritzbox_detected_by_san(self):
        keypair = make_keypair(1)
        fritz = [
            make_cert(cn=f"fritz-{i}", keypair=keypair,
                      sans=("fritz.fonwlan.box",))
            for i in range(2)
        ]
        dataset = make_dataset([(DAY0, [(1, fritz[0])]), (DAY0 + 7, [(1, fritz[1])])])
        result = link_on_feature(
            dataset, [c.fingerprint for c in fritz], Feature.PUBLIC_KEY
        )
        assert fritzbox_predicate(dataset, result.groups[0])

    def test_playbook_detected_by_issuer(self):
        certs = [
            make_cert(cn=f"pb-{i}", key_seed=10 + i, serial=99,
                      issuer_cn="PlayBook: AA:BB:CC:DD:EE:FF")
            for i in range(2)
        ]
        dataset = make_dataset([(DAY0, [(1, certs[0])]), (DAY0 + 7, [(1, certs[1])])])
        result = link_on_feature(
            dataset, [c.fingerprint for c in certs], Feature.ISSUER_SERIAL
        )
        assert result.groups
        assert playbook_predicate(dataset, result.groups[0])

    def test_ordinary_groups_not_flagged(self):
        keypair = make_keypair(2)
        certs = [make_cert(cn=f"plain-{i}", keypair=keypair) for i in range(2)]
        dataset = make_dataset([(DAY0, [(1, certs[0])]), (DAY0 + 7, [(1, certs[1])])])
        result = link_on_feature(
            dataset, [c.fingerprint for c in certs], Feature.PUBLIC_KEY
        )
        assert not fritzbox_predicate(dataset, result.groups[0])
        assert not playbook_predicate(dataset, result.groups[0])


class TestSplitConsistency:
    def test_partition_and_scores(self):
        roaming = make_keypair(3)      # FRITZ-like: moves every scan
        stable = make_keypair(4)
        fritz = [
            make_cert(cn=f"f{i}", keypair=roaming, sans=("fritz.fonwlan.box",))
            for i in range(2)
        ]
        plain = [make_cert(cn=f"p{i}", keypair=stable) for i in range(2)]
        dataset = make_dataset(
            [
                (DAY0, [(10, fritz[0]), (50, plain[0])]),
                (DAY0 + 7, [(20, fritz[1]), (50, plain[1])]),
            ]
        )
        fps = [c.fingerprint for c in fritz + plain]
        result = link_on_feature(dataset, fps, Feature.PUBLIC_KEY)
        split = split_consistency(dataset, result, fritzbox_predicate, flat_as)
        assert split.matching_certificates == 2
        assert split.matching_fraction == 0.5
        assert split.matching_ip == 0.5     # two scans, two addresses
        assert split.rest_ip == 1.0         # stable address
        assert split.matching_as == 1.0

    def test_empty_sides(self):
        keypair = make_keypair(5)
        certs = [make_cert(cn=f"x{i}", keypair=keypair) for i in range(2)]
        dataset = make_dataset([(DAY0, [(1, certs[0])]), (DAY0 + 7, [(1, certs[1])])])
        result = link_on_feature(
            dataset, [c.fingerprint for c in certs], Feature.PUBLIC_KEY
        )
        split = split_consistency(dataset, result, fritzbox_predicate, flat_as)
        assert split.matching_certificates == 0
        assert split.matching_ip == 0.0
        assert split.rest_ip == 1.0


class TestCommonNameDomains:
    def test_breakdown(self):
        wd = [
            make_cert(cn="WD2GO 7", key_seed=20, nb=DAY0 - 30),
            make_cert(cn="WD2GO 7", key_seed=21, nb=DAY0 + 3),
        ]
        myfritz = [
            make_cert(cn="box1.myfritz.net", key_seed=22, nb=DAY0 - 30),
            make_cert(cn="box1.myfritz.net", key_seed=23, nb=DAY0 + 3),
        ]
        dyndns = [
            make_cert(cn="h.dyndns.org", key_seed=24, nb=DAY0 - 30),
            make_cert(cn="h.dyndns.org", key_seed=25, nb=DAY0 + 3),
        ]
        dataset = make_dataset(
            [
                (DAY0, [(1, wd[0]), (2, myfritz[0]), (3, dyndns[0])]),
                (DAY0 + 7, [(1, wd[1]), (2, myfritz[1]), (3, dyndns[1])]),
            ]
        )
        fps = [c.fingerprint for c in wd + myfritz + dyndns]
        result = link_on_feature(dataset, fps, Feature.COMMON_NAME)
        domains = common_name_domains(dataset, result)
        assert domains.linked_certificates == 6
        assert domains.url_formatted == 4          # myfritz + dyndns
        assert domains.url_fraction == pytest.approx(4 / 6)
        assert domains.by_second_level["myfritz.net"] == 2
        assert domains.by_second_level["dyndns.org"] == 2
        assert domains.dyndns_certificates == 2

    def test_empty_result(self):
        cert = make_cert(cn="solo", key_seed=30)
        dataset = make_dataset([(DAY0, [(1, cert)])])
        result = link_on_feature(dataset, [cert.fingerprint], Feature.COMMON_NAME)
        domains = common_name_domains(dataset, result)
        assert domains.linked_certificates == 0
        assert domains.url_fraction == 0.0
