"""Tests for §6.4.1 consistency, including the paper's PK2 worked example."""

from repro.core.consistency import evaluate_link_result, group_consistency
from repro.core.features import Feature
from repro.core.linking import link_on_feature

from .helpers import DAY0, make_cert, make_dataset, make_keypair


def as_lookup_from(table):
    """Build an (ip, day) → asn lookup from {ip: asn}."""
    return lambda ip, day: table.get(ip)


class TestWorkedExample:
    """§6.4.1's PK2 example: IP 0.5, /24 0.75, AS 1.0."""

    def build(self):
        keypair = make_keypair(2)
        c3 = make_cert(cn="cert3", keypair=keypair)
        c4 = make_cert(cn="cert4", keypair=keypair)
        c5 = make_cert(cn="cert5", keypair=keypair)
        # IPs 2 and 3 share a /24; all three share an AS.
        ip1 = 0x0A000001          # 10.0.0.1
        ip2 = 0x0A000101          # 10.0.1.1
        ip3 = 0x0A000102          # 10.0.1.2
        dataset = make_dataset(
            [
                (DAY0, [(ip2, c3)]),
                (DAY0 + 7, [(ip2, c3), (ip3, c4)]),
                (DAY0 + 14, [(ip3, c4)]),
                (DAY0 + 21, [(ip1, c5)]),
            ]
        )
        as_of = as_lookup_from({ip1: 100, ip2: 100, ip3: 100})
        return dataset, (c3, c4, c5), as_of

    def test_ip_level(self):
        dataset, certs, _ = self.build()
        fps = [c.fingerprint for c in certs]
        # Most common IP appears in 2 of the 4 observation scans.
        assert group_consistency(dataset, fps, "ip") == 0.5

    def test_slash24_level(self):
        dataset, certs, _ = self.build()
        fps = [c.fingerprint for c in certs]
        # Most common /24 appears in 3 of the 4 scans.
        assert group_consistency(dataset, fps, "/24") == 0.75

    def test_as_level(self):
        dataset, certs, as_of = self.build()
        fps = [c.fingerprint for c in certs]
        assert group_consistency(dataset, fps, "as", as_of) == 1.0


class TestConsistencyMechanics:
    def test_perfect_ip_consistency(self):
        keypair = make_keypair(4)
        a = make_cert(cn="a", keypair=keypair)
        b = make_cert(cn="b", keypair=keypair)
        dataset = make_dataset([(DAY0, [(7, a)]), (DAY0 + 7, [(7, b)])])
        assert group_consistency(dataset, [a.fingerprint, b.fingerprint], "ip") == 1.0

    def test_zero_scans_gives_zero(self):
        dataset = make_dataset([(DAY0, [])])
        assert group_consistency(dataset, [b"\x00" * 32], "ip") == 0.0

    def test_as_level_requires_lookup(self):
        keypair = make_keypair(5)
        cert = make_cert(cn="x", keypair=keypair)
        dataset = make_dataset([(DAY0, [(1, cert)])])
        try:
            group_consistency(dataset, [cert.fingerprint], "as", None)
        except AssertionError:
            pass
        else:
            raise AssertionError("expected an assertion about the missing lookup")

    def test_unknown_level_rejected(self):
        cert = make_cert()
        dataset = make_dataset([(DAY0, [(1, cert)])])
        try:
            group_consistency(dataset, [cert.fingerprint], "/12")
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError for unknown level")

    def test_slash16_level(self):
        keypair = make_keypair(8)
        a = make_cert(cn="s16-a", keypair=keypair)
        b = make_cert(cn="s16-b", keypair=keypair)
        # 10.0.1.1 and 10.0.200.1 share a /16 but not a /24.
        dataset = make_dataset(
            [(DAY0, [(0x0A000101, a)]), (DAY0 + 7, [(0x0A00C801, b)])]
        )
        fps = [a.fingerprint, b.fingerprint]
        assert group_consistency(dataset, fps, "/24") == 0.5
        assert group_consistency(dataset, fps, "/16") == 1.0

    def test_evaluate_link_result_weights_by_certificates(self):
        stable = make_keypair(6)
        roaming = make_keypair(7)
        # Group A: 2 certs, same IP (consistency 1.0).
        a1 = make_cert(cn="a1", keypair=stable)
        a2 = make_cert(cn="a2", keypair=stable)
        # Group B: 2 certs, different IPs in different ASes (0.5).
        b1 = make_cert(cn="b1", keypair=roaming)
        b2 = make_cert(cn="b2", keypair=roaming)
        dataset = make_dataset(
            [
                (DAY0, [(1, a1), (100, b1)]),
                (DAY0 + 7, [(1, a2), (200, b2)]),
            ]
        )
        fps = {c.fingerprint for c in (a1, a2, b1, b2)}
        result = link_on_feature(dataset, fps, Feature.PUBLIC_KEY)
        as_of = as_lookup_from({1: 10, 100: 20, 200: 30})
        report = evaluate_link_result(dataset, result, as_of)
        assert report.total_linked == 4
        assert report.ip_level == 0.75       # (1.0 * 2 + 0.5 * 2) / 4
        assert report.as_level == 0.75

    def test_empty_result(self):
        cert = make_cert()
        dataset = make_dataset([(DAY0, [(1, cert)])])
        result = link_on_feature(dataset, [cert.fingerprint], Feature.PUBLIC_KEY)
        report = evaluate_link_result(dataset, result, lambda ip, day: 1)
        assert report.total_linked == 0
        assert report.as_level == 0.0
