"""Tests for §7 device tracking: trackability, movement, reassignment."""

import pytest

from repro.core.pipeline import iterative_link
from repro.core.tracking import (
    TrackedDevice,
    analyze_movement,
    build_tracked_devices,
    infer_reassignment_policies,
    trackable_devices,
)
from repro.net.asn import ASInfo, ASRegistry, ASType, OrgRecord

from .helpers import DAY0, make_cert, make_dataset, make_keypair

YEAR = 365


def device_of(key, sightings):
    return TrackedDevice(
        device_key=key,
        fingerprints=(b"\x00" * 32,),
        sightings=tuple(sightings),
    )


class TestTrackedDevice:
    def test_span_and_trackability(self):
        device = device_of("d", [(0, DAY0, 1), (5, DAY0 + 400, 1)])
        assert device.span_days == 401
        assert device.is_trackable()
        short = device_of("s", [(0, DAY0, 1), (1, DAY0 + 100, 1)])
        assert not short.is_trackable()

    def test_as_path_last_sighting_wins(self):
        as_of = lambda ip, day: {1: 10, 2: 20}[ip]
        device = device_of(
            "d", [(0, DAY0, 1), (0, DAY0, 2), (1, DAY0 + 7, 2)]
        )
        path = device.as_path(as_of)
        assert path == [(DAY0, 20), (DAY0 + 7, 20)]

    def test_ip_path(self):
        device = device_of("d", [(0, DAY0, 5), (1, DAY0 + 7, 6)])
        assert device.ip_path() == [(DAY0, 5), (DAY0 + 7, 6)]


class TestBuildTrackedDevices:
    def test_groups_and_singletons(self):
        keypair = make_keypair(1)
        a = make_cert(cn="a", keypair=keypair)
        b = make_cert(cn="b", keypair=keypair)
        lone = make_cert(cn="lone", key_seed=9)
        dataset = make_dataset(
            [(DAY0, [(1, a), (2, lone)]), (DAY0 + 7, [(1, b)])]
        )
        fps = {a.fingerprint, b.fingerprint, lone.fingerprint}
        pipeline = iterative_link(dataset, fps, lambda ip, day: 1)
        devices = build_tracked_devices(dataset, pipeline, fps)
        assert len(devices) == 2
        keys = {device.device_key.split(":")[0] for device in devices}
        assert keys == {"group", "cert"}

    def test_trackable_report(self):
        keypair = make_keypair(1)
        a = make_cert(cn="a", keypair=keypair)
        b = make_cert(cn="b", keypair=keypair)
        dataset = make_dataset(
            [(DAY0, [(1, a)]), (DAY0 + 400, [(1, b)])]
        )
        fps = {a.fingerprint, b.fingerprint}
        pipeline = iterative_link(dataset, fps, lambda ip, day: 1)
        devices = build_tracked_devices(dataset, pipeline, fps)
        report = trackable_devices(dataset, devices, fps)
        # Neither certificate alone spans a year; the linked group does.
        assert report.trackable_without_linking == 0
        assert report.trackable_with_linking == 1


class TestMovement:
    def registry(self):
        return ASRegistry.from_infos(
            [
                ASInfo(10, "A", ASType.TRANSIT_ACCESS,
                       [OrgRecord(0, "OrgA", "USA")]),
                ASInfo(20, "B", ASType.TRANSIT_ACCESS,
                       [OrgRecord(0, "OrgB", "DEU")]),
            ]
        )

    def test_transitions_counted(self):
        as_of = lambda ip, day: 10 if ip < 100 else 20
        devices = [
            device_of("d1", [(0, DAY0, 1), (1, DAY0 + 200, 1), (2, DAY0 + 400, 150)]),
            device_of("d2", [(0, DAY0, 2), (1, DAY0 + 400, 2)]),
        ]
        report = analyze_movement(devices, as_of, self.registry(), bulk_threshold=5)
        assert report.tracked_devices == 2
        assert report.devices_changing_as == 1
        assert report.total_transitions == 1
        assert report.single_change_fraction == 1.0
        assert report.country_moves == 1    # USA → DEU

    def test_bulk_transfer_detection(self):
        as_of = lambda ip, day: 10 if day < DAY0 + 300 else 20
        devices = [
            device_of(f"d{i}", [(0, DAY0, i), (1, DAY0 + 400, i)])
            for i in range(6)
        ]
        report = analyze_movement(devices, as_of, self.registry(), bulk_threshold=5)
        assert len(report.bulk_transfers) == 1
        transfer = report.bulk_transfers[0]
        assert (transfer.from_asn, transfer.to_asn) == (10, 20)
        assert transfer.device_count == 6

    def test_short_lived_devices_ignored(self):
        as_of = lambda ip, day: 10
        devices = [device_of("d", [(0, DAY0, 1), (1, DAY0 + 30, 2)])]
        report = analyze_movement(devices, as_of, self.registry())
        assert report.tracked_devices == 0


class TestReassignment:
    def test_static_fraction(self):
        as_of = lambda ip, day: 10
        static = [
            device_of(f"s{i}", [(0, DAY0, i), (1, DAY0 + 400, i)])
            for i in range(8)
        ]
        dynamic = [
            device_of(f"m{i}", [(0, DAY0, 100 + i), (1, DAY0 + 400, 200 + i)])
            for i in range(2)
        ]
        report = infer_reassignment_policies(
            static + dynamic, as_of, min_devices_per_as=5
        )
        assert report.static_fraction_by_as[10] == 0.8

    def test_highly_dynamic_detection(self):
        as_of = lambda ip, day: 10
        movers = [
            device_of(
                f"m{i}",
                [(s, DAY0 + s * 100, 1000 * i + s) for s in range(5)],
            )
            for i in range(10)
        ]
        report = infer_reassignment_policies(movers, as_of, min_devices_per_as=5)
        assert report.highly_dynamic_ases == (10,)
        assert report.static_fraction_by_as[10] == 0.0

    def test_min_devices_filter(self):
        as_of = lambda ip, day: 10
        devices = [device_of("d", [(0, DAY0, 1), (1, DAY0 + 400, 1)])]
        with pytest.raises(ValueError):
            infer_reassignment_policies(devices, as_of, min_devices_per_as=5)

    def test_cdf_shape(self):
        as_of = lambda ip, day: 10 if day < 0 else 10
        devices = [
            device_of(f"s{i}", [(0, DAY0, i), (1, DAY0 + 400, i)])
            for i in range(12)
        ]
        report = infer_reassignment_policies(devices, as_of, min_devices_per_as=10)
        assert report.cdf.max == 1.0
        assert report.fraction_of_ases_mostly_static() == 1.0


class TestSyntheticTracking:
    def test_linking_increases_trackable_devices(self, tiny_study):
        report = tiny_study.trackable()
        assert report.trackable_with_linking > report.trackable_without_linking

    def test_some_devices_move(self, tiny_study):
        report = tiny_study.movement(bulk_threshold=3)
        assert report.devices_changing_as > 0
        assert report.total_transitions >= report.devices_changing_as

    def test_german_isps_inferred_dynamic(self, tiny_synthetic, tiny_study):
        # Deutsche Telekom (AS3320) forces daily reassignment; the §7.4
        # inference must classify it as having ~no static addresses.
        report = tiny_study.reassignment(min_devices_per_as=3)
        fraction = report.static_fraction_by_as.get(3320)
        if fraction is None:
            pytest.skip("too few tracked devices in AS3320 at tiny scale")
        assert fraction < 0.2

    def test_static_isps_inferred_static(self, tiny_study):
        # Comcast (AS7922) assigns statically.
        report = tiny_study.reassignment(min_devices_per_as=3)
        fraction = report.static_fraction_by_as.get(7922)
        if fraction is None:
            pytest.skip("too few tracked devices in AS7922 at tiny scale")
        assert fraction > 0.8
