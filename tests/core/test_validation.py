"""Tests for the §4.2 validation pipeline."""

import random

from repro.core.validation import validate_dataset
from repro.scanner.records import Observation, Scan
from repro.scanner.dataset import ScanDataset
from repro.x509.builder import CertificateBuilder
from repro.x509.chain import VerifyStatus
from repro.x509.keys import generate_keypair
from repro.x509.name import Name
from repro.x509.truststore import TrustStore

from .helpers import DAY0, make_cert


def build_pki():
    root_pair = generate_keypair(random.Random(1), 128)
    root_name = Name.build(CN="Root", O="RootCo")
    root = (
        CertificateBuilder()
        .subject(root_name).validity(DAY0 - 3650, DAY0 + 3650)
        .keypair(root_pair).ca().self_sign()
    )
    intermediate_pair = generate_keypair(random.Random(2), 128)
    intermediate_name = Name.build(CN="Sub", O="RootCo")
    intermediate = (
        CertificateBuilder()
        .subject(intermediate_name).validity(DAY0 - 1000, DAY0 + 1000)
        .keypair(intermediate_pair).ca()
        .sign_with(root_name, root_pair.private)
    )
    leaf = (
        CertificateBuilder()
        .subject(Name.common_name("good.example"))
        .validity(DAY0, DAY0 + 365)
        .keypair(generate_keypair(random.Random(3), 128))
        .sign_with(intermediate_name, intermediate_pair.private)
    )
    return root, intermediate, leaf


def dataset_of(certs, day=DAY0):
    observations = [
        Observation(ip=index + 1, fingerprint=cert.fingerprint)
        for index, cert in enumerate(certs)
    ]
    return ScanDataset(
        [Scan(day=day, source="test", observations=observations)],
        {cert.fingerprint: cert for cert in certs},
    )


class TestValidateDataset:
    def test_classification(self):
        root, intermediate, leaf = build_pki()
        selfsigned = make_cert(cn="192.168.1.1")
        dataset = dataset_of([leaf, intermediate, selfsigned])
        report = validate_dataset(dataset, TrustStore([root]))
        assert leaf.fingerprint in report.valid
        assert intermediate.fingerprint in report.valid
        assert selfsigned.fingerprint in report.invalid
        assert report.invalid_fraction == 1 / 3

    def test_transvalid_via_pool(self):
        # The leaf validates even though its scan never saw a chain — the
        # intermediate observed elsewhere in the corpus completes it.
        root, intermediate, leaf = build_pki()
        observations_a = [Observation(ip=1, fingerprint=leaf.fingerprint)]
        observations_b = [Observation(ip=2, fingerprint=intermediate.fingerprint)]
        dataset = ScanDataset(
            [
                Scan(day=DAY0, source="a", observations=observations_a),
                Scan(day=DAY0 + 30, source="a", observations=observations_b),
            ],
            {leaf.fingerprint: leaf, intermediate.fingerprint: intermediate},
        )
        report = validate_dataset(dataset, TrustStore([root]))
        assert leaf.fingerprint in report.valid

    def test_reason_breakdown(self):
        root, _, _ = build_pki()
        selfsigned = make_cert(cn="device-a", key_seed=5)
        other_pair = generate_keypair(random.Random(9), 128)
        untrusted_issuer = (
            CertificateBuilder()
            .subject(Name.common_name("corp.internal"))
            .validity(DAY0, DAY0 + 100)
            .keypair(generate_keypair(random.Random(10), 128))
            .sign_with(Name.common_name("Corp CA"), other_pair.private)
        )
        dataset = dataset_of([selfsigned, untrusted_issuer])
        report = validate_dataset(dataset, TrustStore([root]))
        breakdown = report.reason_breakdown()
        assert breakdown[VerifyStatus.SELF_SIGNED] == 0.5
        assert breakdown[VerifyStatus.UNTRUSTED_ISSUER] == 0.5

    def test_is_invalid_predicate(self):
        root, intermediate, leaf = build_pki()
        selfsigned = make_cert()
        dataset = dataset_of([leaf, intermediate, selfsigned])
        report = validate_dataset(dataset, TrustStore([root]))
        assert report.is_invalid(selfsigned.fingerprint)
        assert not report.is_invalid(leaf.fingerprint)

    def test_status_of(self):
        root, _, _ = build_pki()
        selfsigned = make_cert()
        dataset = dataset_of([selfsigned])
        report = validate_dataset(dataset, TrustStore([root]))
        assert report.status_of(selfsigned.fingerprint) is VerifyStatus.SELF_SIGNED


class TestSyntheticValidation:
    def test_invalid_fraction_in_paper_band(self, tiny_study):
        # Paper: 87.9 % of the corpus is invalid; per-scan 59.6–73.7 %.
        fraction = tiny_study.validation().invalid_fraction
        assert 0.75 <= fraction <= 0.96

    def test_self_signed_dominates_invalid(self, tiny_study):
        # Paper: 88.0 % self-signed, 11.99 % untrusted issuer.
        breakdown = tiny_study.validation().reason_breakdown()
        assert breakdown[VerifyStatus.SELF_SIGNED] > 0.75
        assert 0.0 < breakdown.get(VerifyStatus.UNTRUSTED_ISSUER, 0.0) < 0.25

    def test_valid_and_invalid_partition(self, tiny_study):
        report = tiny_study.validation()
        assert not report.valid & report.invalid
        assert report.considered == len(report.valid) + len(report.invalid)
