"""Tests for world assembly."""

import pytest

from repro.internet.population import (
    WorldConfig,
    build_world,
    standard_topology,
)
from repro.internet.vendors import IssuerScheme
from repro.net.asn import ASType


@pytest.fixture(scope="module")
def world():
    config = WorldConfig(
        seed=7,
        n_devices=150,
        n_websites=40,
        n_generic_access=20,
        n_enterprise=6,
        n_hosting=5,
        unused_roots=3,
    )
    return build_world(config)


class TestTopology:
    def test_named_ases_present(self):
        blueprints = standard_topology()
        asns = {bp.asn for bp in blueprints}
        # The paper's headline networks.
        for asn in (3320, 7922, 3209, 6805, 4766, 26496, 14618, 19262, 701):
            assert asn in asns

    def test_german_isps_are_daily_churn(self):
        blueprints = standard_topology()
        for asn in (3320, 3209, 6805):
            blueprint = next(bp for bp in blueprints if bp.asn == asn)
            assert blueprint.policy == "periodic"
            assert blueprint.period_days == 1

    def test_hosting_is_content_type(self):
        blueprints = standard_topology()
        godaddy = next(bp for bp in blueprints if bp.asn == 26496)
        assert godaddy.as_type is ASType.CONTENT

    def test_counts_scale_with_arguments(self):
        small = standard_topology(10, 5, 4)
        large = standard_topology(50, 10, 8)
        assert len(large) > len(small)


class TestWorldWiring:
    def test_every_as_has_registry_entry_and_policy(self, world):
        for blueprint in world.blueprints:
            assert blueprint.asn in world.registry
            assert blueprint.asn in world.policies

    def test_no_prefix_overlaps(self, world):
        routes = world.routing.table_at(0).routes()
        # Pairwise containment check (excluding the deliberate transfer split).
        prefixes = [route.prefix for route in routes]
        for i, a in enumerate(prefixes):
            for b in prefixes[i + 1:]:
                assert not (a.contains_prefix(b) or b.contains_prefix(a)), (a, b)

    def test_routing_resolves_device_ips(self, world):
        day = world.config.start_day + 50
        for device in world.devices[:40]:
            if not device.is_active(day):
                continue
            ip = world.device_ip(device, day)
            asn = world.origin_as(ip, day)
            assert asn == device.location_at(day).asn

    def test_prefix_transfer_changes_origin(self, world):
        transfer_day = world.config.prefix_transfer_day
        moved = [
            route.prefix
            for route in world.routing.table_at(transfer_day).routes()
            if route.asn == 701
        ]
        # MCI originates its own pool + server block, plus the transferred
        # Verizon block.
        assert len(moved) == 3
        transferred = next(p for p in moved if world.routing.origin_as(p.first, 0) == 19262)
        assert world.routing.origin_as(transferred.first, transfer_day) == 701

    def test_trust_store_padded(self, world):
        # 8 hierarchy roots + 3 unused.
        assert len(world.trust_store) == 11


class TestFleet:
    def test_device_count(self, world):
        assert len(world.devices) == 150

    def test_fritzbox_mostly_in_german_isps(self, world):
        fritz = [d for d in world.devices if d.profile.name == "fritzbox"]
        if not fritz:
            pytest.skip("no fritzbox devices at this scale")
        german = sum(
            1 for d in fritz if d.locations[0].asn in (3320, 3209, 6805)
        )
        assert german / len(fritz) > 0.5

    def test_shared_key_devices_share(self, world):
        lancom = [d for d in world.devices if d.profile.name == "lancom"]
        assert len(lancom) >= 2
        keys = {d.certificate_for_epoch(0).public_key for d in lancom}
        assert len(keys) == 1

    def test_private_ca_devices_have_cas(self, world):
        for device in world.devices:
            if device.profile.issuer_scheme is IssuerScheme.PRIVATE_CA:
                assert device.private_ca is not None

    def test_vendor_scope_ca_shared(self, world):
        wd = [d for d in world.devices if d.profile.name == "wd-mycloud"]
        if len(wd) < 2:
            pytest.skip("not enough wd devices at this scale")
        cas = {d.private_ca.keypair.public for d in wd}
        assert len(cas) == 1
        assert wd[0].private_ca.name.cn == "remotewd.com"

    def test_site_scope_cas_distinct(self, world):
        gateways = [d for d in world.devices if d.profile.name == "enterprise-gateway"]
        if len(gateways) < 8:
            pytest.skip("not enough gateways at this scale")
        cas = {d.private_ca.name for d in gateways}
        assert len(cas) > 1

    def test_subscribers_unique_per_as(self, world):
        seen = set()
        for device in world.devices:
            for location in device.locations:
                key = (location.asn, location.subscriber)
                assert key not in seen, f"duplicate subscriber {key}"
                seen.add(key)

    def test_playbooks_move(self, world):
        playbooks = [d for d in world.devices if d.profile.name == "playbook"]
        if not playbooks:
            pytest.skip("no playbooks at this scale")
        assert any(len(d.locations) > 2 for d in playbooks)

    def test_determinism(self):
        config = WorldConfig(seed=11, n_devices=40, n_websites=10,
                             n_generic_access=10, n_enterprise=4, n_hosting=4)
        a = build_world(config)
        b = build_world(config)
        for device_a, device_b in zip(a.devices, b.devices):
            assert (
                device_a.certificate_for_epoch(0).fingerprint
                == device_b.certificate_for_epoch(0).fingerprint
            )


class TestWebsites:
    def test_website_count(self, world):
        assert len(world.websites) == 40

    def test_hosting_split_matches_table2(self, world):
        # Valid certificates split between content and transit/access ASes
        # (Table 2); content must dominate but not monopolize.
        types = [world.registry.classify(w.asn) for w in world.websites]
        content = sum(1 for t in types if t is ASType.CONTENT)
        assert content / len(types) > 0.35
        assert content < len(types)          # some websites off-content

    def test_websites_never_collide_with_device_pools(self, world):
        day = world.config.start_day + 50
        device_ips = {
            world.device_ip(device, day)
            for device in world.devices
            if device.is_active(day)
        }
        website_ips = {ip for w in world.websites for ip in w.host_ips}
        assert not device_ips & website_ips

    def test_host_ips_unique_across_sites(self, world):
        all_ips = [ip for website in world.websites for ip in website.host_ips]
        assert len(all_ips) == len(set(all_ips))

    def test_replication_tail_exists(self):
        config = WorldConfig(seed=5, n_devices=20, n_websites=200,
                             n_generic_access=10, n_enterprise=4, n_hosting=6)
        world = build_world(config)
        replicas = sorted(len(w.host_ips) for w in world.websites)
        assert replicas[0] == 1
        assert replicas[-1] >= 10
