"""Tests for address pools and assignment policies."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.internet.dhcp import AddressPool, PeriodicReassignment, StaticAssignment
from repro.net.ip import Prefix, str_to_ip


def make_pool(*cidrs):
    return AddressPool([Prefix.parse(c) for c in cidrs])


class TestAddressPool:
    def test_size_and_addressing_single_prefix(self):
        pool = make_pool("10.0.0.0/24")
        assert pool.size == 256
        assert pool.address_at(0) == str_to_ip("10.0.0.0")
        assert pool.address_at(255) == str_to_ip("10.0.0.255")

    def test_multi_prefix_concatenation(self):
        pool = make_pool("10.0.0.0/30", "192.0.2.0/30")
        assert pool.size == 8
        assert pool.address_at(3) == str_to_ip("10.0.0.3")
        assert pool.address_at(4) == str_to_ip("192.0.2.0")
        assert pool.address_at(7) == str_to_ip("192.0.2.3")

    def test_out_of_range_rejected(self):
        pool = make_pool("10.0.0.0/30")
        with pytest.raises(IndexError):
            pool.address_at(4)
        with pytest.raises(IndexError):
            pool.address_at(-1)

    def test_contains(self):
        pool = make_pool("10.0.0.0/24")
        assert pool.contains(str_to_ip("10.0.0.9"))
        assert not pool.contains(str_to_ip("10.0.1.0"))

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            AddressPool([])


class TestStaticAssignment:
    def test_address_never_changes(self):
        policy = StaticAssignment.create(make_pool("10.0.0.0/24"), random.Random(1))
        first = policy.address(7, day=0)
        for day in (1, 100, 5000):
            assert policy.address(7, day) == first

    def test_no_mid_day_reassignment(self):
        policy = StaticAssignment.create(make_pool("10.0.0.0/24"), random.Random(1))
        assert policy.reassignment_hour(3, day=17) == -1.0

    def test_subscribers_never_collide(self):
        policy = StaticAssignment.create(make_pool("10.0.0.0/24"), random.Random(2))
        addresses = [policy.address(i, day=0) for i in range(256)]
        assert len(set(addresses)) == 256

    def test_addresses_stay_in_pool(self):
        pool = make_pool("10.0.0.0/26")
        policy = StaticAssignment.create(pool, random.Random(3))
        for subscriber in range(pool.size):
            assert pool.contains(policy.address(subscriber, day=0))


class TestPeriodicReassignment:
    def make(self, period=1, seed=1, cidr="10.0.0.0/24"):
        return PeriodicReassignment.create(
            make_pool(cidr), period, random.Random(seed)
        )

    def test_daily_churn_changes_address(self):
        policy = self.make(period=1)
        a = policy.address(5, day=10, hour=23.0)
        b = policy.address(5, day=11, hour=23.0)
        assert a != b

    def test_weekly_period_stable_within_period(self):
        policy = self.make(period=7)
        # Days 1..6 are within the same epoch (flips happen on day % 7 == 0).
        addresses = {policy.address(5, day, hour=23.0) for day in range(1, 7)}
        assert len(addresses) == 1

    def test_reassignment_hour_only_on_period_days(self):
        policy = self.make(period=7)
        assert policy.reassignment_hour(3, day=14) >= 0.0
        assert policy.reassignment_hour(3, day=15) == -1.0

    def test_address_flips_at_reassignment_hour(self):
        policy = self.make(period=1)
        day = 50
        flip = policy.reassignment_hour(9, day)
        assert 0.0 <= flip < 24.0
        before = policy.address(9, day, hour=max(0.0, flip - 0.01))
        after = policy.address(9, day, hour=flip)
        assert before != after
        # Before the flip, the subscriber still holds yesterday's address.
        assert before == policy.address(9, day - 1, hour=23.99)

    def test_subscribers_never_collide_same_instant(self):
        # Even mid-flip (some subscribers on the new epoch, some still on
        # the old one) no two subscribers may hold the same address.
        policy = self.make(period=1, cidr="10.0.0.0/25")
        for hour in (0.0, 6.0, 12.0, 18.0, 23.9):
            addresses = [
                policy.address(i, day=33, hour=hour)
                for i in range(policy.capacity)
            ]
            assert len(set(addresses)) == len(addresses)

    def test_capacity_enforced(self):
        policy = self.make(period=1, cidr="10.0.0.0/28")
        assert policy.capacity == 8
        with pytest.raises(ValueError):
            policy.address(8, day=0)

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            self.make(period=0)

    @settings(max_examples=30, deadline=None)
    @given(
        subscriber=st.integers(min_value=0, max_value=127),
        day=st.integers(min_value=0, max_value=3000),
        hour=st.floats(min_value=0.0, max_value=23.99),
    )
    def test_addresses_always_in_pool(self, subscriber, day, hour):
        policy = self.make(period=3)  # /24 pool → capacity 128
        assert policy.pool.contains(policy.address(subscriber, day, hour))

    @settings(max_examples=30, deadline=None)
    @given(
        day=st.integers(min_value=0, max_value=1000),
        hour=st.floats(min_value=0.0, max_value=23.99),
    )
    def test_determinism(self, day, hour):
        a = self.make(period=1, seed=7)
        b = self.make(period=1, seed=7)
        assert a.address(4, day, hour) == b.address(4, day, hour)
