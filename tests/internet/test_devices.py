"""Tests for device certificate behaviour."""

import random

import pytest

from repro.internet.devices import Device, Location, PrivateCA
from repro.internet.vendors import (
    DeviceType,
    IssuerScheme,
    KeyPolicy,
    NotBeforeMode,
    SerialPolicy,
    SubjectScheme,
    ValidityChoice,
    VendorProfile,
    standard_catalog,
)
from repro.x509.keys import generate_keypair
from repro.x509.name import Name

SEED = 99
DAY = 4600


def make_profile(**overrides):
    base = dict(
        name="test-vendor",
        device_type=DeviceType.HOME_ROUTER,
        weight=1.0,
        issuer_scheme=IssuerScheme.SAME_AS_SUBJECT,
        subject_scheme=SubjectScheme.PER_DEVICE,
        subject_text="unit-{device}",
        key_policy=KeyPolicy.DEVICE_STABLE,
        reissue_period_days=10,
    )
    base.update(overrides)
    return VendorProfile(**base)


def make_device(profile=None, device_id=1, shared=None, ca=None, **kwargs):
    profile = profile or make_profile()
    defaults = dict(
        device_id=device_id,
        profile=profile,
        world_seed=SEED,
        active_from=DAY,
        active_until=DAY + 1000,
        locations=[Location(DAY, 3320, 0)],
        shared_keypair=shared,
        private_ca=ca,
        firmware_epoch_day=DAY - 2000,
    )
    defaults.update(kwargs)
    return Device(**defaults)


class TestLifecycle:
    def test_activity_window(self):
        device = make_device()
        assert device.is_active(DAY)
        assert device.is_active(DAY + 1000)
        assert not device.is_active(DAY - 1)
        assert not device.is_active(DAY + 1001)

    def test_location_selection(self):
        device = make_device(
            locations=[Location(DAY, 3320, 0), Location(DAY + 100, 7922, 5)]
        )
        assert device.location_at(DAY).asn == 3320
        assert device.location_at(DAY + 99).asn == 3320
        assert device.location_at(DAY + 100).asn == 7922
        assert device.location_at(DAY + 5000).asn == 7922

    def test_reissue_epoch_progression(self):
        device = make_device()
        epochs = [device.reissue_epoch(DAY + offset) for offset in range(0, 50, 10)]
        assert epochs == sorted(epochs)
        assert epochs[-1] > epochs[0]

    def test_no_reissue_profile_stays_epoch_zero(self):
        device = make_device(make_profile(reissue_period_days=None))
        assert device.reissue_epoch(DAY) == 0
        assert device.reissue_epoch(DAY + 900) == 0
        assert device.certificate_on(DAY) == device.certificate_on(DAY + 900)

    def test_missing_location_rejected(self):
        with pytest.raises(ValueError):
            make_device(locations=[])


class TestDeterminism:
    def test_same_device_same_certs(self):
        a = make_device()
        b = make_device()
        for epoch in (0, 1, 5):
            assert (
                a.certificate_for_epoch(epoch).fingerprint
                == b.certificate_for_epoch(epoch).fingerprint
            )

    def test_different_devices_differ(self):
        a = make_device(device_id=1)
        b = make_device(device_id=2)
        assert a.certificate_on(DAY).fingerprint != b.certificate_on(DAY).fingerprint

    def test_reissue_produces_new_cert(self):
        device = make_device()
        first = device.certificate_for_epoch(0)
        second = device.certificate_for_epoch(1)
        assert first.fingerprint != second.fingerprint


class TestKeyPolicies:
    def test_device_stable_key_survives_reissue(self):
        device = make_device()
        keys = {device.certificate_for_epoch(e).public_key for e in range(4)}
        assert len(keys) == 1

    def test_per_reissue_key_changes(self):
        device = make_device(make_profile(key_policy=KeyPolicy.PER_REISSUE))
        keys = {device.certificate_for_epoch(e).public_key for e in range(4)}
        assert len(keys) == 4

    def test_vendor_shared_key(self):
        shared = generate_keypair(random.Random(5), 128)
        profile = make_profile(key_policy=KeyPolicy.VENDOR_SHARED)
        a = make_device(profile, device_id=1, shared=shared)
        b = make_device(profile, device_id=2, shared=shared)
        assert a.certificate_on(DAY).public_key == b.certificate_on(DAY).public_key
        assert a.certificate_on(DAY).public_key == shared.public

    def test_vendor_shared_requires_keypair(self):
        profile = make_profile(key_policy=KeyPolicy.VENDOR_SHARED)
        with pytest.raises(ValueError):
            make_device(profile, shared=None)


class TestNamingSchemes:
    def test_per_device_cn_stable_across_reissues(self):
        device = make_device()
        cns = {device.certificate_for_epoch(e).subject_cn for e in range(3)}
        assert len(cns) == 1
        assert next(iter(cns)).startswith("unit-")

    def test_per_reissue_cn_changes(self):
        profile = make_profile(
            subject_scheme=SubjectScheme.PER_REISSUE, subject_text="r-{device}-{epoch}"
        )
        device = make_device(profile)
        cns = {device.certificate_for_epoch(e).subject_cn for e in range(3)}
        assert len(cns) == 3

    def test_private_ip_shared(self):
        profile = make_profile(
            issuer_scheme=IssuerScheme.PRIVATE_IP,
            subject_scheme=SubjectScheme.PRIVATE_IP_SHARED,
        )
        a = make_device(profile, device_id=1)
        b = make_device(profile, device_id=2)
        assert a.certificate_on(DAY).subject_cn == "192.168.1.1"
        assert b.certificate_on(DAY).issuer_cn == "192.168.1.1"

    def test_private_ip_per_device(self):
        profile = make_profile(subject_scheme=SubjectScheme.PRIVATE_IP_PER_DEVICE)
        cns = {
            make_device(profile, device_id=i).certificate_on(DAY).subject_cn
            for i in range(6)
        }
        assert len(cns) == 6
        assert all(cn.startswith("192.168.") for cn in cns)

    def test_empty_names(self):
        profile = make_profile(
            issuer_scheme=IssuerScheme.EMPTY, subject_scheme=SubjectScheme.EMPTY
        )
        cert = make_device(profile).certificate_on(DAY)
        assert cert.subject.is_empty()
        assert cert.issuer.is_empty()

    def test_per_device_issuer_mac(self):
        profile = make_profile(
            issuer_scheme=IssuerScheme.PER_DEVICE, issuer_text="PlayBook: {mac}"
        )
        device = make_device(profile)
        issuer_cn = device.certificate_on(DAY).issuer_cn
        assert issuer_cn.startswith("PlayBook: ")
        assert issuer_cn == device.certificate_for_epoch(3).issuer_cn


class TestSignatures:
    def test_self_signed_profiles_verify_under_own_key(self):
        cert = make_device().certificate_on(DAY)
        assert cert.is_self_signed()

    def test_private_ca_signing(self):
        ca = PrivateCA(
            name=Name.build(CN="Site 1 CA", O="Site 1"),
            keypair=generate_keypair(random.Random(7), 128),
        )
        profile = make_profile(issuer_scheme=IssuerScheme.PRIVATE_CA)
        cert = make_device(profile, ca=ca).certificate_on(DAY)
        assert not cert.is_self_signed()
        assert cert.verify_signature(ca.keypair.public)
        assert cert.issuer == ca.name
        assert cert.extensions.authority_key_id == ca.key_id

    def test_private_ca_required(self):
        profile = make_profile(issuer_scheme=IssuerScheme.PRIVATE_CA)
        with pytest.raises(ValueError):
            make_device(profile, ca=None)


class TestSerials:
    def test_random_serials_differ_per_epoch(self):
        device = make_device()
        serials = {device.certificate_for_epoch(e).serial for e in range(4)}
        assert len(serials) == 4

    def test_device_constant_serial(self):
        profile = make_profile(serial_policy=SerialPolicy.DEVICE_CONSTANT)
        device = make_device(profile)
        serials = {device.certificate_for_epoch(e).serial for e in range(4)}
        assert len(serials) == 1


class TestNotBefore:
    def test_firmware_epoch_mode(self):
        profile = make_profile(not_before_mode=NotBeforeMode.FIRMWARE_EPOCH)
        device = make_device(profile, firmware_epoch_day=DAY - 2000)
        for epoch in range(3):
            assert device.certificate_for_epoch(epoch).not_before == DAY - 2000

    def test_at_issue_mode_tracks_issue_day(self):
        device = make_device()
        cert = device.certificate_for_epoch(2)
        issue_day = device.issue_day_of_epoch(2)
        assert abs(cert.not_before - issue_day) <= 30


class TestMidScanReissue:
    def test_certificate_at_flips_on_reissue_day(self):
        device = make_device()
        # Find a day on which an actual reissue lands.
        reissue_day = next(
            day
            for day in range(DAY + 1, DAY + 40)
            if device.reissue_hour_on(day) >= 0.0
        )
        flip = device.reissue_hour_on(reissue_day)
        before = device.certificate_at(reissue_day, max(0.0, flip - 0.01))
        after = device.certificate_at(reissue_day, flip)
        assert before.fingerprint != after.fingerprint
        # And on a non-reissue day the certificate is constant.
        quiet_day = reissue_day + 1
        assert device.reissue_hour_on(quiet_day) == -1.0
        assert (
            device.certificate_at(quiet_day, 0.0).fingerprint
            == device.certificate_at(quiet_day, 23.9).fingerprint
        )


class TestStandardCatalog:
    def test_weights_sum_to_one(self):
        total = sum(profile.weight for profile in standard_catalog())
        assert abs(total - 1.0) < 1e-9

    def test_names_unique(self):
        names = [profile.weight and profile.name for profile in standard_catalog()]
        assert len(names) == len(set(names))

    def test_validity_sampling_covers_choices(self):
        profile = make_profile(
            validity_choices=(
                ValidityChoice(days=100, weight=0.5),
                ValidityChoice(days=-5, weight=0.5),
            )
        )
        rng = random.Random(3)
        seen = {profile.picks_validity(rng) for _ in range(100)}
        assert seen == {100, -5}

    def test_device_types_cover_table4_classes(self):
        types = {profile.device_type for profile in standard_catalog()}
        assert DeviceType.HOME_ROUTER in types
        assert DeviceType.VPN in types
        assert DeviceType.REMOTE_STORAGE in types
        assert DeviceType.IP_CAMERA in types
        assert DeviceType.FIREWALL in types
