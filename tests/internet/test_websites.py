"""Tests for the CA hierarchy and website certificate lifecycle."""

import random

from repro.internet.websites import CAHierarchy, STANDARD_CA_MARKET, Website
from repro.x509.chain import ChainVerifier, VerifyStatus

SEED = 4242
DAY = 4600


def make_hierarchy():
    return CAHierarchy(SEED, epoch_day=DAY)


def make_website(hierarchy, website_id=1, active_from=DAY, replicas=1):
    return Website(
        website_id=website_id,
        domain=f"site{website_id}.example.com",
        ca=hierarchy.intermediates[0],
        world_seed=SEED,
        active_from=active_from,
        active_until=DAY + 2000,
        host_ips=list(range(100, 100 + replicas)),
        asn=26496,
    )


class TestCAHierarchy:
    def test_roots_are_self_signed_and_trusted(self):
        hierarchy = make_hierarchy()
        store = hierarchy.trust_store()
        for root in hierarchy.roots:
            assert root.certificate.is_self_signed()
            assert root.certificate in store

    def test_intermediates_chain_to_roots(self):
        hierarchy = make_hierarchy()
        verifier = ChainVerifier(hierarchy.trust_store())
        for ca in hierarchy.intermediates:
            assert verifier.verify(ca.certificate).status is VerifyStatus.VALID

    def test_market_share_concentration(self):
        # Five CAs should take roughly half the market (§5.3).
        hierarchy = make_hierarchy()
        rng = random.Random(1)
        counts = {}
        for _ in range(4000):
            ca = hierarchy.choose_issuer(rng)
            counts[ca.name.cn] = counts.get(ca.name.cn, 0) + 1
        top5 = sum(sorted(counts.values(), reverse=True)[:5])
        assert 0.33 <= top5 / 4000 <= 0.55

    def test_unused_roots_pad_store(self):
        hierarchy = make_hierarchy()
        base = len(hierarchy.trust_store())
        padded = len(hierarchy.trust_store(extra_unused_roots=10))
        assert padded == base + 10

    def test_deterministic(self):
        a = make_hierarchy()
        b = make_hierarchy()
        assert a.roots[0].certificate.fingerprint == b.roots[0].certificate.fingerprint

    def test_market_matches_table1_names(self):
        names = [cn for cn, _ in STANDARD_CA_MARKET[:5]]
        assert "Go Daddy Secure Certification Authority" in names
        assert "RapidSSL CA" in names


class TestWebsite:
    def test_leaf_validates_through_chain(self):
        hierarchy = make_hierarchy()
        website = make_website(hierarchy)
        verifier = ChainVerifier(
            hierarchy.trust_store(), [ca.certificate for ca in hierarchy.intermediates]
        )
        leaf = website.certificate_on(DAY + 10)
        assert verifier.verify(leaf).status is VerifyStatus.VALID

    def test_chain_contains_leaf_and_intermediate(self):
        hierarchy = make_hierarchy()
        website = make_website(hierarchy)
        leaf, intermediate = website.chain_on(DAY + 10)
        assert leaf.subject_cn == website.domain
        assert intermediate == website.ca.certificate

    def test_reissue_on_expiry(self):
        hierarchy = make_hierarchy()
        website = make_website(hierarchy)
        first = website.certificate_on(DAY)
        later = website.certificate_on(DAY + 1300)
        assert first.fingerprint != later.fingerprint
        # Each cert covers the days it is served on.
        assert first.valid_on(DAY)
        assert later.valid_on(DAY + 1300)

    def test_validity_period_is_realistic(self):
        hierarchy = make_hierarchy()
        periods = {
            make_website(hierarchy, website_id=i).certificate_on(DAY).validity_period_days
            for i in range(30)
        }
        assert periods <= {398, 730, 1125}
        assert 398 in periods  # the ~1.1-year median option dominates

    def test_some_renewals_keep_keys(self):
        # §5.2: about half of valid reissues reuse the key pair.
        hierarchy = make_hierarchy()
        kept = changed = 0
        for website_id in range(40):
            website = make_website(hierarchy, website_id=website_id)
            a = website.certificate_for_epoch(0)
            b = website.certificate_for_epoch(1)
            if a.public_key == b.public_key:
                kept += 1
            else:
                changed += 1
        assert kept > 5
        assert changed > 5

    def test_deterministic_certs(self):
        hierarchy = make_hierarchy()
        a = make_website(hierarchy).certificate_on(DAY)
        b = make_website(hierarchy).certificate_on(DAY)
        assert a.fingerprint == b.fingerprint

    def test_activity(self):
        hierarchy = make_hierarchy()
        website = make_website(hierarchy)
        assert website.is_active(DAY)
        assert not website.is_active(DAY - 1)
