"""End-to-end integration tests over the Study facade.

These assert the headline qualitative results of the paper on the tiny
synthetic corpus — the full-fidelity quantitative comparison lives in the
benchmark harness and EXPERIMENTS.md.
"""

from repro.core.features import Feature
from repro.study import Study


class TestPipelineWiring:
    def test_stages_cached(self, tiny_study):
        assert tiny_study.validation() is tiny_study.validation()
        assert tiny_study.pipeline() is tiny_study.pipeline()
        assert tiny_study.tracked_devices() is tiny_study.tracked_devices()

    def test_from_synthetic(self, tiny_synthetic):
        study = Study.from_synthetic(tiny_synthetic)
        assert study.dataset is tiny_synthetic.scans
        assert study.registry is tiny_synthetic.world.registry

    def test_unique_invalid_subset_of_invalid(self, tiny_study):
        assert set(tiny_study.unique_invalid) <= tiny_study.invalid


class TestHeadlineResults:
    def test_invalid_majority(self, tiny_study):
        # The title result: the majority of certificates are invalid.
        assert tiny_study.validation().invalid_fraction > 0.5

    def test_public_key_links_most(self, tiny_study):
        # Table 6: Public Key links the most certificates of any field.
        evaluations = tiny_study.feature_evaluations()
        pk = evaluations[Feature.PUBLIC_KEY].total_linked
        for feature, evaluation in evaluations.items():
            if feature is not Feature.PUBLIC_KEY:
                assert evaluation.total_linked <= pk

    def test_public_key_as_consistency_high(self, tiny_study):
        # §6.4.2: PK links with ~98 % AS-level but much lower IP-level
        # consistency (the German daily-churn FRITZ!Box effect).
        consistency = tiny_study.feature_evaluations()[Feature.PUBLIC_KEY].consistency
        assert consistency.as_level > 0.9
        assert consistency.ip_level < consistency.as_level

    def test_linking_produces_groups(self, tiny_study):
        pipeline = tiny_study.pipeline()
        assert pipeline.groups
        assert 0.0 < pipeline.linked_fraction < 1.0

    def test_groups_have_at_least_two_certs(self, tiny_study):
        for group in tiny_study.pipeline().groups:
            assert len(group) >= 2

    def test_no_cert_in_two_groups(self, tiny_study):
        seen = set()
        for group in tiny_study.pipeline().groups:
            for fingerprint in group.fingerprints:
                assert fingerprint not in seen
                seen.add(fingerprint)

    def test_linking_extends_lifetimes(self, tiny_study):
        improvement = tiny_study.lifetime_improvement()
        assert improvement.mean_lifetime_after > improvement.mean_lifetime_before

    def test_tracking_improves_with_linking(self, tiny_study):
        report = tiny_study.trackable()
        assert report.improvement_fraction > 0.0


class TestExecutionParity:
    """Acceptance: columnar backend + process fan-out change nothing."""

    def test_all_stages_identical_through_backend_and_workers(
        self, tiny_synthetic, tiny_study
    ):
        from repro.io.backends import InMemoryBackend
        from repro.scanner.dataset import ScanDataset

        world = tiny_synthetic.world
        rebuilt = ScanDataset.from_backend(
            InMemoryBackend.from_dataset(tiny_synthetic.scans)
        )
        study = Study(
            dataset=rebuilt,
            trust_store=world.trust_store,
            as_of=world.routing.origin_as,
            registry=world.registry,
            workers=2,
        )
        # §4.2 validation
        assert study.invalid == tiny_study.invalid
        assert study.valid == tiny_study.valid
        # §6.2 dedup
        assert study.dedup().unique == tiny_study.dedup().unique
        assert study.dedup().non_unique == tiny_study.dedup().non_unique
        # Table 6 evaluations (fanned out over two processes)
        base = tiny_study.feature_evaluations()
        routed = study.feature_evaluations()
        assert list(base) == list(routed)
        for feature in base:
            assert base[feature].total_linked == routed[feature].total_linked
            assert base[feature].uniquely_linked == routed[feature].uniquely_linked
            assert base[feature].consistency == routed[feature].consistency
            assert {g.fingerprints for g in base[feature].result.groups} == {
                g.fingerprints for g in routed[feature].result.groups
            }
        # §6.4.3 iterative pipeline
        assert study.pipeline().field_order == tiny_study.pipeline().field_order
        assert {g.fingerprints for g in study.pipeline().groups} == {
            g.fingerprints for g in tiny_study.pipeline().groups
        }
        # §7 tracking
        base_track = tiny_study.trackable()
        routed_track = study.trackable()
        assert (
            routed_track.trackable_with_linking
            == base_track.trackable_with_linking
        )
        assert (
            routed_track.trackable_without_linking
            == base_track.trackable_without_linking
        )

    def test_stage_timings_recorded(self, tiny_study):
        tiny_study.tracked_devices()
        for stage in ("validation", "dedup", "feature_evaluations",
                      "pipeline", "tracking"):
            assert stage in tiny_study.stage_timings
            assert tiny_study.stage_timings[stage] >= 0.0


class TestGroundTruthValidation:
    """The validation the paper could not do: check linking against truth."""

    def test_linked_groups_are_mostly_single_device(self, tiny_synthetic, tiny_study):
        dataset = tiny_synthetic.scans
        pure = impure = 0
        for group in tiny_study.pipeline().groups:
            devices = set()
            for fingerprint in group.fingerprints:
                devices |= {
                    entity
                    for entity in dataset.entities_of(fingerprint)
                    if entity.startswith("device:")
                }
            if len(devices) == 1:
                pure += 1
            else:
                impure += 1
        # The methodology's precision: the vast majority of groups contain
        # exactly one ground-truth device.
        assert pure / (pure + impure) > 0.9

    def test_per_device_recall(self, tiny_synthetic, tiny_study):
        # For stable-key devices with many certificates, linking should
        # recover a large share of each device's reissue chain.
        dataset = tiny_synthetic.scans
        world = tiny_synthetic.world
        fritz = [d for d in world.devices if d.profile.name == "fritzbox"]
        if not fritz:
            return
        linked = tiny_study.pipeline().linked_fingerprints()
        unique = set(tiny_study.unique_invalid)
        covered = total = 0
        for device in fritz:
            entity = f"device:{device.device_id}"
            fps = {
                obs.fingerprint
                for scan in dataset.scans
                for obs in scan.observations
                if obs.entity == entity
            } & unique
            total += len(fps)
            covered += len(fps & linked)
        if total:
            assert covered / total > 0.8
