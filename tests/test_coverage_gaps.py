"""Targeted tests for paths not covered elsewhere."""

import pytest

from .core.helpers import DAY0, make_cert, make_dataset


class TestScanAccessors:
    def test_scan_ips_and_fingerprints(self):
        a = make_cert(cn="a", key_seed=1)
        b = make_cert(cn="b", key_seed=2)
        dataset = make_dataset([(DAY0, [(1, a), (2, b), (2, a)])])
        scan = dataset.scans[0]
        assert scan.ips() == {1, 2}
        assert scan.fingerprints() == {a.fingerprint, b.fingerprint}
        assert len(scan) == 3

    def test_dataset_scans_from_unknown_source(self):
        dataset = make_dataset([(DAY0, [(1, make_cert())])])
        assert dataset.scans_from("nonexistent") == []

    def test_first_last_day_unknown_cert(self):
        dataset = make_dataset([(DAY0, [(1, make_cert())])])
        with pytest.raises(KeyError):
            dataset.first_last_day(b"\x01" * 32)

    def test_handshake_of(self):
        from repro.scanner.dataset import ScanDataset
        from repro.scanner.records import Observation, Scan
        from repro.tls.handshake import HandshakeRecord

        cert = make_cert(cn="hs", key_seed=3)
        record = HandshakeRecord(0x0301, 0x002F, 5840, 64)
        scans = [
            Scan(DAY0, "t", [Observation(1, cert.fingerprint)]),
            Scan(DAY0 + 7, "t", [Observation(1, cert.fingerprint, "", record)]),
        ]
        dataset = ScanDataset(scans, {cert.fingerprint: cert})
        assert dataset.handshake_of(cert.fingerprint) == record
        assert dataset.handshake_of(b"\x00" * 32) is None


class TestX509Corners:
    def test_raw_extension_round_trip(self):
        from repro.x509.extensions import Extensions, RawExtension
        from repro.x509.oid import OID

        raw = RawExtension(OID.parse("1.3.6.1.4.1.99999.9"), b"\x04\x02hi")
        decoded = Extensions.from_der(Extensions.of(raw).to_der())
        assert decoded.items == (raw,)

    def test_name_renders_unknown_attribute_as_dotted_oid(self):
        from repro.x509.name import Name
        from repro.x509.oid import OID

        name = Name.from_pairs([(OID.parse("2.5.4.65"), "pseudo")])
        assert name.rfc4514() == "2.5.4.65=pseudo"

    def test_name_unknown_short_attribute_lookup(self):
        from repro.x509.name import Name

        with pytest.raises(KeyError):
            Name.build(XX="nope")

    def test_oid_validation(self):
        from repro.x509.oid import OID

        with pytest.raises(ValueError):
            OID((1,))                 # too few arcs
        with pytest.raises(ValueError):
            OID((3, 1))               # first arc out of range
        with pytest.raises(ValueError):
            OID((0, 40))              # second arc out of range under 0/1
        with pytest.raises(ValueError):
            OID((1, 2, -3))           # negative arc

    def test_tls_version_labels(self):
        from repro.tls.handshake import TLSVersion

        assert TLSVersion.SSL3.label() == "SSLv3"
        assert TLSVersion.TLS1_2.label() == "TLSv1.2"


class TestCLICorners:
    def test_generate_with_handshakes(self, tmp_path):
        from repro.cli import main
        from repro.io import load_dataset

        corpus = tmp_path / "hs.rpz"
        environment = tmp_path / "hs.rpe"
        code = main(
            ["generate", "--preset", "tiny", "--seed", "3", "--handshakes",
             "--corpus", str(corpus), "--environment", str(environment)]
        )
        assert code == 0
        loaded = load_dataset(corpus)
        sample = loaded.scans[0].observations[0]
        assert sample.handshake is not None


class TestStudyCorners:
    def test_study_without_registry_movement(self, tiny_synthetic):
        from repro.study import Study

        study = Study(
            dataset=tiny_synthetic.scans,
            trust_store=tiny_synthetic.world.trust_store,
            as_of=tiny_synthetic.world.routing.origin_as,
            registry=None,
        )
        movement = study.movement()
        # Without a registry, country attribution is unavailable but the
        # AS-transition mining still works.
        assert movement.country_moves == 0
        assert movement.tracked_devices > 0
