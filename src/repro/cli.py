"""Command-line interface.

``python -m repro <command>`` drives the full pipeline from a shell:

* ``generate`` — build a synthetic world, scan it, and save the corpus
  (``.rpz``) plus its analysis environment (``.rpe``); ``--stream-out``
  flushes day shards straight into the archive (O(largest shard) memory,
  byte-identical output), which is how the ``xlarge`` preset is meant to
  be generated;
* ``info``     — print a saved corpus' manifest (format, backend,
  row counts, per-column byte sizes for format 3 containers); the
  corpus digest streams over the file bytes, so no column is paged in;
* ``append``   — O(day) incremental ingestion: scan one extra day of
  the same synthetic world and delta-append it to an existing format 3
  container (unchanged byte ranges raw-copied, never re-encoded); with
  ``--cache-dir`` the grown corpus' lineage is recorded so cached
  kernels of the base serve the grown corpus via one delta-merge;
* ``convert``  — upgrade a v1/v2 ``.rpz`` archive to the mmap-native
  format 3 container (written next to the input by default);
* ``shard``    — scan one day of a preset world and write it as a
  shard-drop file (``.rps``): the hand-off unit the watch daemon
  ingests;
* ``ingest``   — the continuous twin of ``append``: a daemon polling a
  drop directory (``--watch``) and delta-appending each arriving day,
  with the live observability plane (``--serve HOST:PORT`` exposes
  ``/metrics``, ``/healthz``, ``/vars``) and a streaming trace sink;
* ``top``      — ASCII dashboard over a live ``/vars`` endpoint
  (counters with rates, resource gauges, stage-latency p50/p99);
* ``census``   — the §5 comparison (validity, lifetimes, keys, issuers);
* ``link``     — the §6 linking pipeline and Table 6 summary;
* ``track``    — the §7 tracking applications;
* ``profile``  — run every stage under tracing and print the span tree
  plus the aggregated counters (see ``docs/observability.md``).

All analysis commands accept either a saved corpus+environment pair or
``--preset tiny|small|paper`` to build one on the fly, plus ``--trace``
(JSONL span export) and ``--metrics`` (Prometheus-style text dump).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .stats.tables import format_count, format_pct, render_table

__all__ = ["main", "build_parser"]

#: World settings per synthetic preset (``stride`` is the scan schedule).
_PRESETS = {
    "tiny": dict(n_devices=220, n_websites=75, n_generic_access=30,
                 n_enterprise=8, n_hosting=6, unused_roots=5, stride=8),
    "small": dict(n_devices=900, n_websites=310, n_generic_access=60,
                  n_enterprise=15, n_hosting=10, stride=3),
    "paper": dict(n_devices=2500, n_websites=850, stride=1),
    # ~10x the paper corpus (~11M observations): meant for
    # `generate --stream-out`, which writes shard-by-shard in
    # O(largest shard) memory instead of holding the corpus in RAM.
    "xlarge": dict(n_devices=25_000, n_websites=8_500, n_generic_access=120,
                   n_enterprise=40, n_hosting=25, stride=1),
}

#: Presets the on-the-fly analysis commands accept (xlarge is generate-only:
#: stream it to an archive first, then point the analysis at the .rpz).
_ANALYSIS_PRESETS = ("tiny", "small", "paper")


def _add_obs_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--trace", metavar="PATH",
                     help="write the run's span tree as JSONL")
    sub.add_argument("--metrics", nargs="?", const="-", metavar="PATH",
                     help="dump counters in Prometheus text format "
                          "(to stdout, or to PATH if given)")


def _add_cache_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--cache-dir", metavar="DIR",
                     help="content-addressed artifact cache directory: "
                          "kernels and validation verdicts are loaded "
                          "from (and persisted to) it, keyed by the "
                          "corpus digest")
    sub.add_argument("--no-cache", action="store_true",
                     help="ignore --cache-dir for this run")


def _make_cache(args):
    """The ArtifactCache implied by --cache-dir/--no-cache, or None."""
    cache_dir = getattr(args, "cache_dir", None)
    if not cache_dir or getattr(args, "no_cache", False):
        return None
    from .io import ArtifactCache

    return ArtifactCache(cache_dir)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The Silent Majority' (IMC 2016)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="build, scan, and save a synthetic corpus"
    )
    generate.add_argument("--preset", choices=tuple(_PRESETS),
                          default="tiny")
    generate.add_argument("--seed", type=int, default=2016)
    generate.add_argument("--handshakes", action="store_true",
                          help="collect TLS/transport traits per observation")
    generate.add_argument("--workers", type=int, default=1,
                          help="processes to fan scan days out over "
                               "(results identical to --workers 1)")
    generate.add_argument("--stream-out", action="store_true",
                          help="stream day shards straight into the .rpz "
                               "(O(largest shard) memory; identical bytes "
                               "to an in-memory build — required scale for "
                               "the xlarge preset)")
    generate.add_argument("--corpus", default="corpus.rpz")
    generate.add_argument("--environment", default="environment.rpe")
    _add_obs_flags(generate)

    info = commands.add_parser("info", help="print a saved corpus' manifest")
    info.add_argument("corpus")
    info.add_argument("--workers", type=int, default=1,
                      help="worker count the analysis commands would use "
                           "(echoed in the summary)")
    info.add_argument("--cache-dir", metavar="DIR",
                      help="also report the corpus' artifact-cache status "
                           "(digest, cached sections) under this directory")

    append = commands.add_parser(
        "append",
        help="scan one extra day and delta-append it to a format 3 corpus",
    )
    append.add_argument("corpus", help="existing format 3 .rpz container")
    append.add_argument("--out", required=True, metavar="PATH",
                        help="grown container path (byte-identical to a "
                             "full rebuild that includes the day)")
    append.add_argument("--preset", choices=tuple(_PRESETS), default="tiny",
                        help="synthetic world the corpus was generated from")
    append.add_argument("--seed", type=int, default=2016)
    append.add_argument("--day", type=int, required=True,
                        help="scan day to append (must sort after every "
                             "day already in the corpus)")
    append.add_argument("--handshakes", action="store_true",
                        help="collect TLS/transport traits per observation")
    append.add_argument("--compact-after", type=int, metavar="N",
                        help="when the grown corpus' recorded delta chain "
                             "reaches N ancestors, consolidate it into one "
                             "flat artifact and reset the lineage chain "
                             "(requires --cache-dir)")
    _add_obs_flags(append)
    _add_cache_flags(append)

    shard = commands.add_parser(
        "shard",
        help="scan one day and write a shard-drop file (.rps) for the "
             "watch daemon",
    )
    shard.add_argument("--preset", choices=tuple(_PRESETS), default="tiny",
                       help="synthetic world the watched corpus was "
                            "generated from")
    shard.add_argument("--seed", type=int, default=2016)
    shard.add_argument("--day", type=int, required=True,
                       help="scan day to package")
    shard.add_argument("--handshakes", action="store_true",
                       help="collect TLS/transport traits per observation")
    shard.add_argument("--drop-dir", default=".", metavar="DIR",
                       help="directory to drop the file into "
                            "(default: current directory)")
    shard.add_argument("--out", metavar="PATH",
                       help="explicit drop path "
                            "(default: DIR/day-<day>.rps)")
    _add_obs_flags(shard)

    ingest = commands.add_parser(
        "ingest",
        help="daemon: watch a drop directory and delta-append each "
             "arriving day to a format 3 corpus",
    )
    ingest.add_argument("corpus", help="format 3 .rpz container to grow")
    ingest.add_argument("--watch", required=True, metavar="DIR",
                        help="drop directory to poll for .rps files")
    ingest.add_argument("--interval", type=float, default=2.0,
                        help="poll interval in seconds (default: 2)")
    ingest.add_argument("--once", action="store_true",
                        help="one poll pass over pending drops, then exit")
    ingest.add_argument("--max-days", type=int, default=None, metavar="N",
                        help="exit after N drop files have been ingested")
    ingest.add_argument("--serve", metavar="HOST:PORT",
                        help="expose the live plane (/metrics /healthz "
                             "/vars) on this endpoint (port 0: ephemeral)")
    ingest.add_argument("--trace-stream", metavar="PATH",
                        help="stream completed spans to a size-capped "
                             "rotating JSONL file (sampling via "
                             "REPRO_OBS_SAMPLE)")
    ingest.add_argument("--retain", type=int, default=512, metavar="N",
                        help="completed spans to keep in memory for /vars "
                             "(default: 512)")

    serve = commands.add_parser(
        "serve",
        help="daemon: answer online queries (/cert /key /track /census) "
             "over a saved corpus via asyncio HTTP",
    )
    serve.add_argument("corpus", help="saved .rpz corpus to serve")
    serve.add_argument("--environment", required=True, metavar="PATH",
                       help="saved .rpe analysis environment")
    serve.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                       help="bind endpoint (default 127.0.0.1:0 — an "
                            "ephemeral port, printed at boot)")
    serve.add_argument("--workers", type=int, default=1,
                       help="process-pool size for heavy queries (census "
                            "slices, group consistency); workers re-map "
                            "the container and share its pages")
    serve.add_argument("--no-warm", action="store_true",
                       help="skip the startup warm-up (stages then build "
                            "lazily on first query)")
    serve.add_argument("--max-seconds", type=float, default=None, metavar="S",
                       help="exit after S seconds (smoke-test use)")
    _add_cache_flags(serve)

    loadgen = commands.add_parser(
        "loadgen",
        help="drive a running repro serve with concurrent mixed lookups "
             "and report qps + latency percentiles",
    )
    loadgen.add_argument("url", help="server base URL, e.g. "
                                     "http://127.0.0.1:8321")
    loadgen.add_argument("--requests", type=int, default=2000,
                         help="total requests to issue (default: 2000)")
    loadgen.add_argument("--concurrency", type=int, default=16,
                         help="concurrent keep-alive connections "
                              "(default: 16)")
    loadgen.add_argument("--mix", metavar="SPEC",
                         help="endpoint weights, e.g. "
                              "cert=8,track=2,key=1,census=1 (default)")
    loadgen.add_argument("--seed", type=int, default=2016,
                         help="workload shuffle seed")
    loadgen.add_argument("--json", action="store_true",
                         help="emit the report as one JSON object")

    split = commands.add_parser(
        "split",
        help="partition a format 3 corpus into K self-contained shard "
             "containers plus a fleet.json manifest (analysis-closed, "
             "deterministic, O(bytes) raw-copy)",
    )
    split.add_argument("corpus", help="saved format 3 .rpz corpus")
    split.add_argument("--environment", required=True, metavar="PATH",
                       help="saved .rpe analysis environment (pins the "
                            "linking plan and validation pool)")
    split.add_argument("--out", required=True, metavar="DIR",
                       help="fleet directory for the shard containers, "
                            "owners sidecar, and fleet.json")
    split.add_argument("--shards", type=int, default=4,
                       help="shard count (default: 4)")
    _add_cache_flags(split)

    fleet = commands.add_parser(
        "fleet",
        help="daemon: split (if needed), boot one warmed serve process "
             "per shard, and front them with the byte-parity router",
    )
    fleet.add_argument("corpus", help="saved format 3 .rpz corpus")
    fleet.add_argument("--environment", required=True, metavar="PATH",
                       help="saved .rpe analysis environment")
    fleet.add_argument("--fleet-dir", required=True, metavar="DIR",
                       help="fleet directory (reused when fleet.json "
                            "already matches the corpus; else built by "
                            "splitting)")
    fleet.add_argument("--shards", type=int, default=4,
                       help="shard count when splitting (default: 4)")
    fleet.add_argument("--listen", default="127.0.0.1:0",
                       metavar="HOST:PORT",
                       help="router bind endpoint (default 127.0.0.1:0 "
                            "— an ephemeral port, printed at boot)")
    fleet.add_argument("--workers", type=int, default=1,
                       help="process-pool size inside each shard server")
    fleet.add_argument("--max-seconds", type=float, default=None,
                       metavar="S",
                       help="exit after S seconds (smoke-test use)")
    _add_cache_flags(fleet)

    top = commands.add_parser(
        "top",
        help="ASCII dashboard over a live /vars endpoint",
    )
    top.add_argument("--url", default="http://127.0.0.1:9110",
                     help="live plane base URL (default: "
                          "http://127.0.0.1:9110)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between frames (default: 2)")
    top.add_argument("--iterations", type=int, default=1, metavar="N",
                     help="frames to render before exiting (default: 1)")

    convert = commands.add_parser(
        "convert",
        help="upgrade a v1/v2 .rpz archive to the mmap-native format 3",
    )
    convert.add_argument("corpus", help="saved v1/v2 .rpz archive")
    convert.add_argument("--out", metavar="PATH",
                         help="output container path "
                              "(default: <corpus stem>.v3.rpz, adjacent "
                              "to the input)")
    _add_obs_flags(convert)

    profile = commands.add_parser(
        "profile",
        help="run every pipeline stage under tracing and print the "
             "span tree plus aggregated counters",
    )
    profile.add_argument("--dataset", default="tiny",
                         help="synthetic preset (tiny|small|paper) or a "
                              "saved .rpz corpus")
    profile.add_argument("--environment",
                         help="saved .rpe environment (required with .rpz)")
    profile.add_argument("--seed", type=int, default=2016)
    profile.add_argument("--workers", type=int, default=1,
                         help="processes for scanning and per-feature "
                              "linking (counters aggregate identically)")
    profile.add_argument("--max-depth", type=int, default=None,
                         help="limit the printed span tree depth")
    _add_obs_flags(profile)
    _add_cache_flags(profile)

    for name, help_text in (
        ("census", "the §5 invalid-vs-valid comparison"),
        ("link", "the §6 linking pipeline"),
        ("track", "the §7 tracking applications"),
        ("report", "full markdown study report"),
    ):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("--corpus", help="saved .rpz corpus")
        sub.add_argument("--environment", help="saved .rpe environment")
        sub.add_argument("--preset", choices=_ANALYSIS_PRESETS,
                         help="build a corpus on the fly instead")
        sub.add_argument("--seed", type=int, default=2016)
        sub.add_argument("--workers", type=int, default=1,
                         help="processes for the per-feature linking passes "
                              "(results identical to --workers 1)")
        if name == "report":
            sub.add_argument("--out", default="report.md")
            sub.add_argument("--title", default="Invalid-certificate study")
        _add_obs_flags(sub)
        _add_cache_flags(sub)
    return parser


def _build_synthetic(preset: str, seed: int, collect_handshakes: bool = False,
                     workers: int = 1):
    """Build and scan one preset world (shared by generate and profile)."""
    from .datasets import synthetic
    from .internet.population import WorldConfig

    settings = dict(_PRESETS[preset])
    stride = settings.pop("stride")
    config = WorldConfig(seed=seed, **settings)
    return synthetic.generate(
        config, scan_stride=stride, collect_handshakes=collect_handshakes,
        workers=workers,
    )


def _make_study(args):
    from .study import Study

    workers = getattr(args, "workers", 1)
    cache = _make_cache(args)
    if args.preset:
        from .datasets import synthetic

        dataset = getattr(synthetic, args.preset)(seed=args.seed)
        return Study.from_synthetic(dataset, workers=workers, cache=cache)
    if not args.corpus or not args.environment:
        raise SystemExit("need either --preset or both --corpus and --environment")
    from .io import load_dataset, load_environment

    dataset = load_dataset(args.corpus)
    environment = load_environment(args.environment)
    return Study(
        dataset=dataset,
        trust_store=environment.trust_store,
        as_of=environment.routing.origin_as,
        registry=environment.registry,
        workers=workers,
        cache=cache,
    )


def _cmd_generate(args) -> int:
    from .io import AnalysisEnvironment, save_dataset, save_environment

    print(f"building '{args.preset}' world (seed {args.seed})...")
    if args.stream_out:
        from .datasets import synthetic
        from .internet.population import WorldConfig

        settings = dict(_PRESETS[args.preset])
        stride = settings.pop("stride")
        receipt = synthetic.generate_streamed(
            WorldConfig(seed=args.seed, **settings), args.corpus,
            scan_stride=stride, collect_handshakes=args.handshakes,
            workers=args.workers,
        )
        save_environment(
            AnalysisEnvironment.of_world(receipt.world), args.environment
        )
        print(
            f"streamed {args.corpus} ({receipt.n_scans} scans, "
            f"{format_count(receipt.n_observations)} observations, "
            f"{format_count(receipt.n_certificates)} certificates) "
            f"and {args.environment}"
        )
        print(f"corpus digest: {receipt.digest}")
        return 0
    bundle = _build_synthetic(
        args.preset, args.seed, collect_handshakes=args.handshakes,
        workers=args.workers,
    )
    save_dataset(bundle.scans, args.corpus)
    save_environment(AnalysisEnvironment.of_world(bundle.world), args.environment)
    print(
        f"wrote {args.corpus} ({len(bundle.scans.scans)} scans, "
        f"{format_count(bundle.scans.n_observations)} observations, "
        f"{format_count(len(bundle.scans.certificates))} certificates) "
        f"and {args.environment}"
    )
    return 0


def _cmd_info(args) -> int:
    from .io import ArchiveBackend, MappedBackend, is_segment_container

    if is_segment_container(args.corpus):
        backend = MappedBackend(args.corpus)
    else:
        backend = ArchiveBackend(args.corpus)
    manifest = backend.describe()
    print(f"backend: {manifest.pop('backend', 'archive')} "
          f"({'mapped' if getattr(backend, 'mapped', False) else 'materialized'} "
          f"columns)")
    segments = manifest.pop("segments", None)
    for key, value in manifest.items():
        print(f"{key}: {value}")
    if segments:
        print("per-column bytes:")
        for name in sorted(segments):
            print(f"  {name}: {segments[name]:,d}")
    # Streams over the file bytes: even on a mapped container no column
    # segment is paged in (io.bytes_materialized stays 0).
    print(f"corpus digest: {backend.corpus_digest()}")
    print(f"workers: {args.workers}")
    if getattr(args, "cache_dir", None):
        from .io import ArtifactCache

        status = ArtifactCache(args.cache_dir).status(backend.corpus_digest())
        print(f"cache digest: {status['digest']}")
        if status["cached"]:
            print(f"cache: hit ({', '.join(status['sections'])}) "
                  f"at {status['path']}")
        else:
            print(f"cache: miss (no artifact at {status['path']})")
    return 0


def _day_shards(preset: str, seed: int, day: int, handshakes: bool):
    """One day's scan shards for a preset world (append and shard share).

    Rebuilds the deterministic world; per-day RNG streams are keyed by
    (seed, campaign, day), so the day's shards are byte-identical to
    what a full generate run would have produced for that day.
    """
    from .datasets.synthetic import _world_campaigns
    from .internet.population import WorldConfig
    from .scanner.engine import ScanEngine

    settings = dict(_PRESETS[preset])
    stride = settings.pop("stride")
    world, campaigns = _world_campaigns(
        WorldConfig(seed=seed, **settings), stride
    )
    engine = ScanEngine(world, collect_handshakes=handshakes)
    shards = [
        engine.run_shard(campaign, day)
        for campaign in sorted(campaigns, key=lambda c: c.name)
        if day in campaign.scan_days
    ]
    if not shards:
        raise SystemExit(f"no campaign in preset '{preset}' scans day {day}")
    return shards, engine


def _cmd_append(args) -> int:
    from .io import load_dataset

    shards, engine = _day_shards(
        args.preset, args.seed, args.day, args.handshakes
    )
    dataset = load_dataset(args.corpus)
    cache = _make_cache(args)
    try:
        grown = dataset.extend_from_shard(
            shards, engine.certificate_store, args.out, cache=cache,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(
        f"appended day {args.day} ({len(shards)} scans, "
        f"{format_count(grown.n_observations - dataset.n_observations)} "
        f"observations) -> {args.out}"
    )
    print(f"corpus digest: {grown.corpus_digest()}")
    if cache is not None and args.compact_after is not None:
        chain = cache.chain_length(grown.corpus_digest())
        if chain >= args.compact_after:
            if cache.compact(grown) is not None:
                print(
                    f"compacted delta chain ({chain} ancestors) into a "
                    f"flat artifact"
                )
    return 0


def _cmd_convert(args) -> int:
    import pathlib

    from .io import is_segment_container, load_dataset, read_manifest, save_dataset

    source = pathlib.Path(args.corpus)
    if is_segment_container(source):
        raise SystemExit(f"{source} is already a format 3 container")
    manifest = read_manifest(source)
    out = pathlib.Path(args.out) if args.out else source.with_name(
        f"{source.stem}.v3{source.suffix or '.rpz'}"
    )
    # The one-shot materializing converter path: the legacy archive is
    # loaded in full (v1/v2 have no lazy surface), re-interned in
    # canonical corpus order, and streamed back out as format 3.
    dataset = load_dataset(source)
    digest = save_dataset(dataset, out)
    print(f"converted {source} (format {manifest['format']}) -> {out} "
          f"(format 3, {format_count(dataset.n_observations)} observations)")
    print(f"corpus digest: {digest}")
    return 0


def _cmd_census(args) -> int:
    from .core.analysis.issuers import self_signed_fraction, top_issuers
    from .core.analysis.keys import key_sharing
    from .core.analysis.longevity import lifetimes, validity_periods

    study = _make_study(args)
    dataset = study.dataset
    validation = study.validation()
    print(f"invalid: {format_pct(validation.invalid_fraction)} of "
          f"{format_count(validation.considered)} certificates")
    print(f"self-signed share of invalid: "
          f"{format_pct(self_signed_fraction(dataset, study.invalid))}")

    invalid_validity = validity_periods(dataset, study.invalid)
    valid_validity = validity_periods(dataset, study.valid)
    invalid_life = lifetimes(dataset, study.invalid)
    valid_life = lifetimes(dataset, study.valid)
    invalid_keys = key_sharing(dataset, study.invalid)
    valid_keys = key_sharing(dataset, study.valid)
    print(render_table(
        ["statistic", "valid", "invalid"],
        [
            ["validity median", f"{valid_validity.median/365:.1f}y",
             f"{invalid_validity.median/365:.1f}y"],
            ["lifetime median", f"{valid_life.median_days:.0f}d",
             f"{invalid_life.median_days:.0f}d"],
            ["single-scan share", format_pct(valid_life.single_scan_fraction),
             format_pct(invalid_life.single_scan_fraction)],
            ["certs sharing keys", format_pct(valid_keys.shared_fraction),
             format_pct(invalid_keys.shared_fraction)],
        ],
    ))
    print("\ntop invalid issuers:")
    for issuer, count in top_issuers(dataset, study.invalid):
        print(f"  {count:>8,d}  {issuer}")
    return 0


def _cmd_link(args) -> int:
    study = _make_study(args)
    evaluations = study.feature_evaluations()
    rows = []
    for feature, evaluation in evaluations.items():
        consistency = evaluation.consistency
        rows.append(
            [feature.value, format_count(evaluation.total_linked),
             format_count(evaluation.uniquely_linked),
             format_pct(consistency.ip_level), format_pct(consistency.as_level)]
        )
    print(render_table(["feature", "linked", "uniquely", "IP-consistency",
                        "AS-consistency"], rows))
    pipeline = study.pipeline()
    print(f"\npipeline: linked {format_count(pipeline.linked_certificates)} "
          f"certificates ({format_pct(pipeline.linked_fraction)}) into "
          f"{format_count(len(pipeline.groups))} groups")
    print(f"order: {', '.join(f.value for f in pipeline.field_order)}")
    if pipeline.excluded:
        print(f"excluded: {', '.join(f.value for f in pipeline.excluded)}")
    return 0


def _cmd_track(args) -> int:
    study = _make_study(args)
    trackable = study.trackable()
    print(f"trackable devices: {format_count(trackable.trackable_without_linking)} "
          f"without linking, {format_count(trackable.trackable_with_linking)} with "
          f"(+{format_pct(trackable.improvement_fraction)})")
    movement = study.movement()
    print(f"devices changing AS: {format_count(movement.devices_changing_as)} "
          f"({format_count(movement.total_transitions)} transitions, "
          f"{format_pct(movement.single_change_fraction)} exactly once)")
    print(f"cross-country moves: {format_count(movement.country_moves)}")
    for transfer in movement.bulk_transfers[:5]:
        print(f"bulk transfer: AS{transfer.from_asn} -> AS{transfer.to_asn} "
              f"({transfer.device_count} devices)")
    try:
        reassignment = study.reassignment()
    except ValueError:
        print("reassignment inference: too few tracked devices per AS")
        return 0
    print(f"ASes >=90% static: "
          f"{format_pct(reassignment.fraction_of_ases_mostly_static())} "
          f"of {len(reassignment.static_fraction_by_as)}")
    return 0


def _cmd_report(args) -> int:
    from .report import write_report

    study = _make_study(args)
    write_report(study, args.out, title=args.title)
    print(f"wrote {args.out}")
    return 0


def _cmd_shard(args) -> int:
    import pathlib

    from .io import write_shard_drop

    shards, engine = _day_shards(
        args.preset, args.seed, args.day, args.handshakes
    )
    if args.out:
        path = pathlib.Path(args.out)
    else:
        path = pathlib.Path(args.drop_dir) / f"day-{args.day:05d}.rps"
    try:
        digest = write_shard_drop(shards, engine.certificate_store, path)
    except ValueError as exc:
        raise SystemExit(str(exc))
    rows = sum(len(shard) for shard in shards)
    print(f"dropped day {args.day} ({len(shards)} scans, "
          f"{format_count(rows)} observations) -> {path}")
    print(f"drop digest: {digest}")
    return 0


def _parse_endpoint(spec: str) -> "tuple[str, int]":
    """``HOST:PORT`` / ``:PORT`` / ``PORT`` → a bind address."""
    host, separator, port = spec.rpartition(":")
    if not separator:
        host, port = "", spec
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise SystemExit(f"--serve endpoint is not HOST:PORT: {spec!r}")


def _cmd_ingest(args) -> int:
    import signal
    import threading

    from .io.watch import WatchIngestor
    from .obs import (
        LatencyRecorder,
        LiveServer,
        MetricsRegistry,
        ResourceSampler,
        RotatingJsonlSink,
        Tracer,
    )
    from .obs import runtime as obs_runtime

    if args.interval <= 0:
        raise SystemExit("--interval must be positive seconds")
    trace = Tracer(process="ingest-watch")
    metrics = MetricsRegistry()
    trace.retain = args.retain
    trace.add_sink(LatencyRecorder(metrics))
    sink = None
    if args.trace_stream:
        sink = RotatingJsonlSink(args.trace_stream, process="ingest-watch")
        trace.add_sink(sink)
    health = {}
    ingestor = WatchIngestor(args.corpus, args.watch, health=health)
    sampler = ResourceSampler(metrics, interval=max(args.interval, 0.5))
    server = None
    stop = threading.Event()
    previous_handlers = {}

    def _request_stop(signum, frame) -> None:
        stop.set()

    with obs_runtime.activated(trace, metrics):
        sampler.start()
        try:
            if args.serve is not None:
                host, port = _parse_endpoint(args.serve)
                server = LiveServer(
                    trace, metrics, health=health, host=host, port=port
                ).start()
                print(f"live plane at {server.url} "
                      f"(/metrics /healthz /vars)", flush=True)
            if args.once:
                ingested = len(ingestor.poll())
            else:
                for signum in (signal.SIGINT, signal.SIGTERM):
                    try:
                        previous_handlers[signum] = signal.signal(
                            signum, _request_stop
                        )
                    except (ValueError, OSError):
                        pass  # not the main thread, or unsupported signal
                print(f"watching {args.watch} every {args.interval:g}s "
                      f"(SIGINT/SIGTERM to stop)", flush=True)
                ingested = ingestor.run(
                    interval=args.interval, stop=stop,
                    max_days=args.max_days,
                )
        finally:
            for signum, handler in previous_handlers.items():
                try:
                    signal.signal(signum, handler)
                except (ValueError, OSError):
                    pass
            if server is not None:
                server.stop()
            sampler.stop()
            if sink is not None:
                sink.close()
    print(f"ingested {ingested} drop file(s) "
          f"({ingestor.rejected} rejected) into {args.corpus}")
    if "last_append_day" in health:
        print(f"last appended day: {health['last_append_day']}")
        print(f"corpus digest: {health['last_digest']}")
    return 0


def _cmd_top(args) -> int:
    import json
    import time
    import urllib.error
    import urllib.request

    from .obs import render_top

    base = args.url.rstrip("/")
    previous = None
    last_time = None
    for iteration in range(max(1, args.iterations)):
        if iteration:
            time.sleep(args.interval)
            print()
        try:
            with urllib.request.urlopen(base + "/vars", timeout=10) as response:
                snapshot = json.loads(response.read().decode())
        except (urllib.error.URLError, OSError) as exc:
            raise SystemExit(f"cannot reach {base}/vars: {exc}")
        now = time.monotonic()
        interval = now - last_time if last_time is not None else None
        print(render_top(snapshot, previous=previous, interval=interval))
        previous, last_time = snapshot, now
    return 0


async def _serve_main(engine, live, host, port, max_seconds) -> None:
    import asyncio
    import signal
    from contextlib import suppress

    from .serve import QueryServer

    server = await QueryServer(engine, live=live, host=host, port=port).start()
    print(f"serving queries at {server.url} "
          f"(/cert /key /track /census /sample /metrics /healthz /vars)",
          flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
    try:
        if max_seconds is not None:
            with suppress(asyncio.TimeoutError):
                await asyncio.wait_for(stop.wait(), timeout=max_seconds)
        else:
            await stop.wait()
    finally:
        await server.stop()


def _cmd_serve(args) -> int:
    import asyncio

    from .obs import LatencyRecorder, LiveServer, MetricsRegistry, \
        ResourceSampler, Tracer
    from .obs import runtime as obs_runtime
    from .serve import QueryEngine

    host, port = _parse_endpoint(args.listen)
    cache_dir = None if args.no_cache else args.cache_dir
    trace = Tracer(process="serve")
    metrics = MetricsRegistry()
    trace.add_sink(LatencyRecorder(metrics))
    health = {}
    sampler = ResourceSampler(metrics, interval=1.0)
    with obs_runtime.activated(trace, metrics):
        engine = QueryEngine.open(
            args.corpus, args.environment,
            workers=args.workers, cache_dir=cache_dir,
        )
        if not args.no_warm:
            print("warming query stages...", flush=True)
            engine.warm()
        health.update({
            "corpus": str(args.corpus),
            "digest": engine.digest,
            "workers": args.workers,
        })
        live = LiveServer(trace, metrics, health=health, host=host, port=port)
        sampler.start()
        try:
            asyncio.run(
                _serve_main(engine, live, host, port, args.max_seconds)
            )
        except KeyboardInterrupt:
            pass
        finally:
            sampler.stop()
            engine.close()
    return 0


def _parse_mix(spec: str) -> "dict[str, int]":
    """``cert=8,track=2`` → endpoint weight dict."""
    mix = {}
    for item in spec.split(","):
        name, separator, weight = item.partition("=")
        if not separator or not weight.isdigit():
            raise SystemExit(f"--mix entries are NAME=WEIGHT: {item!r}")
        mix[name.strip()] = int(weight)
    return mix


def _cmd_loadgen(args) -> int:
    import json as json_module

    from .serve.loadgen import run_loadgen

    mix = _parse_mix(args.mix) if args.mix else None
    report = run_loadgen(
        args.url.rstrip("/"), requests=args.requests,
        concurrency=args.concurrency, mix=mix, seed=args.seed,
    )
    if args.json:
        print(json_module.dumps({
            "requests": report.requests,
            "errors": report.errors,
            "seconds": report.seconds,
            "qps": report.qps,
            "p50_ms": report.p50_ms,
            "p99_ms": report.p99_ms,
            "max_ms": report.max_ms,
            "by_status": {
                str(status): count
                for status, count in report.by_status.items()
            },
            "by_endpoint": report.by_endpoint,
        }, sort_keys=True))
    else:
        print(report.render())
    return 1 if report.errors else 0


def _cmd_split(args) -> int:
    from .io.split import split_corpus

    cache_dir = None if args.no_cache else args.cache_dir
    manifest = split_corpus(
        args.corpus, args.environment, args.out,
        shards=args.shards, cache_dir=cache_dir,
    )
    print(f"split {args.corpus} into {manifest.shards} shards "
          f"at {manifest.directory}")
    for info in manifest.shard_infos:
        print(f"  shard {info.index}: {info.path.name}  "
              f"{info.n_certificates} certs  "
              f"{info.n_observations} rows  {info.digest[:12]}")
    print(f"  manifest: {manifest.path.name}  "
          f"parent {manifest.parent_digest[:12]}")
    return 0


async def _fleet_main(router, n_shards: int, max_seconds) -> None:
    import asyncio
    import signal
    from contextlib import suppress

    await router.start()
    print(f"serving queries at {router.url} "
          f"(fleet router over {n_shards} shards: "
          f"/cert /key /track /census /sample /as /metrics /healthz)",
          flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
    try:
        if max_seconds is not None:
            with suppress(asyncio.TimeoutError):
                await asyncio.wait_for(stop.wait(), timeout=max_seconds)
        else:
            await stop.wait()
    finally:
        await router.stop()


def _cmd_fleet(args) -> int:
    import asyncio
    import pathlib

    from .io.artifacts import file_digest
    from .io.split import (
        FLEET_MANIFEST_NAME,
        load_fleet_manifest,
        split_corpus,
        verify_fleet,
    )
    from .serve.router import FleetRouter, boot_fleet, shutdown_fleet

    host, port = _parse_endpoint(args.listen)
    cache_dir = None if args.no_cache else args.cache_dir
    fleet_dir = pathlib.Path(args.fleet_dir)
    manifest_path = fleet_dir / FLEET_MANIFEST_NAME
    manifest = None
    if manifest_path.exists():
        manifest = load_fleet_manifest(manifest_path)
        if (manifest.parent_digest != file_digest(args.corpus)
                or manifest.shards != args.shards):
            manifest = None  # stale fleet: re-split below
    if manifest is None:
        print(f"splitting {args.corpus} into {args.shards} shards...",
              flush=True)
        manifest = split_corpus(
            args.corpus, args.environment, fleet_dir,
            shards=args.shards, cache_dir=cache_dir,
        )
    verify_fleet(manifest)
    print(f"booting {manifest.shards} shard servers...", flush=True)
    processes, urls = boot_fleet(
        manifest, args.environment,
        cache_dir=cache_dir, workers=args.workers,
    )
    for shard, url in enumerate(urls):
        print(f"  shard {shard} at {url}", flush=True)
    try:
        router = FleetRouter(manifest, urls, host=host, port=port)
        asyncio.run(_fleet_main(router, len(urls), args.max_seconds))
    except KeyboardInterrupt:
        pass
    finally:
        shutdown_fleet(processes)
    return 0


def _export_metrics(metrics, dest: str) -> None:
    """Prometheus text dump to stdout (``-``) or a file."""
    from .obs import prometheus_text

    text = prometheus_text(metrics)
    if dest == "-":
        print(text, end="")
    else:
        with open(dest, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote metrics to {dest}")


def _cmd_profile(args) -> int:
    from .obs import MetricsRegistry, Tracer, counter_table, render_span_tree, write_trace
    from .obs import runtime as obs_runtime
    from .study import Study

    trace = Tracer()
    metrics = MetricsRegistry()
    with obs_runtime.activated(trace, metrics):
        with trace.span("profile", dataset=args.dataset, workers=args.workers):
            if args.dataset in _PRESETS:
                with trace.span("scan", preset=args.dataset):
                    bundle = _build_synthetic(
                        args.dataset, args.seed, workers=args.workers
                    )
                study = Study.from_synthetic(
                    bundle, workers=args.workers, observe=True,
                    cache=_make_cache(args),
                )
            else:
                if not args.environment:
                    raise SystemExit(
                        "--environment is required with an .rpz corpus"
                    )
                from .io import load_dataset, load_environment

                with trace.span("load", corpus=args.dataset):
                    dataset = load_dataset(args.dataset)
                    environment = load_environment(args.environment)
                study = Study(
                    dataset=dataset,
                    trust_store=environment.trust_store,
                    as_of=environment.routing.origin_as,
                    registry=environment.registry,
                    workers=args.workers,
                    observe=True,
                    cache=_make_cache(args),
                )
            study.validation()
            study.dedup()
            study.feature_evaluations()
            study.pipeline()
            study.tracked_devices()
    print(render_span_tree(trace, max_depth=args.max_depth))
    table = counter_table(metrics)
    if table:
        print()
        print(table)
    if args.trace:
        count = write_trace(trace, args.trace)
        print(f"\nwrote {count} spans to {args.trace}")
    if args.metrics is not None:
        _export_metrics(metrics, args.metrics)
    return 0


def _with_observability(args, handler) -> int:
    """Honor ``--trace`` / ``--metrics`` around a subcommand handler."""
    trace_path = getattr(args, "trace", None)
    metrics_dest = getattr(args, "metrics", None)
    if not trace_path and metrics_dest is None:
        return handler(args)
    from .obs import MetricsRegistry, Tracer, write_trace
    from .obs import runtime as obs_runtime

    trace = Tracer()
    metrics = MetricsRegistry()
    with obs_runtime.activated(trace, metrics):
        with trace.span(args.command):
            code = handler(args)
    if trace_path:
        count = write_trace(trace, trace_path)
        print(f"wrote {count} spans to {trace_path}")
    if metrics_dest is not None:
        _export_metrics(metrics, metrics_dest)
    return code


_HANDLERS = {
    "generate": _cmd_generate,
    "info": _cmd_info,
    "append": _cmd_append,
    "shard": _cmd_shard,
    "ingest": _cmd_ingest,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "split": _cmd_split,
    "fleet": _cmd_fleet,
    "top": _cmd_top,
    "convert": _cmd_convert,
    "census": _cmd_census,
    "link": _cmd_link,
    "track": _cmd_track,
    "report": _cmd_report,
    "profile": _cmd_profile,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = _HANDLERS[args.command]
    # profile, ingest, and serve own their tracer/registry lifecycle
    # (the daemons keep them live for their whole run); top and loadgen
    # are pure clients.
    if args.command in ("profile", "ingest", "serve", "top", "loadgen",
                        "fleet"):
        return handler(args)
    return _with_observability(args, handler)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
