"""Simulated-time base.

All simulation timestamps are integer *day indices*, with day 0 anchored at
2000-01-01 UTC.  Certificates, scan schedules, DHCP leases, and the analysis
layer all speak day indices; conversion to calendar dates happens only at
the DER-encoding boundary and in human-facing output.

Using plain ints keeps arithmetic exact and fast, supports the paper's
pathological values (Not After in the year 3000+, Not After *before*
Not Before), and keeps wall-clock time entirely out of the simulation.
"""

from __future__ import annotations

import datetime

__all__ = [
    "EPOCH",
    "MIN_DAY",
    "MAX_DAY",
    "day_to_date",
    "date_to_day",
    "day_to_datetime",
    "datetime_to_day",
    "format_day",
    "UMICH_FIRST_SCAN_DAY",
    "RAPID7_FIRST_SCAN_DAY",
]

#: Day 0 of simulated time.
EPOCH = datetime.date(2000, 1, 1)

#: Smallest day index representable as a ``datetime.date`` (year 1).
MIN_DAY = (datetime.date.min - EPOCH).days
#: Largest day index representable as a ``datetime.date`` (year 9999).
MAX_DAY = (datetime.date.max - EPOCH).days

#: 2012-06-10, the first University of Michigan scan in the paper.
UMICH_FIRST_SCAN_DAY = (datetime.date(2012, 6, 10) - EPOCH).days
#: 2013-10-30, the first Rapid7 scan in the paper.
RAPID7_FIRST_SCAN_DAY = (datetime.date(2013, 10, 30) - EPOCH).days


def day_to_date(day: int) -> datetime.date:
    """Convert a day index to a calendar date."""
    if not MIN_DAY <= day <= MAX_DAY:
        raise ValueError(f"day {day} outside representable calendar range")
    return EPOCH + datetime.timedelta(days=day)


def date_to_day(when: datetime.date) -> int:
    """Convert a calendar date to a day index."""
    return (when - EPOCH).days


def day_to_datetime(day: int) -> datetime.datetime:
    """Day index → naive UTC datetime at midnight (DER boundary helper)."""
    date = day_to_date(day)
    return datetime.datetime(date.year, date.month, date.day)


def datetime_to_day(when: datetime.datetime) -> int:
    """Naive UTC datetime → day index (time-of-day truncated)."""
    return date_to_day(when.date())


def format_day(day: int) -> str:
    """ISO date string for human-facing output."""
    return day_to_date(day).isoformat()
