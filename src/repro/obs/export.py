"""Exporters: JSONL traces, Prometheus-style text, ASCII span trees.

Four consumers, four formats:

* :func:`write_trace` — the machine-readable artifact (``--trace
  out.jsonl``): one JSON object per line, a ``meta`` header first, then
  every span in completion order (schema in ``docs/observability.md``);
* :class:`RotatingJsonlSink` — the streaming twin for daemons: a span
  completion sink (``Tracer.add_sink``) that flushes each span as it
  finishes into size-capped, atomically-rotated JSONL files, with a
  deterministic 1-in-N sampling knob (``REPRO_OBS_SAMPLE``);
* :func:`prometheus_text` — a scrape-style text dump of the registry
  (``repro_dedup_certs_collapsed_total 123``), sorted for diffing —
  also what the live plane's ``/metrics`` endpoint serves;
* :func:`render_span_tree` — the human summary ``repro profile`` prints:
  the span hierarchy with wall/CPU seconds and share of the run, with
  high-cardinality siblings (``scan/day=…`` ×222) collapsed into one
  aggregate line (summed parallel aggregates are marked ``(parallel)``
  and shown against their parent's wall clock).
"""

from __future__ import annotations

import json
import os
import pathlib
import re
from typing import Dict, List, Optional, Union

from .metrics import MetricsRegistry
from .trace import Span, Tracer

__all__ = [
    "write_trace", "prometheus_text", "render_span_tree", "counter_table",
    "RotatingJsonlSink", "SAMPLE_ENV",
]

TRACE_SCHEMA = 1

#: Environment knob: span sampling rate for streaming sinks (a float in
#: (0, 1]; 0.1 keeps every 10th completed span, deterministically).
SAMPLE_ENV = "REPRO_OBS_SAMPLE"

#: Siblings sharing a ``name=value`` pattern collapse past this count.
_COLLAPSE_AT = 4

_VALUE_RE = re.compile(r"=[^/]*")
_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def write_trace(trace: Tracer, path: Union[str, pathlib.Path]) -> int:
    """Write the tracer's spans as JSONL; returns the span count."""
    records = trace.export_spans()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({
            "type": "meta", "schema": TRACE_SCHEMA,
            "process": trace.process, "n_spans": len(records),
        }) + "\n")
        for record in records:
            record["type"] = "span"
            handle.write(json.dumps(record, default=str) + "\n")
    return len(records)


def _metric_name(name: str, suffix: str = "") -> str:
    return "repro_" + _NAME_SANITIZE.sub("_", name) + suffix


def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _grouped(names, suffix: str = "") -> "list[tuple[str, list[str]]]":
    """Registry names grouped by their sanitized exposition name.

    Dots sanitize to underscores, so distinct registry names can land on
    the same output metric (``a.b`` and ``a_b``).  Exposition text allows
    one ``TYPE`` line per metric, so colliding names become one metric
    family with the original registry name carried in a ``name`` label.
    """
    groups: Dict[str, List[str]] = {}
    for name in sorted(names):
        groups.setdefault(_metric_name(name, suffix), []).append(name)
    return sorted(groups.items())


def prometheus_text(metrics: MetricsRegistry) -> str:
    """The registry in Prometheus exposition format (sorted, diffable)."""
    lines: List[str] = []
    for full, group in _grouped(metrics.counters, "_total"):
        lines.append(f"# TYPE {full} counter")
        if len(group) == 1:
            lines.append(f"{full} {metrics.counters[group[0]]}")
        else:
            lines.extend(
                f'{full}{{name="{_escape_label(name)}"}} '
                f"{metrics.counters[name]}"
                for name in group
            )
    for full, group in _grouped(metrics.gauges):
        lines.append(f"# TYPE {full} gauge")
        if len(group) == 1:
            lines.append(f"{full} {metrics.gauges[group[0]]:g}")
        else:
            lines.extend(
                f'{full}{{name="{_escape_label(name)}"}} '
                f"{metrics.gauges[name]:g}"
                for name in group
            )
    for name in sorted(metrics.histograms):
        bounds, counts, total, n = metrics.histograms[name]
        full = _metric_name(name)
        lines.append(f"# TYPE {full} histogram")
        cumulative = 0
        for bound, count in zip(bounds, counts):
            cumulative += count
            lines.append(f'{full}_bucket{{le="{bound:g}"}} {cumulative}')
        lines.append(f'{full}_bucket{{le="+Inf"}} {n}')
        lines.append(f"{full}_sum {total:g}")
        lines.append(f"{full}_count {n}")
    return "\n".join(lines) + ("\n" if lines else "")


class RotatingJsonlSink:
    """Streaming JSONL trace sink for long-running processes.

    Attach with ``tracer.add_sink(sink)``: every completed span is
    serialized and flushed immediately, so a crash loses at most the
    span in flight and a daemon never buffers an unbounded trace.  When
    the live file exceeds ``max_bytes`` it is rotated atomically —
    ``path`` → ``path.1`` → … → ``path.<max_files-1>``, oldest deleted —
    via ``os.replace``, so a tailing reader always sees a complete file.

    Sampling: ``sample`` (default: the ``REPRO_OBS_SAMPLE`` environment
    knob) is a rate in (0, 1]; the sink keeps every ``round(1/rate)``-th
    completed span, counted deterministically, so two identical runs
    sample identical spans.  Each file opens with a ``meta`` header line
    recording the schema, process, rotation sequence, and the stride.
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        max_bytes: int = 4 << 20,
        max_files: int = 4,
        sample: Optional[float] = None,
        process: str = "main",
    ) -> None:
        if max_files < 1:
            raise ValueError("max_files must be at least 1")
        if sample is None:
            raw = os.environ.get(SAMPLE_ENV)
            sample = float(raw) if raw else 1.0
        if not 0.0 < sample <= 1.0:
            raise ValueError(f"sample rate out of (0, 1]: {sample}")
        self.path = pathlib.Path(path)
        self.max_bytes = max_bytes
        self.max_files = max_files
        self.stride = max(1, round(1.0 / sample))
        self.process = process
        self.seen = 0
        self.written = 0
        self.rotations = 0
        self._handle = None
        self._size = 0

    # --- the completion-sink protocol -----------------------------------------

    def __call__(self, span: Span) -> None:
        self.seen += 1
        if (self.seen - 1) % self.stride:
            return
        record = span.to_dict()
        record["type"] = "span"
        line = json.dumps(record, default=str) + "\n"
        if self._handle is None:
            self._open()
        self._handle.write(line)
        self._handle.flush()
        self._size += len(line)
        self.written += 1
        if self._size >= self.max_bytes:
            self._rotate()

    # --- file management -------------------------------------------------------

    def _open(self) -> None:
        header = json.dumps({
            "type": "meta", "schema": TRACE_SCHEMA, "process": self.process,
            "streaming": True, "sequence": self.rotations,
            "sample_stride": self.stride,
        }) + "\n"
        self._handle = open(self.path, "w", encoding="utf-8")
        self._handle.write(header)
        self._handle.flush()
        self._size = len(header)

    def _rotate(self) -> None:
        self._handle.close()
        self._handle = None
        for index in range(self.max_files - 1, 0, -1):
            older = self._rotated_path(index)
            newer = (
                self.path if index == 1 else self._rotated_path(index - 1)
            )
            if newer.exists():
                os.replace(newer, older)
        if self.max_files == 1:
            self.path.unlink(missing_ok=True)
        self.rotations += 1

    def _rotated_path(self, index: int) -> pathlib.Path:
        return self.path.with_name(f"{self.path.name}.{index}")

    def close(self) -> None:
        """Flush and close the live file (rotated files stay in place)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def counter_table(metrics: MetricsRegistry) -> str:
    """Compact human counter summary (name, value), sorted."""
    if not metrics.counters:
        return "(no counters recorded)"
    width = max(len(name) for name in metrics.counters)
    return "\n".join(
        f"{name:<{width}}  {metrics.counters[name]:>12,d}"
        for name in sorted(metrics.counters)
    )


def render_span_tree(trace: Tracer, max_depth: Optional[int] = None) -> str:
    """ASCII tree of the trace: wall, CPU, and share of the run.

    ``share`` is each span's wall clock as a fraction of the run total.
    Collapsed aggregate rows *sum* their members' wall time, and members
    that ran concurrently (worker fan-out) can sum past their parent's
    elapsed wall — such rows are marked ``(parallel)`` and their share is
    computed against the parent's wall clock instead, so ``164.1%`` reads
    as "1.6× parallelism inside this stage", not a bookkeeping error.
    """
    spans = trace.export_spans()
    if not spans:
        return "(no spans recorded)"
    children: Dict[Optional[int], List[dict]] = {}
    for record in spans:
        children.setdefault(record["parent"], []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: (r["start"], r["id"]))
    roots = children.get(None, [])
    total_wall = sum(r["wall"] for r in roots) or 1.0
    name_width = max(
        30,
        min(52, max(2 * _depth(r, spans) + len(r["name"]) for r in spans)),
    )
    lines = [
        f"{'span':<{name_width}} {'wall':>9} {'cpu':>9} {'share':>7}",
    ]

    def emit(record: dict, depth: int, parent_wall: float) -> None:
        indent = "  " * depth
        label = indent + record["name"]
        count = record.get("_count")
        if count:
            label += f"  x{count}"
        share_base = total_wall
        if count and parent_wall and record["wall"] > parent_wall:
            # Summed concurrent siblings exceed the stage's elapsed time.
            label += "  (parallel)"
            share_base = parent_wall
        lines.append(
            f"{label:<{name_width}} {record['wall']:>8.3f}s "
            f"{record['cpu']:>8.3f}s {record['wall'] / share_base:>6.1%}"
        )
        if max_depth is not None and depth + 1 >= max_depth:
            return
        for child in _collapsed(children.get(record["id"], [])):
            emit(child, depth + 1, record["wall"])

    for root in _collapsed(roots):
        emit(root, 0, total_wall)
    return "\n".join(lines)


def _depth(record: dict, spans: List[dict]) -> int:
    by_id = {r["id"]: r for r in spans}
    depth = 0
    parent = record.get("parent")
    while parent is not None and parent in by_id:
        depth += 1
        parent = by_id[parent].get("parent")
    return depth


def _collapsed(siblings: List[dict]) -> List[dict]:
    """Fold large runs of same-shaped siblings into aggregate rows.

    ``scan/day=3 … scan/day=841`` becomes one ``scan/day=*`` row carrying
    the run's summed wall/CPU and a ``x222`` count; small groups render
    individually.  Aggregate rows keep the first member's id so a
    representative subtree can still be descended.
    """
    groups: Dict[str, List[dict]] = {}
    order: List[str] = []
    for record in siblings:
        pattern = _VALUE_RE.sub("=*", record["name"])
        if pattern not in groups:
            order.append(pattern)
        groups.setdefault(pattern, []).append(record)
    result: List[dict] = []
    for pattern in order:
        members = groups[pattern]
        if len(members) < _COLLAPSE_AT:
            result.extend(members)
            continue
        result.append({
            "id": members[0]["id"],
            "parent": members[0]["parent"],
            "name": pattern,
            "start": members[0]["start"],
            "wall": sum(m["wall"] for m in members),
            "cpu": sum(m["cpu"] for m in members),
            "process": members[0]["process"],
            "attrs": {},
            "_count": len(members),
        })
    return result
