"""Exporters: JSONL traces, Prometheus-style text, ASCII span trees.

Three consumers, three formats:

* :func:`write_trace` — the machine-readable artifact (``--trace
  out.jsonl``): one JSON object per line, a ``meta`` header first, then
  every span in completion order (schema in ``docs/observability.md``);
* :func:`prometheus_text` — a scrape-style text dump of the registry
  (``repro_dedup_certs_collapsed_total 123``), sorted for diffing;
* :func:`render_span_tree` — the human summary ``repro profile`` prints:
  the span hierarchy with wall/CPU seconds and share of the run, with
  high-cardinality siblings (``scan/day=…`` ×222) collapsed into one
  aggregate line.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Dict, List, Optional, Union

from .metrics import MetricsRegistry
from .trace import Tracer

__all__ = ["write_trace", "prometheus_text", "render_span_tree", "counter_table"]

TRACE_SCHEMA = 1

#: Siblings sharing a ``name=value`` pattern collapse past this count.
_COLLAPSE_AT = 4

_VALUE_RE = re.compile(r"=[^/]*")
_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def write_trace(trace: Tracer, path: Union[str, pathlib.Path]) -> int:
    """Write the tracer's spans as JSONL; returns the span count."""
    records = trace.export_spans()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({
            "type": "meta", "schema": TRACE_SCHEMA,
            "process": trace.process, "n_spans": len(records),
        }) + "\n")
        for record in records:
            record["type"] = "span"
            handle.write(json.dumps(record, default=str) + "\n")
    return len(records)


def _metric_name(name: str, suffix: str = "") -> str:
    return "repro_" + _NAME_SANITIZE.sub("_", name) + suffix


def prometheus_text(metrics: MetricsRegistry) -> str:
    """The registry in Prometheus exposition format (sorted, diffable)."""
    lines: List[str] = []
    for name in sorted(metrics.counters):
        full = _metric_name(name, "_total")
        lines.append(f"# TYPE {full} counter")
        lines.append(f"{full} {metrics.counters[name]}")
    for name in sorted(metrics.gauges):
        full = _metric_name(name)
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {metrics.gauges[name]:g}")
    for name in sorted(metrics.histograms):
        bounds, counts, total, n = metrics.histograms[name]
        full = _metric_name(name)
        lines.append(f"# TYPE {full} histogram")
        cumulative = 0
        for bound, count in zip(bounds, counts):
            cumulative += count
            lines.append(f'{full}_bucket{{le="{bound:g}"}} {cumulative}')
        lines.append(f'{full}_bucket{{le="+Inf"}} {n}')
        lines.append(f"{full}_sum {total:g}")
        lines.append(f"{full}_count {n}")
    return "\n".join(lines) + ("\n" if lines else "")


def counter_table(metrics: MetricsRegistry) -> str:
    """Compact human counter summary (name, value), sorted."""
    if not metrics.counters:
        return "(no counters recorded)"
    width = max(len(name) for name in metrics.counters)
    return "\n".join(
        f"{name:<{width}}  {metrics.counters[name]:>12,d}"
        for name in sorted(metrics.counters)
    )


def render_span_tree(trace: Tracer, max_depth: Optional[int] = None) -> str:
    """ASCII tree of the trace: wall, CPU, and share of the run."""
    spans = trace.export_spans()
    if not spans:
        return "(no spans recorded)"
    children: Dict[Optional[int], List[dict]] = {}
    for record in spans:
        children.setdefault(record["parent"], []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: (r["start"], r["id"]))
    roots = children.get(None, [])
    total_wall = sum(r["wall"] for r in roots) or 1.0
    name_width = max(
        30,
        min(52, max(2 * _depth(r, spans) + len(r["name"]) for r in spans)),
    )
    lines = [
        f"{'span':<{name_width}} {'wall':>9} {'cpu':>9} {'share':>7}",
    ]

    def emit(record: dict, depth: int) -> None:
        indent = "  " * depth
        label = indent + record["name"]
        count = record.get("_count")
        if count:
            label += f"  x{count}"
        lines.append(
            f"{label:<{name_width}} {record['wall']:>8.3f}s "
            f"{record['cpu']:>8.3f}s {record['wall'] / total_wall:>6.1%}"
        )
        if max_depth is not None and depth + 1 >= max_depth:
            return
        for child in _collapsed(children.get(record["id"], [])):
            emit(child, depth + 1)

    for root in _collapsed(roots):
        emit(root, 0)
    return "\n".join(lines)


def _depth(record: dict, spans: List[dict]) -> int:
    by_id = {r["id"]: r for r in spans}
    depth = 0
    parent = record.get("parent")
    while parent is not None and parent in by_id:
        depth += 1
        parent = by_id[parent].get("parent")
    return depth


def _collapsed(siblings: List[dict]) -> List[dict]:
    """Fold large runs of same-shaped siblings into aggregate rows.

    ``scan/day=3 … scan/day=841`` becomes one ``scan/day=*`` row carrying
    the run's summed wall/CPU and a ``x222`` count; small groups render
    individually.  Aggregate rows keep the first member's id so a
    representative subtree can still be descended.
    """
    groups: Dict[str, List[dict]] = {}
    order: List[str] = []
    for record in siblings:
        pattern = _VALUE_RE.sub("=*", record["name"])
        if pattern not in groups:
            order.append(pattern)
        groups.setdefault(pattern, []).append(record)
    result: List[dict] = []
    for pattern in order:
        members = groups[pattern]
        if len(members) < _COLLAPSE_AT:
            result.extend(members)
            continue
        result.append({
            "id": members[0]["id"],
            "parent": members[0]["parent"],
            "name": pattern,
            "start": members[0]["start"],
            "wall": sum(m["wall"] for m in members),
            "cpu": sum(m["cpu"] for m in members),
            "process": members[0]["process"],
            "attrs": {},
            "_count": len(members),
        })
    return result
