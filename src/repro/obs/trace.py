"""Hierarchical spans: who spent the time, and inside what.

A :class:`Span` is a context manager recording wall-clock and CPU time
for one named region of work; entering a span while another is open links
the two (parent/child), so a run produces a *tree* — the per-stage view
``Study.stage_timings`` can only flatten.  Span names are paths:
stage-level spans are bare (``"dedup"``), detail spans extend their
parent with ``/`` (``"kernels/index"``, ``"link/feature=PUBLIC_KEY"``,
``"scan/day=400"``).  Arbitrary attributes ride along for the exporters.

A :class:`Tracer` owns one tree.  It is deliberately dumb and
deterministic: span ids are assigned by entry order, completed spans are
appended in completion order, and nothing reads the wall clock except
``perf_counter``/``process_time`` deltas — so two runs of the same
pipeline produce structurally identical traces.

Worker processes record into their own tracer and ship completed spans
home with their task results; :meth:`Tracer.adopt` re-numbers them into
the parent's id space and hangs the worker's root spans under the span
that was active when the fan-out started (see :mod:`repro.obs.runtime`).

Long-running processes (the ``repro ingest --watch`` daemon, the future
``repro serve``) cannot buffer a whole run's spans: :meth:`Tracer.add_sink`
streams each span to a callback the moment it completes (the
:class:`~repro.obs.export.RotatingJsonlSink` and the live plane's
latency recorder plug in here), and :attr:`Tracer.retain` bounds the
in-memory completed-span list to a recent tail.  Both are off by
default; the completion path then costs one extra ``None`` check, and
``mark()``/``export_spans()`` keep their exact batch semantics.

When tracing is off, call sites receive :data:`NULL_SPAN` — a shared
no-op context manager — so instrumentation costs one ``None`` check.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class Span:
    """One timed region of work inside a :class:`Tracer`'s tree."""

    __slots__ = (
        "tracer", "name", "attributes", "span_id", "parent_id",
        "start", "wall", "cpu", "process", "_cpu_start",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attributes = attributes
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        #: Offset (seconds) from the tracer's creation instant.
        self.start: float = 0.0
        self.wall: float = 0.0
        self.cpu: float = 0.0
        self.process: str = tracer.process

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes to an open (or completed) span."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        tracer = self.tracer
        self.span_id = tracer._next_id
        tracer._next_id += 1
        if tracer._stack:
            self.parent_id = tracer._stack[-1].span_id
        tracer._stack.append(self)
        self.start = time.perf_counter() - tracer.epoch
        self._cpu_start = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self.tracer
        self.wall = time.perf_counter() - tracer.epoch - self.start
        self.cpu = time.process_time() - self._cpu_start
        popped = tracer._stack.pop()
        assert popped is self, "span exit order violated"
        tracer.spans.append(self)
        if tracer._live is not None:
            tracer._live(self)

    def to_dict(self) -> dict:
        """Plain-data form (picklable, JSON-serializable)."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": round(self.start, 6),
            "wall": round(self.wall, 6),
            "cpu": round(self.cpu, 6),
            "process": self.process,
            "attrs": self.attributes,
        }


class _NullSpan:
    """The off-switch: a shared, reusable, do-nothing span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attributes: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects one run's span tree.

    ``spans`` holds completed spans in completion order (children before
    parents); the open stack provides parent links.  Not thread-safe —
    one tracer per process, cross-process via :meth:`export_spans` /
    :meth:`adopt`.
    """

    def __init__(self, process: str = "main") -> None:
        self.process = process
        self.epoch = time.perf_counter()
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1
        #: Streaming mode (None when off — the batch default): completion
        #: callback driving the sinks and the retain trim.
        self._live = None
        self._sinks: "tuple" = ()
        self._retain: Optional[int] = None
        #: Spans trimmed off the front of ``spans`` by the retain bound;
        #: offsets ``mark()`` so delta exports stay consistent.
        self._dropped = 0

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span, parented under the currently open one on entry."""
        return Span(self, name, attributes)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def export_spans(self, since: int = 0) -> List[dict]:
        """Completed spans (after watermark ``since``) as plain data."""
        return [
            span.to_dict()
            for span in self.spans[max(0, since - self._dropped):]
        ]

    def mark(self) -> int:
        """Watermark for :meth:`export_spans` deltas."""
        return self._dropped + len(self.spans)

    @property
    def completed_total(self) -> int:
        """Spans completed over the tracer's lifetime (trimmed or not)."""
        return self._dropped + len(self.spans)

    # --- streaming (the live plane) -------------------------------------------

    def add_sink(self, sink) -> None:
        """Stream every completed span to ``sink(span)`` as it finishes.

        Sinks run synchronously on the completing thread, in add order.
        Exporters that buffer or rotate (``RotatingJsonlSink``) and the
        live latency recorder both plug in here; a sink must never
        raise (a raising sink would abort the instrumented work).
        """
        self._sinks = (*self._sinks, sink)
        self._live = self._on_complete

    def remove_sink(self, sink) -> None:
        """Detach a previously added sink (missing sinks are ignored)."""
        self._sinks = tuple(s for s in self._sinks if s is not sink)
        if not self._sinks and self._retain is None:
            self._live = None

    @property
    def retain(self) -> Optional[int]:
        """Completed-span tail length to keep in memory (None: unbounded)."""
        return self._retain

    @retain.setter
    def retain(self, value: Optional[int]) -> None:
        if value is not None and value < 1:
            raise ValueError("retain must be a positive span count")
        self._retain = value
        if value is not None:
            self._live = self._on_complete
            self._trim()
        elif not self._sinks:
            self._live = None

    def _on_complete(self, span: Span) -> None:
        for sink in self._sinks:
            sink(span)
        if self._retain is not None:
            self._trim()

    def _trim(self) -> None:
        excess = len(self.spans) - self._retain
        if excess > 0:
            del self.spans[:excess]
            self._dropped += excess

    def adopt(self, exported: List[dict], parent_id: Optional[int] = None) -> None:
        """Graft spans exported from another tracer into this tree.

        Ids are re-assigned from this tracer's counter (entry order is
        unknowable, so adoption order stands in for it); spans whose
        parent is not part of the shipment — the worker's roots — are
        hung under ``parent_id`` (defaulting to the currently open span).
        """
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].span_id
        shipped = {record["id"] for record in exported}
        id_map: Dict[int, int] = {}
        for record in exported:
            id_map[record["id"]] = self._next_id
            self._next_id += 1
        for record in exported:
            span = Span(self, record["name"], dict(record.get("attrs") or {}))
            span.span_id = id_map[record["id"]]
            old_parent = record.get("parent")
            span.parent_id = (
                id_map[old_parent] if old_parent in shipped else parent_id
            )
            span.start = record.get("start", 0.0)
            span.wall = record.get("wall", 0.0)
            span.cpu = record.get("cpu", 0.0)
            span.process = record.get("process", "worker")
            self.spans.append(span)
            if self._live is not None:
                self._live(span)
