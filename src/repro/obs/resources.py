"""Process resource telemetry: memory, descriptors, CPU, paging deltas.

The readers here are zero-dependency ``/proc`` parsers (promoted out of
``benchmarks/bench_perf_substrates.py``, which now imports them), each
degrading to ``None`` where the kernel surface is missing so callers can
run unchanged off-Linux:

* :func:`rss_bytes` / :func:`uss_bytes` — resident and unique set sizes
  from ``/proc/self/smaps_rollup`` (USS = ``Private_Clean`` +
  ``Private_Dirty``: the pages this process holds that nobody shares —
  mapped corpus columns live in the shared page cache, so a worker's USS
  is exactly what the fan-out *adds* per process);
* :func:`open_fds` — open descriptor count from ``/proc/self/fd``;
* :func:`cpu_seconds` — user+system CPU from ``os.times()`` (portable).

:func:`sample_into` publishes one reading of everything as gauges on a
:class:`~repro.obs.metrics.MetricsRegistry` (``process.rss_bytes``,
``process.uss_bytes``, ``process.open_fds``, ``process.cpu_seconds``),
plus paging telemetry: the global ``io.bytes_materialized`` counter's
delta since the previous sample as ``io.bytes_materialized_delta``, and
a cumulative ``io.materialized_bytes.<label>`` gauge per watched mapped
container (the bytes its reader has decoded out of the map so far).

:class:`ResourceSampler` wraps that in a daemon thread for long-running
processes — the live plane's ``/metrics`` endpoint then exports current
resource gauges on every scrape.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional

from .metrics import MetricsRegistry

__all__ = [
    "smaps_rollup",
    "rss_bytes",
    "uss_bytes",
    "open_fds",
    "cpu_seconds",
    "sample_into",
    "ResourceSampler",
]

_SMAPS_PATH = "/proc/self/smaps_rollup"
_FD_PATH = "/proc/self/fd"

_KIB_FIELDS = ("Rss", "Pss", "Private_Clean", "Private_Dirty", "Swap")


def smaps_rollup() -> Optional[Dict[str, int]]:
    """Parsed ``/proc/self/smaps_rollup`` in bytes, or None off-Linux."""
    try:
        with open(_SMAPS_PATH) as rollup:
            text = rollup.read()
    except OSError:
        return None
    fields: Dict[str, int] = {}
    for line in text.splitlines():
        name, _, rest = line.partition(":")
        if name in _KIB_FIELDS:
            fields[name] = int(rest.split()[0]) * 1024
    return fields


def rss_bytes() -> Optional[int]:
    """This process's resident set size, or None off-Linux."""
    fields = smaps_rollup()
    return None if fields is None else fields.get("Rss")


def uss_bytes() -> Optional[int]:
    """This process's unique set size, or None off-Linux.

    ``Private_Clean + Private_Dirty``: the pages this process holds that
    no one else shares.  Mapped columns live in the (shared) page cache,
    so a worker's USS is exactly the memory the fan-out *adds* per
    process.
    """
    fields = smaps_rollup()
    if fields is None:
        return None
    return fields.get("Private_Clean", 0) + fields.get("Private_Dirty", 0)


def open_fds() -> Optional[int]:
    """Open file-descriptor count, or None where /proc/self/fd is absent."""
    try:
        return len(os.listdir(_FD_PATH))
    except OSError:
        return None


def cpu_seconds() -> float:
    """User + system CPU seconds consumed by this process (portable)."""
    times = os.times()
    return times.user + times.system


def sample_into(
    registry: MetricsRegistry,
    watched: Optional[dict] = None,
    previous_materialized: Optional[int] = None,
) -> Dict[str, float]:
    """Publish one resource reading as gauges; returns what was set.

    ``watched`` maps a label to an object with a ``bytes_materialized``
    attribute (a :class:`~repro.io.encoding.SegmentReader` or a backend
    exposing its reader) — each is published as the cumulative gauge
    ``io.materialized_bytes.<label>``.  ``previous_materialized`` is the
    global ``io.bytes_materialized`` counter at the previous sample; when
    given, the delta is published as ``io.bytes_materialized_delta``.
    """
    sampled: Dict[str, float] = {}
    memory = smaps_rollup()
    if memory is not None:
        sampled["process.rss_bytes"] = float(memory.get("Rss", 0))
        sampled["process.uss_bytes"] = float(
            memory.get("Private_Clean", 0) + memory.get("Private_Dirty", 0)
        )
    fds = open_fds()
    if fds is not None:
        sampled["process.open_fds"] = float(fds)
    sampled["process.cpu_seconds"] = cpu_seconds()
    if previous_materialized is not None:
        current = registry.counters.get("io.bytes_materialized", 0)
        sampled["io.bytes_materialized_delta"] = float(
            current - previous_materialized
        )
    for label, reader in (watched or {}).items():
        sampled[f"io.materialized_bytes.{label}"] = float(
            getattr(reader, "bytes_materialized", 0)
        )
    for name, value in sampled.items():
        registry.gauge(name, value)
    return sampled


class ResourceSampler:
    """Background thread publishing resource gauges at a fixed cadence.

    The thread is a daemon — it never blocks interpreter exit — and
    wakes immediately on :meth:`stop`.  One sample is taken synchronously
    at :meth:`start`, so the gauges exist before the first scrape.
    """

    def __init__(
        self, registry: MetricsRegistry, interval: float = 5.0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive seconds")
        self.registry = registry
        self.interval = interval
        self.samples = 0
        self._watched: Dict[str, object] = {}
        self._previous: Optional[int] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def watch(self, label: str, reader) -> None:
        """Track a mapped container's per-reader materialization gauge."""
        self._watched[label] = reader

    def sample(self) -> Dict[str, float]:
        """One synchronous reading (also what the thread runs)."""
        sampled = sample_into(
            self.registry, self._watched, previous_materialized=self._previous
        )
        self._previous = self.registry.counters.get("io.bytes_materialized", 0)
        self.samples += 1
        return sampled

    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self.sample()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-resources", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def stop(self) -> None:
        """Stop the thread (idempotent; joins briefly)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
