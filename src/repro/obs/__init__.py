"""repro.obs — zero-dependency pipeline observability.

Batch layers, all importable from here:

* :mod:`~repro.obs.trace`   — hierarchical spans (wall/CPU, parent
  links, attributes) collected by a per-run :class:`Tracer`;
* :mod:`~repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and histograms, with deterministic cross-process merging and
  :func:`estimate_quantile` over the exact bucket ladder;
* :mod:`~repro.obs.export`  — JSONL trace files, Prometheus-style text,
  the streaming :class:`RotatingJsonlSink`, and the ASCII span tree
  behind ``repro profile``.

Live layers, for long-running processes:

* :mod:`~repro.obs.live`      — :class:`LiveServer` (``/metrics``,
  ``/healthz``, ``/vars`` over stdlib HTTP), :class:`LatencyRecorder`,
  and the ``repro top`` frame renderer;
* :mod:`~repro.obs.resources` — ``/proc`` readers and the background
  :class:`ResourceSampler` publishing ``process.*`` gauges.

:mod:`~repro.obs.runtime` holds the process-wide activation switch the
instrumentation points check; off by default, everything is a guarded
no-op.  See ``docs/observability.md`` for naming schemes and schemas.
"""

from .export import (
    RotatingJsonlSink,
    counter_table,
    prometheus_text,
    render_span_tree,
    write_trace,
)
from .live import LatencyRecorder, LiveServer, render_top
from .metrics import MetricsRegistry, estimate_quantile
from .resources import ResourceSampler
from .trace import NULL_SPAN, Span, Tracer

__all__ = [
    "Tracer", "Span", "NULL_SPAN", "MetricsRegistry", "estimate_quantile",
    "write_trace", "prometheus_text", "render_span_tree", "counter_table",
    "RotatingJsonlSink", "LiveServer", "LatencyRecorder", "render_top",
    "ResourceSampler",
]
