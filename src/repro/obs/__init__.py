"""repro.obs — zero-dependency pipeline observability.

Three layers, all importable from here:

* :mod:`~repro.obs.trace`   — hierarchical spans (wall/CPU, parent
  links, attributes) collected by a per-run :class:`Tracer`;
* :mod:`~repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and histograms, with deterministic cross-process merging;
* :mod:`~repro.obs.export`  — JSONL trace files, Prometheus-style text,
  and the ASCII span tree behind ``repro profile``.

:mod:`~repro.obs.runtime` holds the process-wide activation switch the
instrumentation points check; off by default, everything is a guarded
no-op.  See ``docs/observability.md`` for naming schemes and schemas.
"""

from .export import counter_table, prometheus_text, render_span_tree, write_trace
from .metrics import MetricsRegistry
from .trace import NULL_SPAN, Span, Tracer

__all__ = [
    "Tracer", "Span", "NULL_SPAN", "MetricsRegistry",
    "write_trace", "prometheus_text", "render_span_tree", "counter_table",
]
