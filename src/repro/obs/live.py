"""The live observability plane: HTTP endpoints over a running process.

Batch runs export their trace/metrics *after* the fact (``--trace``,
``--metrics``).  Long-running processes — the ``repro ingest --watch``
daemon, the future ``repro serve`` — need the inverse: a way to look at
a process that has not finished.  :class:`LiveServer` is that window, a
stdlib-threaded HTTP endpoint bound to an explicit tracer/registry pair:

* ``GET /metrics``  — the registry in Prometheus exposition format
  (:func:`~repro.obs.export.prometheus_text`), scrapeable by anything;
* ``GET /healthz``  — liveness JSON: status, pid, uptime, completed-span
  totals, the last completed span, plus caller-supplied health facts
  (the watch daemon publishes ``last_append_day`` here);
* ``GET /vars``     — a full JSON snapshot: counters, gauges, histograms
  (with p50/p99 estimates from the exact bucket ladder), health, and a
  recent-span tail — the feed ``repro top`` renders.

Scrapes read live dicts without locking: registry cells are mutated by
scalar assignment under the GIL, so a scrape may straddle two updates
but never sees torn values — fine for monitoring, by design.

:class:`LatencyRecorder` is the bridge from spans to histograms: a
completion sink (``tracer.add_sink``) that buckets each root span's wall
clock into ``latency.<stage>`` milliseconds, giving ``/metrics`` stage
latency distributions and ``/vars`` their p50/p99 without retaining the
spans themselves.

Everything here is opt-in and owns no global state: construct, ``start``
(ephemeral port supported: ``port=0``), ``stop``.  Nothing in the
pipeline's hot path knows the plane exists.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

from .export import prometheus_text
from .metrics import MetricsRegistry, estimate_quantile
from .trace import Span, Tracer

__all__ = ["LiveServer", "LatencyRecorder", "render_top"]

#: Millisecond bucket ladder for stage latencies: the default 1/2/5 run,
#: extended down to sub-millisecond so fast stages still resolve a p50.
LATENCY_BUCKETS_MS = (
    0.1, 0.25, 0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500,
    1000, 2500, 5000, 10000, 25000, 60000,
)


class LatencyRecorder:
    """Span-completion sink bucketing root-span wall time per stage.

    Only *root* path components are bucketed (``ingest/append_day``
    records under ``latency.ingest``): detail spans would double-count
    their parents' time.  Values are milliseconds on the extended 1/2/5
    ladder, so merged histograms and quantile estimates stay exact.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    def __call__(self, span: Span) -> None:
        if span.parent_id is not None:
            return
        root = span.name.split("/", 1)[0]
        self.registry.observe(
            f"latency.{root}", span.wall * 1000.0, buckets=LATENCY_BUCKETS_MS
        )


def _histogram_summary(cell) -> dict:
    """One histogram cell as JSON-friendly summary with p50/p99."""
    bounds, counts, total, n = cell
    return {
        "count": n,
        "sum": total,
        "p50": estimate_quantile(cell, 0.50),
        "p99": estimate_quantile(cell, 0.99),
        "buckets": {f"{bound:g}": count
                    for bound, count in zip(bounds, counts)},
        "overflow": counts[-1],
    }


class LiveServer:
    """Threaded HTTP endpoint exposing a tracer/registry pair live.

    Bound to explicit objects, not the process-wide runtime state, so a
    test can run several servers side by side.  ``health`` is a caller-
    owned dict merged into ``/healthz`` and ``/vars`` on every request —
    the owner mutates it in place (``health["last_append_day"] = 413``)
    and the next scrape sees it.  ``port=0`` binds an ephemeral port;
    read :attr:`port` / :attr:`url` after :meth:`start`.
    """

    def __init__(
        self,
        tracer: Tracer,
        registry: MetricsRegistry,
        health: Optional[Dict] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        span_tail: int = 20,
    ) -> None:
        self.tracer = tracer
        self.registry = registry
        self.health = health if health is not None else {}
        self.host = host
        self.port = port
        self.span_tail = span_tail
        self.requests = 0
        self._started: Optional[float] = None
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # --- endpoint payloads -----------------------------------------------------

    def metrics_text(self) -> str:
        return prometheus_text(self.registry)

    def healthz(self) -> dict:
        spans = self.tracer.spans
        last = spans[-1] if spans else None
        payload = {
            "status": "ok",
            "pid": os.getpid(),
            "process": self.tracer.process,
            "uptime_seconds": (
                round(time.time() - self._started, 3) if self._started else 0.0
            ),
            "spans_completed": self.tracer.completed_total,
            "last_span": None if last is None else {
                "name": last.name,
                "wall": round(last.wall, 6),
                "start": round(last.start, 6),
            },
        }
        payload.update(self.health)
        return payload

    def vars(self) -> dict:
        registry = self.registry
        return {
            "health": self.healthz(),
            "counters": dict(registry.counters),
            "gauges": dict(registry.gauges),
            "histograms": {
                name: _histogram_summary(cell)
                for name, cell in registry.histograms.items()
            },
            "spans": self.tracer.export_spans(
                since=self.tracer.completed_total - self.span_tail
            ),
        }

    def handle_path(self, path: str) -> "Optional[tuple[bytes, str]]":
        """Route one observability path to ``(body, content_type)``.

        The single routing table behind both transports: the threaded
        handler below and the asyncio query plane (``repro.serve.http``)
        call this, so the two servers cannot drift.  Returns ``None``
        for paths the plane does not own (the caller 404s, or falls
        through to its own routes); exceptions propagate (the caller
        maps them to 500).
        """
        path = path.split("?", 1)[0]
        if path == "/metrics":
            return (
                self.metrics_text().encode(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/healthz":
            return (
                (json.dumps(self.healthz(), default=str) + "\n").encode(),
                "application/json",
            )
        if path == "/vars":
            return (
                (json.dumps(self.vars(), default=str) + "\n").encode(),
                "application/json",
            )
        return None

    # --- lifecycle -------------------------------------------------------------

    def start(self) -> "LiveServer":
        if self._httpd is not None:
            raise RuntimeError("server already started")
        plane = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server protocol
                plane.requests += 1
                try:
                    routed = plane.handle_path(self.path)
                    if routed is None:
                        self.send_error(404, "unknown endpoint")
                        return
                    body, ctype = routed
                except Exception as exc:  # pragma: no cover - defensive
                    self.send_error(500, str(exc))
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                """Scrapes must not spam the daemon's stderr."""

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._started = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-obs-live",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Shut the listener down (idempotent)."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None


def render_top(
    snapshot: dict,
    previous: Optional[dict] = None,
    interval: Optional[float] = None,
) -> str:
    """One ``repro top`` frame from a ``/vars`` snapshot.

    ``previous``/``interval`` (the prior snapshot and the seconds between
    them) turn counters into per-second rates; the first frame shows
    totals only.
    """
    health = snapshot.get("health", {})
    gauges = snapshot.get("gauges", {})
    counters = snapshot.get("counters", {})
    lines = [
        "repro top — {process} (pid {pid})  uptime {uptime:.0f}s  "
        "spans {spans}".format(
            process=health.get("process", "?"),
            pid=health.get("pid", "?"),
            uptime=float(health.get("uptime_seconds", 0.0)),
            spans=health.get("spans_completed", 0),
        ),
    ]
    rss = gauges.get("process.rss_bytes")
    uss = gauges.get("process.uss_bytes")
    cpu = gauges.get("process.cpu_seconds")
    fds = gauges.get("process.open_fds")
    if rss is not None or cpu is not None:
        lines.append(
            "  rss {rss}  uss {uss}  cpu {cpu}  fds {fds}".format(
                rss=_fmt_bytes(rss),
                uss=_fmt_bytes(uss),
                cpu="?" if cpu is None else f"{cpu:.1f}s",
                fds="?" if fds is None else int(fds),
            )
        )
    if "last_append_day" in health:
        lines.append(
            "  last append day {day}  ingested files {files}".format(
                day=health.get("last_append_day"),
                files=health.get("files_ingested", 0),
            )
        )
    if counters:
        lines.append("  counters:")
        base = (previous or {}).get("counters", {})
        for name in sorted(counters):
            value = counters[name]
            row = f"    {name:<36} {value:>14,d}"
            if previous is not None and interval:
                rate = (value - base.get(name, 0)) / interval
                row += f"  {rate:>10,.1f}/s"
            lines.append(row)
    histograms = snapshot.get("histograms", {})
    latency = {
        name: cell for name, cell in histograms.items()
        if name.startswith("latency.")
    }
    if latency:
        lines.append("  stage latency (ms):")
        for name in sorted(latency):
            cell = latency[name]
            p50, p99 = cell.get("p50"), cell.get("p99")
            lines.append(
                "    {name:<36} n={n:<7} p50={p50} p99={p99}".format(
                    name=name[len("latency."):],
                    n=cell.get("count", 0),
                    p50="?" if p50 is None else f"{p50:.2f}",
                    p99="?" if p99 is None else f"{p99:.2f}",
                )
            )
    return "\n".join(lines)


def _fmt_bytes(value: Optional[float]) -> str:
    if value is None:
        return "?"
    scaled = float(value)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if scaled < 1024 or unit == "TiB":
            return f"{scaled:,.1f}{unit}" if unit != "B" else f"{int(scaled)}B"
        scaled /= 1024
    return f"{scaled:,.1f}TiB"
