"""The metrics registry: counters, gauges, histograms, and their merges.

Names follow ``<subsystem>.<event>`` (``dedup.certs_collapsed``,
``kernels.cache_hits``); see ``docs/observability.md`` for the full
catalogue.  All three kinds are plain dicts of numbers, so a registry
pickles, snapshots, and diffs cheaply:

* **counters** — monotonically increasing integers;
* **gauges**   — last-observed values (merged by ``max``, the only
  associative/commutative choice that keeps parallel runs deterministic);
* **histograms** — fixed-bound bucket counts plus sum/count, so merged
  histograms are exact, not approximations.

Cross-process flow: a worker installs its own registry, each task ships
``delta_since(mark)`` home with its result, and the parent ``merge``\\ s
the deltas.  Counters and histogram buckets are sums, so the merged
totals are bitwise-equal to a serial run no matter how tasks were
scheduled across workers.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Optional, Sequence, Tuple

__all__ = ["MetricsRegistry", "DEFAULT_BUCKETS", "estimate_quantile"]

#: Default histogram bucket upper bounds — a 1/2/5 ladder wide enough for
#: group sizes, scan counts, and millisecond timings alike.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)


def estimate_quantile(histogram: Sequence, q: float) -> Optional[float]:
    """Estimate the ``q``-quantile of one bucketed histogram entry.

    ``histogram`` is the registry's ``[bounds, counts, sum, n]`` cell.
    The estimate interpolates linearly inside the bucket holding the
    target rank — exact to within one bucket of the 1/2/5 ladder, which
    is the usual Prometheus ``histogram_quantile`` accuracy contract.
    Samples past the last bound (the ``+Inf`` bucket) clamp to the last
    finite bound; an empty histogram returns None.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile out of range: {q}")
    bounds, counts, _, n = histogram
    if not n:
        return None
    rank = q * n
    cumulative = 0
    for index, count in enumerate(counts):
        if not count:
            continue
        cumulative += count
        if cumulative >= rank:
            if index >= len(bounds):
                # Overflow bucket: no finite upper edge to interpolate to.
                return float(bounds[-1])
            lower = float(bounds[index - 1]) if index else 0.0
            upper = float(bounds[index])
            fraction = (rank - (cumulative - count)) / count
            return lower + (upper - lower) * fraction
    return float(bounds[-1])


class MetricsRegistry:
    """One process' metric state; merge-able across processes."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        #: name → (bounds, bucket counts [len(bounds)+1 with +inf], sum, count)
        self.histograms: Dict[str, list] = {}

    # --- recording -------------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add to a counter (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of a gauge."""
        self.gauges[name] = value

    def observe(
        self, name: str, value: float,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        """Add one sample to a histogram (bounds fixed at first use)."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = [
                buckets, [0] * (len(buckets) + 1), 0.0, 0,
            ]
        bounds, counts, _, _ = histogram
        counts[bisect_left(bounds, value)] += 1
        histogram[2] += value
        histogram[3] += 1

    def observe_many(self, name: str, values: Iterable[float]) -> None:
        """Bulk :meth:`observe` — one call per loop, not per sample."""
        for value in values:
            self.observe(name, value)

    # --- snapshots and merging -------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data copy of the whole registry (picklable)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: [bounds, list(counts), total, n]
                for name, (bounds, counts, total, n) in self.histograms.items()
            },
        }

    def delta_since(self, mark: dict) -> dict:
        """What was recorded since ``mark`` (an earlier :meth:`snapshot`).

        Counters and histogram buckets subtract; gauges report their
        current value (a gauge *is* its latest reading).  Zero-valued
        counter deltas are dropped so idle tasks ship nothing.
        """
        base_counters = mark["counters"]
        counters = {
            name: value - base_counters.get(name, 0)
            for name, value in self.counters.items()
            if value != base_counters.get(name, 0)
        }
        base_hists = mark["histograms"]
        histograms = {}
        for name, (bounds, counts, total, n) in self.histograms.items():
            base = base_hists.get(name)
            if base is None:
                histograms[name] = [bounds, list(counts), total, n]
                continue
            if n == base[3]:
                continue
            histograms[name] = [
                bounds,
                [now - then for now, then in zip(counts, base[1])],
                total - base[2],
                n - base[3],
            ]
        return {
            "counters": counters,
            "gauges": dict(self.gauges),
            "histograms": histograms,
        }

    def merge(self, delta: Optional[dict]) -> None:
        """Fold another registry's snapshot/delta into this one.

        Counters and histograms add; gauges keep the maximum.  Both are
        order-independent, so merging worker deltas in any schedule
        yields identical totals.
        """
        if not delta:
            return
        for name, value in delta["counters"].items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in delta["gauges"].items():
            current = self.gauges.get(name)
            self.gauges[name] = value if current is None else max(current, value)
        for name, (bounds, counts, total, n) in delta["histograms"].items():
            histogram = self.histograms.get(name)
            if histogram is None:
                self.histograms[name] = [tuple(bounds), list(counts), total, n]
                continue
            histogram[1] = [a + b for a, b in zip(histogram[1], counts)]
            histogram[2] += total
            histogram[3] += n
