"""Process-wide observability state and the worker shipping protocol.

The pipeline's instrumentation points (scan engine, dedup, linking,
kernels, consistency, tracking) call the module-level helpers here —
:func:`span`, :func:`inc`, :func:`observe`, :func:`gauge`.  When nothing
has been activated they are guarded no-ops (one global load and a
``None`` check), so an un-observed run pays effectively nothing.

Activation installs a (:class:`~repro.obs.trace.Tracer`,
:class:`~repro.obs.metrics.MetricsRegistry`) pair as the process-wide
sink; :class:`~repro.study.Study` activates around each stage, the CLI
around whole commands.  Setting ``REPRO_OBS=1`` in the environment
activates a default pair at import, so any run — including the parity
suite — can be traced without code changes.

Cross-process protocol (used by ``engine.run_campaign`` and
``pipeline.evaluate_all_features``):

1. the parent passes ``enabled()`` to the pool initializer, which calls
   :func:`install_worker` — a *fresh* tracer/registry per worker,
   replacing any state inherited over ``fork``;
2. each task brackets its work with :func:`task_mark` /
   :func:`task_delta` and ships the delta home with its result;
3. the parent calls :func:`absorb` on each delta, in task order —
   metric merges are commutative sums, so worker totals are
   bitwise-identical to a serial run.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional, Tuple

from .metrics import MetricsRegistry
from .trace import NULL_SPAN, Tracer

__all__ = [
    "OBS_ENV", "enabled", "tracer", "registry", "span", "inc", "observe",
    "gauge", "activate", "deactivate", "activated", "install_worker",
    "task_mark", "task_delta", "absorb",
]

#: Environment knob: activate a default tracer/registry at import.
OBS_ENV = "REPRO_OBS"

_TRACER: Optional[Tracer] = None
_REGISTRY: Optional[MetricsRegistry] = None


def enabled() -> bool:
    """True when an observability sink is installed in this process."""
    return _REGISTRY is not None


def tracer() -> Optional[Tracer]:
    """The active tracer, or None."""
    return _TRACER


def registry() -> Optional[MetricsRegistry]:
    """The active metrics registry, or None."""
    return _REGISTRY


# --- instrumentation points (no-op fast path) ----------------------------------

def span(name: str, **attributes):
    """A span on the active tracer, or the shared no-op span."""
    if _TRACER is None:
        return NULL_SPAN
    return _TRACER.span(name, **attributes)


def inc(name: str, value: int = 1) -> None:
    """Bump a counter on the active registry, if any."""
    if _REGISTRY is not None:
        _REGISTRY.inc(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram sample on the active registry, if any."""
    if _REGISTRY is not None:
        _REGISTRY.observe(name, value)


def gauge(name: str, value: float) -> None:
    """Record a gauge reading on the active registry, if any."""
    if _REGISTRY is not None:
        _REGISTRY.gauge(name, value)


# --- activation ----------------------------------------------------------------

def activate(
    trace: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[Tracer, MetricsRegistry]:
    """Install (and return) the process-wide tracer/registry pair."""
    global _TRACER, _REGISTRY
    _TRACER = trace if trace is not None else Tracer()
    _REGISTRY = metrics if metrics is not None else MetricsRegistry()
    return _TRACER, _REGISTRY


def deactivate() -> None:
    """Remove the process-wide sink (instrumentation back to no-ops)."""
    global _TRACER, _REGISTRY
    _TRACER = None
    _REGISTRY = None


@contextmanager
def activated(trace: Tracer, metrics: MetricsRegistry):
    """Scoped :func:`activate`; restores the previous sink on exit.

    Re-entrant: activating the pair that is already active just keeps
    recording into it, so nested stages compose.
    """
    global _TRACER, _REGISTRY
    previous = (_TRACER, _REGISTRY)
    _TRACER, _REGISTRY = trace, metrics
    try:
        yield
    finally:
        _TRACER, _REGISTRY = previous


# --- cross-process shipping ----------------------------------------------------

def install_worker(parent_enabled: bool) -> None:
    """Pool-initializer hook: fresh per-worker sink (or none at all).

    Always resets — under ``fork`` the child inherits the parent's
    tracer/registry objects, and recording into those copies would
    silently drop metrics (the parent never sees them).
    """
    if parent_enabled:
        activate(Tracer(process=f"worker-{os.getpid()}"), MetricsRegistry())
    else:
        deactivate()


def task_mark() -> Optional[tuple]:
    """Watermark of the worker's sink before one task runs."""
    if _REGISTRY is None:
        return None
    return (_REGISTRY.snapshot(), _TRACER.mark())


def task_delta(mark: Optional[tuple]) -> Optional[dict]:
    """What one task recorded since its :func:`task_mark` (picklable)."""
    if mark is None or _REGISTRY is None:
        return None
    metrics_mark, span_mark = mark
    return {
        "metrics": _REGISTRY.delta_since(metrics_mark),
        "spans": _TRACER.export_spans(since=span_mark),
        "process": _TRACER.process,
    }


def absorb(delta: Optional[dict]) -> None:
    """Parent-side merge of one task's shipped delta."""
    if not delta or _REGISTRY is None:
        return
    _REGISTRY.merge(delta.get("metrics"))
    spans = delta.get("spans")
    if spans and _TRACER is not None:
        _TRACER.adopt(spans)


if os.environ.get(OBS_ENV):  # pragma: no cover - exercised via subprocess tests
    activate()
