"""The asyncio HTTP/1.1 shell over :class:`~repro.serve.engine.QueryEngine`.

Stdlib only, like :mod:`repro.obs.live` — but built on ``asyncio`` with
keep-alive connections, because the serve workload is thousands of
small concurrent lookups where per-request connection setup would
dominate.  The division of labor keeps the event loop unblocked:

* responses already in the engine's LRU are written straight from the
  loop (a dict hit — no executor round trip, no serialization);
* cache misses run :meth:`QueryEngine.respond` on the default thread
  executor, and heavy queries inside it fan out to the engine's
  process pool — the loop keeps serving hot lookups meanwhile;
* observability paths (``/metrics``, ``/healthz``, ``/vars``) are
  routed through the *same* :meth:`LiveServer.handle_path` table the
  threaded plane uses, so the two transports cannot drift.

Every request bumps ``serve.requests`` (exported as
``repro_serve_requests_total``) and lands one sample in the
per-endpoint ``latency.serve.<endpoint>`` histogram family on the live
plane's bucket ladder.  With observability on (``REPRO_OBS=1``), each
request additionally completes one ``serve/<endpoint>`` span carrying
status, response size, and duration attributes — streamed through
whatever sinks the active tracer wears.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Optional, Tuple

from ..obs import runtime as obs_runtime
from ..obs.live import LATENCY_BUCKETS_MS, LiveServer
from ..obs.metrics import MetricsRegistry
from .engine import QueryEngine, QueryError

__all__ = ["QueryServer"]

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 500: "Internal Server Error",
}

#: Endpoint labels with their own latency family; anything else lands
#: in ``other`` so arbitrary request paths cannot mint new metrics.
_ENDPOINTS = frozenset({
    "cert", "key", "track", "census", "sample", "as", "fleet",
    "metrics", "healthz", "vars",
})


def endpoint_of(target: str) -> str:
    """The bounded endpoint label for one request target."""
    path = target.split("?", 1)[0]
    head = next((part for part in path.split("/") if part), "")
    return head if head in _ENDPOINTS else "other"


def _record_span(
    name: str, started: float, **attributes: "object"
) -> None:
    """Complete one backdated span covering [started, now].

    Request handling suspends at ``await`` points, so a span held open
    across the request would interleave with other requests' spans and
    break the tracer's LIFO stack.  Instead the span is entered and
    exited back-to-back once the response is known, with its start
    rewound to the request's arrival — sinks (the live latency
    recorder, streaming JSONL) see the true duration.
    """
    tracer = obs_runtime.tracer()
    if tracer is None:
        return
    span = tracer.span(name, **attributes)
    span.__enter__()
    span.start = started - tracer.epoch
    span.__exit__(None, None, None)


class QueryServer:
    """One listening query plane over one engine."""

    def __init__(
        self,
        engine: QueryEngine,
        live: Optional[LiveServer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.engine = engine
        self.live = live
        self.registry = (
            live.registry if live is not None else MetricsRegistry()
        )
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # --- lifecycle -------------------------------------------------------------

    async def start(self) -> "QueryServer":
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.live is not None and self.live._started is None:
            # The live plane's own thread never starts here — this
            # server fronts its routes — but /healthz uptime should
            # still tick from serve boot.
            self.live._started = time.time()
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.engine.close()

    # --- protocol --------------------------------------------------------------

    async def _connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, *rest = (
                        request_line.decode("latin-1").split()
                    )
                except ValueError:
                    break
                keep_alive = not rest or rest[0] != "HTTP/1.0"
                while True:
                    header = await reader.readline()
                    if header in (b"", b"\r\n", b"\n"):
                        break
                    lowered = header.lower()
                    if lowered.startswith(b"connection:"):
                        keep_alive = b"close" not in lowered
                status, body, ctype = await self._respond(method, target)
                connection = "keep-alive" if keep_alive else "close"
                writer.write(
                    (
                        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                        f"Content-Type: {ctype}\r\n"
                        f"Content-Length: {len(body)}\r\n"
                        f"Connection: {connection}\r\n\r\n"
                    ).encode() + body
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self, method: str, target: str
    ) -> Tuple[int, bytes, str]:
        started = time.perf_counter()
        endpoint = endpoint_of(target)
        self.registry.inc("serve.requests")
        status = 500
        body = b""
        try:
            if method != "GET":
                raise QueryError(405, f"method not served: {method}")
            path = target.split("?", 1)[0]
            if self.live is not None:
                routed = self.live.handle_path(path)
                if routed is not None:
                    status = 200
                    body = routed[0]
                    return (200, *routed)
            body = self.engine.cached(path)
            if body is None:
                body = await asyncio.get_running_loop().run_in_executor(
                    None, self.engine.respond, path
                )
            status = 200
            return 200, body, "application/json"
        except QueryError as error:
            self.registry.inc("serve.errors")
            status = error.status
            body = (json.dumps({"error": error.message}) + "\n").encode()
            return status, body, "application/json"
        except Exception as error:  # pragma: no cover - defensive
            self.registry.inc("serve.errors")
            status = 500
            body = (json.dumps({"error": str(error)}) + "\n").encode()
            return 500, body, "application/json"
        finally:
            self.registry.observe(
                f"latency.serve.{endpoint}",
                (time.perf_counter() - started) * 1000.0,
                buckets=LATENCY_BUCKETS_MS,
            )
            if obs_runtime.enabled():
                _record_span(
                    f"serve/{endpoint}", started,
                    status=status, bytes=len(body),
                )
