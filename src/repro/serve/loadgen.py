"""The closed-loop load generator behind ``repro loadgen``.

Drives a running query plane with N concurrent keep-alive connections,
each issuing its share of a mixed workload back-to-back, and reports
wall-clock throughput plus the client-side latency distribution.  The
workload is seeded from the server's own ``/sample`` endpoint, so the
generator needs nothing but a URL — the fingerprints, key ids, and
addresses it queries are real members of the served corpus.

Stdlib only (``asyncio`` streams); nearest-rank percentiles over the
full latency vector, no sketching — a bench harness should gate on
exact numbers.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["LoadgenReport", "build_workload", "run_loadgen"]

#: Default endpoint weights: lookup-dominated, like a monitoring fleet
#: resolving certificates it just observed, with a trickle of tracking
#: and census traffic.
DEFAULT_MIX = {"cert": 8, "track": 2, "key": 1, "census": 1}


@dataclass(frozen=True)
class LoadgenReport:
    """One load run's outcome."""

    requests: int
    errors: int
    seconds: float
    qps: float
    p50_ms: float
    p99_ms: float
    max_ms: float
    by_status: Dict[int, int]
    #: Route label → {requests, p50_ms, p99_ms, max_ms}: the client-side
    #: latency distribution per endpoint, so a bench can attribute tail
    #: latency to scatter-gather routes vs point lookups.
    by_endpoint: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"{self.requests} requests in {self.seconds:.2f}s  "
            f"({self.qps:,.0f} qps, {self.errors} errors)",
            f"latency p50 {self.p50_ms:.2f}ms  p99 {self.p99_ms:.2f}ms  "
            f"max {self.max_ms:.2f}ms",
        ]
        for route in sorted(self.by_endpoint):
            stats = self.by_endpoint[route]
            lines.append(
                f"  {route:<10} {stats['requests']:>7.0f} req  "
                f"p50 {stats['p50_ms']:.2f}ms  p99 {stats['p99_ms']:.2f}ms  "
                f"max {stats['max_ms']:.2f}ms"
            )
        return "\n".join(lines)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


def _parse_url(url: str) -> Tuple[str, int]:
    stripped = url.split("://", 1)[-1].split("/", 1)[0]
    host, _, port = stripped.rpartition(":")
    if not host:
        raise ValueError(f"loadgen needs host:port, got {url!r}")
    return host, int(port)


async def _fetch(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    path: str,
) -> Tuple[int, bytes]:
    """One GET on an open keep-alive connection."""
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: loadgen\r\n\r\n".encode()
    )
    await writer.drain()
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed connection")
    status = int(status_line.split()[1])
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        if header.lower().startswith(b"content-length:"):
            length = int(header.split(b":", 1)[1])
    body = await reader.readexactly(length) if length else b""
    return status, body


async def _fetch_once(host: str, port: int, path: str) -> Tuple[int, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        return await _fetch(reader, writer, path)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def build_workload(
    sample: dict,
    requests: int,
    mix: Optional[Dict[str, int]] = None,
    seed: int = 2016,
) -> List[str]:
    """Expand a ``/sample`` payload into a shuffled request path list."""
    mix = dict(DEFAULT_MIX if mix is None else mix)
    pools = {
        "cert": [f"/cert/{fp}" for fp in sample.get("fingerprints", [])],
        "track": [f"/track/{ip}" for ip in sample.get("ips", [])],
        "key": [f"/key/{key}/group" for key in sample.get("keys", [])],
        "census": ["/census", "/census/valid", "/census/invalid"],
        "as": [
            f"/as/{asn}/reassignment" for asn in sample.get("asns", [])
        ],
    }
    weighted: List[Tuple[str, List[str]]] = [
        (kind, pool) for kind, pool in pools.items()
        if mix.get(kind, 0) > 0 and pool
    ]
    if not weighted:
        raise ValueError("workload mix selects no populated endpoint")
    total_weight = sum(mix[kind] for kind, _ in weighted)
    paths: List[str] = []
    for kind, pool in weighted:
        share = max(1, round(requests * mix[kind] / total_weight))
        paths.extend(pool[index % len(pool)] for index in range(share))
    paths = paths[:requests]
    random.Random(seed).shuffle(paths)
    return paths


def _route_of(path: str) -> str:
    """The route label of one request path (its first segment)."""
    head = next((part for part in path.split("/") if part), "")
    return head or "root"


async def _drive(
    host: str,
    port: int,
    paths: Sequence[str],
    concurrency: int,
) -> Tuple[List[float], Dict[int, int], int, Dict[str, List[float]]]:
    latencies: List[float] = []
    by_status: Dict[int, int] = {}
    per_route: Dict[str, List[float]] = {}
    errors = 0
    shares = [
        list(paths[offset::concurrency]) for offset in range(concurrency)
    ]

    async def worker(share: Sequence[str]) -> None:
        nonlocal errors
        if not share:
            return
        reader, writer = await asyncio.open_connection(host, port)
        try:
            for path in share:
                started = perf_counter()
                try:
                    status, _ = await _fetch(reader, writer, path)
                except (ConnectionError, asyncio.IncompleteReadError):
                    # Reconnect once; the request still counts.
                    reader, writer = await asyncio.open_connection(host, port)
                    status, _ = await _fetch(reader, writer, path)
                elapsed = (perf_counter() - started) * 1000.0
                latencies.append(elapsed)
                per_route.setdefault(_route_of(path), []).append(elapsed)
                by_status[status] = by_status.get(status, 0) + 1
                if status >= 400:
                    errors += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    await asyncio.gather(*(worker(share) for share in shares))
    return latencies, by_status, errors, per_route


async def run_loadgen_async(
    url: str,
    requests: int = 2000,
    concurrency: int = 16,
    mix: Optional[Dict[str, int]] = None,
    seed: int = 2016,
    paths: Optional[Sequence[str]] = None,
) -> LoadgenReport:
    host, port = _parse_url(url)
    if paths is None:
        status, body = await _fetch_once(host, port, "/sample")
        if status != 200:
            raise RuntimeError(f"/sample returned HTTP {status}")
        paths = build_workload(json.loads(body), requests, mix, seed)
    started = perf_counter()
    latencies, by_status, errors, per_route = await _drive(
        host, port, paths, concurrency
    )
    seconds = perf_counter() - started
    latencies.sort()
    by_endpoint: Dict[str, Dict[str, float]] = {}
    for route, values in per_route.items():
        values.sort()
        by_endpoint[route] = {
            "requests": len(values),
            "p50_ms": _percentile(values, 0.50),
            "p99_ms": _percentile(values, 0.99),
            "max_ms": values[-1],
        }
    return LoadgenReport(
        requests=len(latencies),
        errors=errors,
        seconds=seconds,
        qps=len(latencies) / seconds if seconds else 0.0,
        p50_ms=_percentile(latencies, 0.50),
        p99_ms=_percentile(latencies, 0.99),
        max_ms=latencies[-1] if latencies else 0.0,
        by_status=by_status,
        by_endpoint=by_endpoint,
    )


def run_loadgen(
    url: str,
    requests: int = 2000,
    concurrency: int = 16,
    mix: Optional[Dict[str, int]] = None,
    seed: int = 2016,
    paths: Optional[Sequence[str]] = None,
) -> LoadgenReport:
    """Synchronous wrapper: drive ``url`` and return the report."""
    return asyncio.run(run_loadgen_async(
        url, requests=requests, concurrency=concurrency,
        mix=mix, seed=seed, paths=paths,
    ))
