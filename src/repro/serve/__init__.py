"""The online query plane: ``repro serve`` / ``repro loadgen``.

The paper's outputs are batch reports; this package answers the same
questions online, over the zero-copy mapped corpus:

* :mod:`repro.serve.engine` — :class:`QueryEngine`, the transport-free
  query core: endpoint payloads, the digest-keyed result LRU, and the
  process-pool fan-out for heavy queries;
* :mod:`repro.serve.http` — :class:`QueryServer`, a stdlib asyncio
  HTTP/1.1 front end with keep-alive, reusing the live observability
  plane's ``/metrics`` / ``/healthz`` / ``/vars`` routes;
* :mod:`repro.serve.loadgen` — the closed-loop load generator behind
  ``repro loadgen`` and ``benchmarks/bench_perf_serve.py``;
* :mod:`repro.serve.router` — :class:`FleetRouter`, the sharded-fleet
  front tier behind ``repro fleet``: consistent point routing over the
  ``owners.rpo`` sidecar plus exact scatter-gather merges, byte-
  identical to a single server over the whole corpus.
"""

from .engine import QueryEngine, QueryError
from .http import QueryServer
from .loadgen import LoadgenReport, run_loadgen
from .router import FleetRouter, boot_fleet, shutdown_fleet

__all__ = [
    "QueryEngine",
    "QueryError",
    "QueryServer",
    "LoadgenReport",
    "run_loadgen",
    "FleetRouter",
    "boot_fleet",
    "shutdown_fleet",
]
