"""The sharded-fleet front tier behind ``repro fleet``.

:class:`FleetRouter` fronts K ``repro serve`` shard processes, each
holding one container produced by ``repro split``, and answers every
public endpoint **byte-identically** to a single server over the whole
corpus:

* point lookups (``/cert/<fp>``, ``/key/<spki>/group``) are routed to
  the owning shard through the ``owners.rpo`` sidecar's mapped hash
  tables and proxied verbatim — one upstream hop, no re-serialization
  of the body;
* scatter-gather endpoints (``/census``, ``/census/<pop>``,
  ``/track/<ip>``, ``/sample``, ``/as/<asn>/reassignment``) fan out to
  every shard's *fleet-internal* partials (integer counts and
  histograms only) and reconstruct the single-server payload exactly —
  medians re-derived with :class:`~repro.stats.cdf.CDF`'s own index
  expression, fractions as the same integer divisions, issuer ties
  broken by the same smallest-member-fingerprint rule.

Upstream traffic rides per-shard keep-alive connection pools; each hop
lands one sample in that shard's ``latency.router.upstream.shard<i>``
histogram on ``/metrics``.  ``/healthz`` live-probes every shard and
degrades (without refusing point lookups to surviving shards) when one
is down.  At boot the router re-hashes every shard container against
the digests recorded in ``fleet.json`` and refuses to start over a
mismatch — byte parity is a promise about specific bytes.

Stdlib asyncio only, matching :mod:`repro.serve.http`.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.tracking import ASAssignmentStats
from ..io.split import FleetManifest, FleetOwners, load_fleet_manifest, verify_fleet
from ..obs.export import prometheus_text
from ..obs.live import LATENCY_BUCKETS_MS
from ..obs.metrics import MetricsRegistry
from .engine import (
    REASSIGNMENT_MIN_DEVICES,
    QueryError,
    _format_ip,
    _parse_asn,
    _parse_fingerprint,
    _parse_ip,
    _strided,
)
from .loadgen import _fetch, _parse_url

__all__ = ["FleetRouter", "boot_fleet", "shutdown_fleet"]

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 500: "Internal Server Error",
    502: "Bad Gateway", 503: "Service Unavailable",
}

#: /sample's population stride, matching ``QueryEngine.sample``.
_SAMPLE_N = 256


# --- exact merge arithmetic ------------------------------------------------------
#
# Pure functions over the shards' fleet-internal partials.  Every
# expression here mirrors one in the single-server path (CDF.percentile,
# key_sharing, lifetimes, top_issuers, ValidationReport) — same integer
# inputs through the same operations, so the floats cannot differ.

def _histogram_median(histogram: Dict[int, int]) -> int:
    """``CDF.median`` over an integer-valued count histogram.

    The CDF indexes its sorted sample vector at
    ``min(n - 1, int(round(0.5 * (n - 1))))``; walking the histogram in
    key order to that rank selects the identical sample.
    """
    n = sum(histogram.values())
    index = min(n - 1, int(round(0.5 * (n - 1))))
    seen = 0
    for value in sorted(histogram):
        seen += histogram[value]
        if seen > index:
            return value
    raise ValueError("empty histogram has no median")


def merge_population(partials: Sequence[dict]) -> dict:
    """One ``_census_population`` payload from per-shard aggregates."""
    n = sum(partial["n"] for partial in partials)
    if n == 0:
        return {"n": 0}
    validity: Dict[int, int] = {}
    lifetime: Dict[int, int] = {}
    n_single = n_key_shared = n_self = 0
    issuers: Dict[str, List] = {}
    for partial in partials:
        if partial["n"] == 0:
            continue
        for days, count in partial["validity_days"].items():
            validity[int(days)] = validity.get(int(days), 0) + count
        for days, count in partial["lifetime_days"].items():
            lifetime[int(days)] = lifetime.get(int(days), 0) + count
        n_single += partial["n_single_scan"]
        n_key_shared += partial["n_key_shared"]
        n_self += partial["n_self_signed"]
        for label, (count, min_fp) in partial["issuers"].items():
            entry = issuers.get(label)
            if entry is None:
                issuers[label] = [count, min_fp]
            else:
                entry[0] += count
                entry[1] = min(entry[1], min_fp)
    # top_issuers sorts count-descending with a *stable* sort over
    # first-appearance order; the census iterates fingerprints
    # ascending, so first appearance == smallest member fingerprint.
    ranked = sorted(
        issuers.items(), key=lambda item: (-item[1][0], item[1][1])
    )
    return {
        "n": n,
        "validity_median_days": _histogram_median(validity),
        "lifetime_median_days": _histogram_median(lifetime),
        "single_scan_fraction": n_single / n,
        "key_shared_fraction": n_key_shared / n,
        "self_signed_fraction": n_self / n,
        "top_issuers": [
            [label, entry[0]] for label, entry in ranked[:5]
        ],
    }


def merge_census(partials: Sequence[dict], digest: str) -> dict:
    """The whole-corpus ``/census`` payload from shard partials."""
    n_valid = sum(partial["n_valid"] for partial in partials)
    n_invalid = sum(partial["n_invalid"] for partial in partials)
    considered = n_valid + n_invalid
    return {
        "digest": digest,
        "n_certificates": sum(
            partial["n_certificates"] for partial in partials
        ),
        "n_scans": partials[0]["n_scans"],
        "n_observations": sum(
            partial["n_observations"] for partial in partials
        ),
        "considered": considered,
        "invalid_fraction": n_invalid / considered,
        "valid": merge_population(
            [partial["valid"] for partial in partials]
        ),
        "invalid": merge_population(
            [partial["invalid"] for partial in partials]
        ),
    }


def merge_track(ip: int, partials: Sequence[dict]) -> dict:
    """``/track/<ip>`` from per-shard answers.

    Devices are content-addressed and partition-closed (every device's
    certificates share one shard), so concatenation + the same
    ``device_key`` sort the engine applies reproduces its row order.
    """
    rows = [row for partial in partials for row in partial["devices"]]
    rows.sort(key=lambda row: row["device_key"])
    return {"ip": _format_ip(ip), "n_devices": len(rows), "devices": rows}


def merge_sample(partials: Sequence[dict], digest: str) -> dict:
    """``/sample`` from the shards' unstrided ``/fleet/seeds``."""
    fingerprints = sorted(
        {fp for partial in partials for fp in partial["fingerprints"]}
    )
    keys = sorted(
        {key for partial in partials for key in partial["keys"]}
    )
    ips = sorted({ip for partial in partials for ip in partial["ips"]})
    as_devices: Dict[int, int] = {}
    for partial in partials:
        for asn, count in partial["as_devices"].items():
            as_devices[int(asn)] = as_devices.get(int(asn), 0) + count
    asns = sorted(
        asn for asn, count in as_devices.items()
        if count >= REASSIGNMENT_MIN_DEVICES
    )
    return {
        "digest": digest,
        "fingerprints": _strided(fingerprints, _SAMPLE_N),
        "keys": _strided(keys, _SAMPLE_N),
        "ips": [_format_ip(ip) for ip in _strided(ips, _SAMPLE_N)],
        "asns": _strided(asns, _SAMPLE_N),
    }


def merge_as_reassignment(
    asn: int, partials: Sequence[dict], digest: str
) -> dict:
    """``/as/<asn>/reassignment`` from the shards' raw §7.4 counts.

    The summed counts feed the *same* :class:`ASAssignmentStats` the
    engine uses, so thresholds and derived fractions cannot drift.
    """
    stats = ASAssignmentStats(
        asn=asn,
        n_devices=sum(partial["n_devices"] for partial in partials),
        n_static=sum(partial["n_static"] for partial in partials),
        n_fully_dynamic=sum(
            partial["n_fully_dynamic"] for partial in partials
        ),
    )
    if stats.n_devices < REASSIGNMENT_MIN_DEVICES:
        raise QueryError(
            404, f"no tracked-device population for AS {asn}"
        )
    return {
        "asn": asn,
        "digest": digest,
        "n_devices": stats.n_devices,
        "n_static": stats.n_static,
        "n_fully_dynamic": stats.n_fully_dynamic,
        "static_fraction": stats.static_fraction,
        "dynamic_share": stats.dynamic_share,
        "mostly_static": stats.is_mostly_static(),
        "highly_dynamic": stats.is_highly_dynamic,
    }


# --- the upstream shard client ---------------------------------------------------

class _ShardClient:
    """One shard's keep-alive connection pool (asyncio streams)."""

    def __init__(self, url: str) -> None:
        self.url = url
        self.host, self.port = _parse_url(url)
        self._idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def get(self, path: str) -> Tuple[int, bytes]:
        """One GET; reuses an idle connection, reconnects once."""
        pair = self._idle.pop() if self._idle else None
        if pair is None:
            pair = await asyncio.open_connection(self.host, self.port)
        reader, writer = pair
        try:
            result = await _fetch(reader, writer, path)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            writer.close()
            reader, writer = await asyncio.open_connection(
                self.host, self.port
            )
            result = await _fetch(reader, writer, path)
        self._idle.append((reader, writer))
        return result

    async def close(self) -> None:
        idle, self._idle = self._idle, []
        for _, writer in idle:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


class _ShardDown(Exception):
    """An upstream shard did not answer."""

    def __init__(self, shard: int) -> None:
        super().__init__(f"shard {shard} unavailable")
        self.shard = shard


# --- the router ------------------------------------------------------------------

class FleetRouter:
    """One listening front tier over a booted shard fleet."""

    DEFAULT_RESULT_CACHE = 1024

    def __init__(
        self,
        manifest: FleetManifest,
        shard_urls: Sequence[str],
        host: str = "127.0.0.1",
        port: int = 0,
        result_cache_size: Optional[int] = None,
    ) -> None:
        if len(shard_urls) != manifest.shards:
            raise ValueError(
                f"fleet has {manifest.shards} shards, "
                f"got {len(shard_urls)} shard URLs"
            )
        self.manifest = manifest
        self.digest = manifest.parent_digest
        self.owners = FleetOwners(manifest.owners_path)
        self.clients = [_ShardClient(url) for url in shard_urls]
        self.registry = MetricsRegistry()
        self.host = host
        self.port = port
        self._results: "OrderedDict[str, Tuple[int, bytes]]" = OrderedDict()
        self._result_cache_size = (
            self.DEFAULT_RESULT_CACHE
            if result_cache_size is None else result_cache_size
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._started: Optional[float] = None

    @classmethod
    def open(
        cls,
        fleet_dir: Union[str, "object"],
        shard_urls: Sequence[str],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> "FleetRouter":
        """Wire a router over a fleet directory, verifying digests.

        Every shard container is re-hashed against ``fleet.json``
        before a single byte is served: a mismatched shard means the
        byte-parity contract no longer holds, so boot refuses.
        """
        manifest = load_fleet_manifest(fleet_dir)
        verify_fleet(manifest)
        return cls(manifest, shard_urls, host=host, port=port)

    # --- lifecycle -------------------------------------------------------------

    async def start(self) -> "FleetRouter":
        if self._server is not None:
            raise RuntimeError("router already started")
        self._server = await asyncio.start_server(
            self._connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.time()
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for client in self.clients:
            await client.close()
        self.owners.close()

    # --- upstream --------------------------------------------------------------

    async def _shard_get(self, shard: int, path: str) -> Tuple[int, bytes]:
        started = time.perf_counter()
        try:
            status, body = await self.clients[shard].get(path)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            self.registry.inc("router.upstream_errors")
            raise _ShardDown(shard)
        finally:
            self.registry.observe(
                f"latency.router.upstream.shard{shard}",
                (time.perf_counter() - started) * 1000.0,
                buckets=LATENCY_BUCKETS_MS,
            )
        return status, body

    async def _scatter(self, path: str) -> List[dict]:
        """``path`` on every shard; parsed JSON bodies, shard order."""
        results = await asyncio.gather(
            *(
                self._shard_get(shard, path)
                for shard in range(len(self.clients))
            )
        )
        partials = []
        for shard, (status, body) in enumerate(results):
            if status != 200:
                raise QueryError(
                    502, f"shard {shard} failed {path}: HTTP {status}"
                )
            partials.append(json.loads(body))
        return partials

    # --- routing ---------------------------------------------------------------

    async def _proxy_cert(self, path: str, hex_text: str) -> Tuple[int, bytes]:
        fingerprint = _parse_fingerprint(hex_text)
        shard = self.owners.owner_of_cert(fingerprint)
        return await self._shard_get(shard, path)

    async def _proxy_key(self, path: str, hex_text: str) -> Tuple[int, bytes]:
        try:
            spki = bytes.fromhex(hex_text)
        except ValueError:
            spki = b""
        # A malformed or unknown key id 404s with the same body on any
        # shard; route it by the fallback hash for determinism.
        shard = (
            self.owners.owner_of_key(spki)
            if len(spki) == 32 else hash_fallback(hex_text, len(self.clients))
        )
        return await self._shard_get(shard, path)

    def _serialize(self, payload: dict) -> bytes:
        # Identical to QueryEngine._store's framing — parity includes
        # the trailing newline and the sorted keys.
        return (json.dumps(payload, sort_keys=True) + "\n").encode()

    async def respond(self, path: str) -> Tuple[int, bytes]:
        """Route one query path; returns (status, body)."""
        cached = self._results.get(path)
        if cached is not None:
            self._results.move_to_end(path)
            return cached
        parts = [part for part in path.split("/") if part]
        if len(parts) == 2 and parts[0] == "cert":
            return await self._proxy_cert(path, parts[1])
        if len(parts) == 3 and parts[0] == "key" and parts[2] == "group":
            return await self._proxy_key(path, parts[1])
        if len(parts) == 2 and parts[0] == "track":
            ip = _parse_ip(parts[1])
            payload = merge_track(ip, await self._scatter(path))
        elif parts == ["census"]:
            payload = merge_census(
                await self._scatter("/fleet/census"), self.digest
            )
        elif len(parts) == 2 and parts[0] == "census" \
                and parts[1] in ("valid", "invalid"):
            partials = await self._scatter("/fleet/census")
            payload = merge_population(
                [partial[parts[1]] for partial in partials]
            )
            payload["population"] = parts[1]
            payload["digest"] = self.digest
        elif parts == ["sample"]:
            payload = merge_sample(
                await self._scatter("/fleet/seeds"), self.digest
            )
        elif len(parts) == 3 and parts[0] == "as" \
                and parts[2] == "reassignment":
            asn = _parse_asn(parts[1])
            payload = merge_as_reassignment(
                asn, await self._scatter(f"/fleet/as/{asn}"), self.digest
            )
        else:
            raise QueryError(404, f"unknown query path: {path}")
        result = (200, self._serialize(payload))
        self._results[path] = result
        if len(self._results) > self._result_cache_size:
            self._results.popitem(last=False)
        return result

    # --- router-owned endpoints -------------------------------------------------

    async def healthz(self) -> Tuple[int, bytes]:
        """Live shard probe; degraded (not dead) on a down shard."""
        async def probe(shard: int) -> bool:
            try:
                status, _ = await self._shard_get(shard, "/healthz")
                return status == 200
            except _ShardDown:
                return False

        alive = await asyncio.gather(
            *(probe(shard) for shard in range(len(self.clients)))
        )
        payload = {
            "status": "ok" if all(alive) else "degraded",
            "role": "fleet-router",
            "parent_digest": self.digest,
            "uptime_seconds": (
                round(time.time() - self._started, 3)
                if self._started else 0.0
            ),
            "shards": [
                {
                    "shard": shard,
                    "url": self.clients[shard].url,
                    "ok": ok,
                }
                for shard, ok in enumerate(alive)
            ],
        }
        status = 200 if all(alive) else 503
        return status, (json.dumps(payload) + "\n").encode()

    # --- protocol ---------------------------------------------------------------

    async def _connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, *rest = (
                        request_line.decode("latin-1").split()
                    )
                except ValueError:
                    break
                keep_alive = not rest or rest[0] != "HTTP/1.0"
                while True:
                    header = await reader.readline()
                    if header in (b"", b"\r\n", b"\n"):
                        break
                    lowered = header.lower()
                    if lowered.startswith(b"connection:"):
                        keep_alive = b"close" not in lowered
                status, body, ctype = await self._respond(method, target)
                connection = "keep-alive" if keep_alive else "close"
                writer.write(
                    (
                        f"HTTP/1.1 {status} "
                        f"{_REASONS.get(status, 'OK')}\r\n"
                        f"Content-Type: {ctype}\r\n"
                        f"Content-Length: {len(body)}\r\n"
                        f"Connection: {connection}\r\n\r\n"
                    ).encode() + body
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self, method: str, target: str
    ) -> Tuple[int, bytes, str]:
        started = time.perf_counter()
        self.registry.inc("router.requests")
        try:
            if method != "GET":
                raise QueryError(405, f"method not served: {method}")
            path = target.split("?", 1)[0]
            if path == "/metrics":
                return (
                    200,
                    prometheus_text(self.registry).encode(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            if path == "/healthz":
                status, body = await self.healthz()
                return status, body, "application/json"
            status, body = await self.respond(path)
            return status, body, "application/json"
        except _ShardDown as down:
            self.registry.inc("router.errors")
            body = (json.dumps({"error": str(down)}) + "\n").encode()
            return 502, body, "application/json"
        except QueryError as error:
            self.registry.inc("router.errors")
            body = (
                json.dumps({"error": error.message}) + "\n"
            ).encode()
            return error.status, body, "application/json"
        except Exception as error:  # pragma: no cover - defensive
            self.registry.inc("router.errors")
            body = (json.dumps({"error": str(error)}) + "\n").encode()
            return 500, body, "application/json"
        finally:
            self.registry.observe(
                "latency.router",
                (time.perf_counter() - started) * 1000.0,
                buckets=LATENCY_BUCKETS_MS,
            )


def hash_fallback(text: str, shards: int) -> int:
    """Deterministic shard choice for ids that fail to parse."""
    digest = 0
    for byte in text.encode("utf-8", "replace"):
        digest = (digest * 131 + byte) & 0xFFFFFFFF
    return digest % shards


# --- fleet boot (shard server processes) -----------------------------------------

def _shard_server_main(
    corpus: str,
    environment: str,
    cache_dir: Optional[str],
    workers: int,
    shard: int,
    queue,
) -> None:
    """One shard server process: warm, announce the URL, serve.

    Wired like ``repro serve``: a live plane fronts ``/metrics`` /
    ``/healthz`` / ``/vars`` on the same listener, so the router's
    health probes and the fleet's per-shard request counters work.
    """
    from ..obs import LatencyRecorder, LiveServer, MetricsRegistry, Tracer
    from ..obs import runtime as obs_runtime
    from .engine import QueryEngine
    from .http import QueryServer

    trace = Tracer(process=f"serve-shard{shard}")
    metrics = MetricsRegistry()
    trace.add_sink(LatencyRecorder(metrics))
    with obs_runtime.activated(trace, metrics):
        engine = QueryEngine.open(
            corpus, environment, cache_dir=cache_dir, workers=workers
        )
        engine.warm()
        health = {"shard": shard, "digest": engine.digest}
        live = LiveServer(trace, metrics, health=health)

        async def main() -> None:
            server = QueryServer(engine, live=live)
            await server.start()
            queue.put((shard, server.url))
            await server.serve_forever()

        try:
            asyncio.run(main())
        except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
            pass
        finally:
            engine.close()


def boot_fleet(
    manifest: FleetManifest,
    environment: Union[str, "object"],
    cache_dir: Optional[str] = None,
    workers: int = 1,
    timeout: float = 600.0,
) -> Tuple[List[multiprocessing.Process], List[str]]:
    """Start one warmed server process per shard; returns (procs, urls)."""
    context = multiprocessing.get_context("spawn")
    queue = context.Queue()
    processes = []
    for info in manifest.shard_infos:
        process = context.Process(
            target=_shard_server_main,
            args=(
                str(info.path), str(environment), cache_dir, workers,
                info.index, queue,
            ),
            daemon=True,
        )
        process.start()
        processes.append(process)
    urls: Dict[int, str] = {}
    deadline = time.monotonic() + timeout
    while len(urls) < len(processes):
        remaining = deadline - time.monotonic()
        if remaining <= 0 or not any(
            process.is_alive() for process in processes
        ):
            shutdown_fleet(processes)
            raise TimeoutError("fleet shards did not boot in time")
        try:
            shard, url = queue.get(timeout=min(remaining, 1.0))
        except Exception:
            continue
        urls[shard] = url
    return processes, [urls[shard] for shard in sorted(urls)]


def shutdown_fleet(processes: Sequence[multiprocessing.Process]) -> None:
    """Terminate and reap shard server processes."""
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=10.0)
