"""The transport-free query core behind ``repro serve``.

:class:`QueryEngine` owns one warmed :class:`~repro.study.Study` over a
corpus and answers the online questions as JSON-serializable payloads:

* ``/cert/<fingerprint>``   — one certificate's identity, validation
  verdict, and observation history;
* ``/key/<spki>/group``     — the public-key reissue group (§6.3) plus
  its four-level location consistency;
* ``/track/<ip>``           — the tracked devices (§7) ever sighted at
  an address;
* ``/census`` (and ``/census/valid`` / ``/census/invalid``) — the §5
  population statistics as one document;
* ``/sample``               — deterministic query seeds (fingerprints,
  key ids, addresses) for load generators.

Perf architecture, per the three levers this module exists for:

* **O(1) lookups** ride the persisted ``cert_hash`` segment through
  :class:`~repro.io.backends.LazyCertificates` — no dict of a million
  fingerprints is ever built in the serving process;
* a **bounded LRU of serialized responses**, keyed by ``(corpus
  digest, path)`` so a grown corpus can never serve a stale answer,
  makes the hot set sub-millisecond and allocation-free;
* **heavy queries fan out over a ProcessPoolExecutor** whose workers
  re-map the container path (and adopt cached kernels when an artifact
  cache is given) — they share physical pages with the parent, so p99
  stays flat as concurrency grows instead of serializing on the GIL.

The engine is transport-free on purpose: :mod:`repro.serve.http` is a
thin asyncio shell over :meth:`QueryEngine.respond`, and the parity
tests drive the engine directly against the batch pipeline.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.features import Feature
from ..core.kernels import fused_group_consistency
from ..core.linking import link_on_feature
from ..core.tracking import ASAssignmentStats, summarize_as_assignment
from ..obs import runtime as obs_runtime
from ..study import Study

__all__ = ["QueryEngine", "QueryError", "REASSIGNMENT_MIN_DEVICES"]

#: §7.4's minimum tracked-device population for a per-AS policy verdict.
REASSIGNMENT_MIN_DEVICES = 10


class QueryError(Exception):
    """A query the engine rejects, with the HTTP status it maps to."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _format_ip(value: int) -> str:
    return ".".join(str((value >> shift) & 255) for shift in (24, 16, 8, 0))


def _parse_ip(text: str) -> int:
    parts = text.split(".")
    if len(parts) == 4:
        try:
            octets = [int(part) for part in parts]
        except ValueError:
            octets = None
        if octets is not None and all(0 <= o <= 255 for o in octets):
            value = 0
            for octet in octets:
                value = (value << 8) | octet
            return value
    if text.isdigit():
        return int(text)
    raise QueryError(400, f"not an IPv4 address: {text!r}")


def _parse_fingerprint(text: str) -> bytes:
    try:
        fingerprint = bytes.fromhex(text)
    except ValueError:
        raise QueryError(400, f"not a hex fingerprint: {text!r}")
    if len(fingerprint) != 32:
        raise QueryError(400, "fingerprints are 32 bytes of hex")
    return fingerprint


def _parse_asn(text: str) -> int:
    if not text.isdigit():
        raise QueryError(400, f"not an AS number: {text!r}")
    return int(text)


def _strided(values: list, count: int) -> list:
    """``count`` elements strided uniformly over ``values``."""
    if not values:
        return []
    step = max(1, len(values) // count)
    return values[::step][:count]


def _census_population(dataset, fingerprints: Sequence[bytes]) -> dict:
    """The §5 statistics for one certificate population.

    Shared verbatim by the in-process path and the pool workers, so the
    fan-out cannot drift from the serial answer.
    """
    from ..core.analysis.issuers import self_signed_fraction, top_issuers
    from ..core.analysis.keys import key_sharing
    from ..core.analysis.longevity import lifetimes, validity_periods

    fingerprints = list(fingerprints)
    if not fingerprints:
        return {"n": 0}
    validity = validity_periods(dataset, fingerprints)
    lifetime = lifetimes(dataset, fingerprints)
    keys = key_sharing(dataset, fingerprints)
    return {
        "n": len(fingerprints),
        "validity_median_days": validity.median,
        "lifetime_median_days": lifetime.median_days,
        "single_scan_fraction": lifetime.single_scan_fraction,
        "key_shared_fraction": keys.shared_fraction,
        "self_signed_fraction": self_signed_fraction(dataset, fingerprints),
        "top_issuers": [
            [issuer, count]
            for issuer, count in top_issuers(dataset, fingerprints)
        ],
    }


def _census_aggregates(dataset, fingerprints: Sequence[bytes]) -> dict:
    """Mergeable partial sums behind one population's census slice.

    Everything here is an integer count or an integer-valued histogram,
    so partial tallies computed over disjoint certificate partitions
    (the shards of a split corpus) sum to exactly the whole-corpus
    tally — the fleet router reconstitutes :func:`_census_population`'s
    medians and fractions from these without a single float crossing
    the wire.  Issuers carry the smallest member fingerprint so the
    router can reproduce ``top_issuers``'s stable tie-break (equal
    counts keep first-appearance order over the ascending-fingerprint
    iteration).
    """
    from ..core.analysis.issuers import _EMPTY_LABEL

    fingerprints = sorted(fingerprints)
    validity: dict[int, int] = {}
    lifetime: dict[int, int] = {}
    n_single_scan = 0
    n_self_signed = 0
    key_counts: dict = {}
    issuers: dict[str, list] = {}
    for fingerprint in fingerprints:
        certificate = dataset.certificate(fingerprint)
        days = certificate.validity_period_days
        validity[days] = validity.get(days, 0) + 1
        life = dataset.lifetime_days(fingerprint)
        lifetime[life] = lifetime.get(life, 0) + 1
        if len(dataset.scan_indexes_of(fingerprint)) == 1:
            n_single_scan += 1
        if certificate.is_self_signed():
            n_self_signed += 1
        key = certificate.public_key
        key_counts[key] = key_counts.get(key, 0) + 1
        cn = certificate.issuer_cn
        label = cn if cn else _EMPTY_LABEL
        entry = issuers.get(label)
        if entry is None:
            issuers[label] = [1, fingerprint.hex()]
        else:
            entry[0] += 1
    n_key_shared = sum(
        count for count in key_counts.values() if count > 1
    )
    return {
        "n": len(fingerprints),
        "validity_days": {str(days): n for days, n in validity.items()},
        "lifetime_days": {str(days): n for days, n in lifetime.items()},
        "n_single_scan": n_single_scan,
        "n_key_shared": n_key_shared,
        "n_self_signed": n_self_signed,
        "issuers": {
            label: [count, min_fp] for label, (count, min_fp) in issuers.items()
        },
    }


# --- pool workers ---------------------------------------------------------------
#
# Workers hold the corpus as process-global state installed once by the
# initializer: tasks ship only fingerprint lists, never columns.  The
# re-mapped container shares physical pages with the parent through the
# OS page cache, and an artifact cache (when configured) hands each
# worker the prebuilt kernels as mapped views over the same ``.rpa``.

_WORKER_STATE: dict = {}


def _serve_worker_init(
    corpus_path: str,
    environment_path: Optional[str],
    cache_dir: Optional[str],
    parent_obs: bool,
) -> None:
    from ..io import load_dataset, load_environment
    from ..io.artifacts import ArtifactCache

    obs_runtime.install_worker(parent_obs)
    dataset = load_dataset(corpus_path)
    if cache_dir is not None:
        ArtifactCache(cache_dir).load(dataset, workers=1)
    as_of = None
    if environment_path is not None:
        as_of = load_environment(environment_path).routing.origin_as
    _WORKER_STATE["dataset"] = dataset
    _WORKER_STATE["as_of"] = as_of


def _consistency_task(
    fingerprints: Sequence[bytes],
) -> Tuple[float, float, float, float]:
    return fused_group_consistency(
        _WORKER_STATE["dataset"], list(fingerprints), _WORKER_STATE["as_of"]
    )


def _census_task(fingerprints: Sequence[bytes]) -> dict:
    return _census_population(_WORKER_STATE["dataset"], fingerprints)


class QueryEngine:
    """One warmed study, served as online queries."""

    #: Bound on the serialized-response LRU (entries).
    DEFAULT_RESULT_CACHE = 8192

    #: Capped list lengths inside payloads (observation histories and
    #: group rosters stay bounded no matter how hot a certificate is).
    MAX_LISTED = 100

    def __init__(
        self,
        study: Study,
        corpus_path: Optional[str] = None,
        environment_path: Optional[str] = None,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        result_cache_size: Optional[int] = None,
        fleet: Optional[dict] = None,
    ) -> None:
        self.study = study
        self.dataset = study.dataset
        #: The container's ``fleet`` meta when this engine serves one
        #: shard of a split corpus (None for a whole corpus).
        self.fleet = fleet
        self.corpus_path = str(corpus_path) if corpus_path else None
        self.environment_path = (
            str(environment_path) if environment_path else None
        )
        self.workers = workers
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.digest = self.dataset.corpus_digest()
        self._results: "OrderedDict[tuple, bytes]" = OrderedDict()
        self._result_cache_size = (
            self.DEFAULT_RESULT_CACHE
            if result_cache_size is None else result_cache_size
        )
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._key_groups: "Optional[Dict[str, tuple]]" = None
        self._track_index: "Optional[Dict[int, List[int]]]" = None
        self._as_stats: "Optional[Dict[int, ASAssignmentStats]]" = None
        self._warmed = False

    @classmethod
    def open(
        cls,
        corpus: Union[str, "object"],
        environment: Union[str, "object"],
        workers: int = 1,
        cache_dir: Optional[str] = None,
        result_cache_size: Optional[int] = None,
    ) -> "QueryEngine":
        """Wire an engine over a saved corpus + environment pair.

        A shard container produced by ``repro split`` carries a
        ``fleet`` meta block; the engine then pins the parent's linking
        plan and pools the parent's off-shard CA certificates into
        validation, so every shard-local verdict, group, and device
        matches the parent corpus restricted to the shard.
        """
        from ..io import load_dataset, load_environment
        from ..io.artifacts import ArtifactCache
        from ..io.split import read_shard_fleet

        dataset = load_dataset(corpus)
        loaded = load_environment(environment)
        cache = ArtifactCache(cache_dir) if cache_dir else None
        fleet, extras = read_shard_fleet(corpus)
        study = Study(
            dataset=dataset,
            trust_store=loaded.trust_store,
            as_of=loaded.routing.origin_as,
            registry=loaded.registry,
            workers=workers,
            cache=cache,
            extra_intermediates=extras,
            link_plan=(
                fleet.get("link_plan") if fleet is not None else None
            ),
        )
        return cls(
            study,
            corpus_path=str(corpus),
            environment_path=str(environment),
            workers=workers,
            cache_dir=cache_dir,
            result_cache_size=result_cache_size,
            fleet=fleet,
        )

    # --- lifecycle -------------------------------------------------------------

    def warm(self) -> "QueryEngine":
        """Build every stage queries touch, once, before traffic.

        Validation, kernels, dedup, the linking pipeline, the tracked
        device population, the key→group map, and the address→device
        index all materialize here; a warmed engine answers cold
        lookups without ever entering a study stage.
        """
        if self._warmed:
            return self
        with obs_runtime.span("serve/warm"):
            study = self.study
            study.validation()
            study.kernels()
            study.pipeline()
            devices = study.tracked_devices()
            result = link_on_feature(
                self.dataset, list(study.unique_invalid), Feature.PUBLIC_KEY
            )
            key_groups: Dict[str, tuple] = {}
            for group in result.groups:
                spki = self.dataset.certificate(
                    group.fingerprints[0]
                ).public_key.fingerprint.hex()
                key_groups[spki] = group.fingerprints
            self._key_groups = key_groups
            track_index: Dict[int, List[int]] = {}
            for position, device in enumerate(devices):
                for _, _, ip in device.sightings:
                    bucket = track_index.setdefault(ip, [])
                    if not bucket or bucket[-1] != position:
                        bucket.append(position)
            self._track_index = track_index
            self._as_stats = summarize_as_assignment(devices, study.as_of)
        self._warmed = True
        return self

    @property
    def pool(self) -> Optional[ProcessPoolExecutor]:
        """The heavy-query pool (None when fan-out is unavailable)."""
        if self.workers <= 1 or self.corpus_path is None:
            return None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_serve_worker_init,
                initargs=(
                    self.corpus_path, self.environment_path,
                    self.cache_dir, obs_runtime.enabled(),
                ),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    # --- response cache --------------------------------------------------------

    def cached(self, path: str) -> Optional[bytes]:
        """The serialized response for ``path``, if already computed."""
        key = (self.digest, path)
        with self._lock:
            body = self._results.get(key)
            if body is not None:
                self._results.move_to_end(key)
        return body

    def _store(self, path: str, payload: dict) -> bytes:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        key = (self.digest, path)
        with self._lock:
            self._results[key] = body
            if len(self._results) > self._result_cache_size:
                self._results.popitem(last=False)
        return body

    # --- routing ---------------------------------------------------------------

    def respond(self, path: str) -> bytes:
        """Route one query path to its serialized JSON response."""
        cached = self.cached(path)
        if cached is not None:
            return cached
        parts = [part for part in path.split("/") if part]
        if len(parts) == 2 and parts[0] == "cert":
            payload = self.cert(parts[1])
        elif len(parts) == 3 and parts[0] == "key" and parts[2] == "group":
            payload = self.key_group(parts[1])
        elif len(parts) == 2 and parts[0] == "track":
            payload = self.track(parts[1])
        elif parts == ["census"]:
            payload = self.census()
        elif len(parts) == 2 and parts[0] == "census" \
                and parts[1] in ("valid", "invalid"):
            payload = self.census_slice(parts[1])
        elif parts == ["sample"]:
            payload = self.sample()
        elif len(parts) == 3 and parts[0] == "as" \
                and parts[2] == "reassignment":
            payload = self.as_reassignment(parts[1])
        elif parts == ["fleet", "census"]:
            payload = self.fleet_census()
        elif parts == ["fleet", "seeds"]:
            payload = self.fleet_seeds()
        elif len(parts) == 3 and parts[0] == "fleet" and parts[1] == "as":
            payload = self.fleet_as(parts[2])
        else:
            raise QueryError(404, f"unknown query path: {path}")
        return self._store(path, payload)

    # --- endpoints -------------------------------------------------------------

    def cert(self, fingerprint_hex: str) -> dict:
        """One certificate: identity, verdict, observation history."""
        fingerprint = _parse_fingerprint(fingerprint_hex)
        dataset = self.dataset
        try:
            certificate = dataset.certificate(fingerprint)
        except KeyError:
            raise QueryError(404, f"unknown certificate: {fingerprint_hex}")
        validation = self.study.validation()
        appearances = dataset.appearances(fingerprint)
        payload = {
            "fingerprint": fingerprint.hex(),
            "subject_cn": certificate.subject_cn,
            "issuer_cn": certificate.issuer_cn,
            "spki": certificate.public_key.fingerprint.hex(),
            "validity_period_days": certificate.validity_period_days,
            "self_signed": certificate.is_self_signed(),
            "status": (
                validation.results[fingerprint].status.value
                if fingerprint in validation.results else None
            ),
            "invalid": fingerprint in validation.invalid,
            "n_appearances": len(appearances),
            "n_ips": len({ip for _, ip in appearances}),
            "appearances": [
                [dataset.scans[scan_idx].day, _format_ip(ip)]
                for scan_idx, ip in appearances[:self.MAX_LISTED]
            ],
        }
        if appearances:
            first, last = dataset.first_last_day(fingerprint)
            payload["first_day"] = first
            payload["last_day"] = last
            payload["lifetime_days"] = dataset.lifetime_days(fingerprint)
        else:
            payload["first_day"] = payload["last_day"] = None
            payload["lifetime_days"] = 0
        return payload

    def key_group(self, spki_hex: str) -> dict:
        """The §6.3 public-key group behind one SPKI fingerprint."""
        self.warm()
        assert self._key_groups is not None
        fingerprints = self._key_groups.get(spki_hex.lower())
        if fingerprints is None:
            raise QueryError(404, f"no linked group for key {spki_hex}")
        consistency = self._group_consistency(fingerprints)
        return {
            "spki": spki_hex.lower(),
            "size": len(fingerprints),
            "fingerprints": [
                fingerprint.hex()
                for fingerprint in fingerprints[:self.MAX_LISTED]
            ],
            "consistency": {
                "ip": consistency[0],
                "prefix24": consistency[1],
                "prefix16": consistency[2],
                "as": consistency[3],
            },
        }

    def _group_consistency(
        self, fingerprints: Sequence[bytes]
    ) -> Tuple[float, float, float, float]:
        pool = self.pool
        if pool is not None:
            return pool.submit(_consistency_task, list(fingerprints)).result()
        return fused_group_consistency(
            self.dataset, list(fingerprints), self.study.as_of
        )

    def track(self, ip_text: str) -> dict:
        """Every tracked device (§7) ever sighted at one address."""
        self.warm()
        assert self._track_index is not None
        ip = _parse_ip(ip_text)
        devices = self.study.tracked_devices()
        rows = []
        for position in self._track_index.get(ip, ()):
            device = devices[position]
            rows.append({
                "device_key": device.device_key,
                "n_fingerprints": len(device.fingerprints),
                "first_day": device.first_day,
                "last_day": device.last_day,
                "span_days": device.span_days,
                "trackable": device.is_trackable(),
                "ips": sorted({
                    _format_ip(sighting_ip)
                    for _, _, sighting_ip in device.sightings
                }),
            })
        # Keys are content-addressed, so this order is partition-stable:
        # a fleet router concatenating shard answers re-sorts the same way.
        rows.sort(key=lambda row: row["device_key"])
        return {"ip": _format_ip(ip), "n_devices": len(rows), "devices": rows}

    def as_reassignment(self, asn_text: str) -> dict:
        """§7.4's reassignment-policy verdict for one AS."""
        self.warm()
        assert self._as_stats is not None
        asn = _parse_asn(asn_text)
        stats = self._as_stats.get(asn)
        if stats is None or stats.n_devices < REASSIGNMENT_MIN_DEVICES:
            raise QueryError(
                404, f"no tracked-device population for AS {asn}"
            )
        return {
            "asn": asn,
            "digest": self.digest,
            "n_devices": stats.n_devices,
            "n_static": stats.n_static,
            "n_fully_dynamic": stats.n_fully_dynamic,
            "static_fraction": stats.static_fraction,
            "dynamic_share": stats.dynamic_share,
            "mostly_static": stats.is_mostly_static(),
            "highly_dynamic": stats.is_highly_dynamic,
        }

    def census(self) -> dict:
        """The §5 invalidity census over the whole corpus."""
        validation = self.study.validation()
        valid = sorted(validation.valid)
        invalid = sorted(validation.invalid)
        pool = self.pool
        if pool is not None:
            futures = [
                pool.submit(_census_task, valid),
                pool.submit(_census_task, invalid),
            ]
            valid_stats, invalid_stats = [
                future.result() for future in futures
            ]
        else:
            valid_stats = _census_population(self.dataset, valid)
            invalid_stats = _census_population(self.dataset, invalid)
        return {
            "digest": self.digest,
            "n_certificates": len(self.dataset.certificates),
            "n_scans": len(self.dataset.scans),
            "n_observations": self.dataset.n_observations,
            "considered": validation.considered,
            "invalid_fraction": validation.invalid_fraction,
            "valid": valid_stats,
            "invalid": invalid_stats,
        }

    def census_slice(self, population: str) -> dict:
        """One population's census slice (``valid`` / ``invalid``)."""
        validation = self.study.validation()
        fingerprints = sorted(
            validation.valid if population == "valid" else validation.invalid
        )
        pool = self.pool
        if pool is not None:
            stats = pool.submit(_census_task, fingerprints).result()
        else:
            stats = _census_population(self.dataset, fingerprints)
        stats["population"] = population
        stats["digest"] = self.digest
        return stats

    def sample(self, n: int = 256) -> dict:
        """Deterministic query seeds for load generators.

        Strided over the sorted populations, so a loadgen run touches
        the corpus uniformly rather than one hot page.  ``asns`` lists
        only ASes that clear the §7.4 device threshold, so every seeded
        ``/as/<asn>/reassignment`` answers 200.
        """
        self.warm()
        assert self._key_groups is not None and self._track_index is not None
        assert self._as_stats is not None
        fingerprints = _strided(
            sorted(self.study.validation().results), n
        )
        asns = sorted(
            asn for asn, stats in self._as_stats.items()
            if stats.n_devices >= REASSIGNMENT_MIN_DEVICES
        )
        return {
            "digest": self.digest,
            "fingerprints": [
                fingerprint.hex() for fingerprint in fingerprints
            ],
            "keys": _strided(sorted(self._key_groups), n),
            "ips": [
                _format_ip(ip) for ip in _strided(
                    sorted(self._track_index), n
                )
            ],
            "asns": _strided(asns, n),
        }

    # --- fleet-internal endpoints ----------------------------------------------
    #
    # Partial aggregates the scatter-gather router sums across shards.
    # Integer counts and histograms only: every merged answer must be
    # byte-identical to the one a single server computes over the whole
    # corpus, so no shard ever ships a float the router would have to
    # re-derive rounding for.

    def fleet_census(self) -> dict:
        """Mergeable census partials for this engine's certificates."""
        validation = self.study.validation()
        return {
            "digest": self.digest,
            "n_certificates": len(self.dataset.certificates),
            "n_scans": len(self.dataset.scans),
            "n_observations": self.dataset.n_observations,
            "n_valid": len(validation.valid),
            "n_invalid": len(validation.invalid),
            "valid": _census_aggregates(
                self.dataset, sorted(validation.valid)
            ),
            "invalid": _census_aggregates(
                self.dataset, sorted(validation.invalid)
            ),
        }

    def fleet_seeds(self) -> dict:
        """Whole seed populations (unstrided) for router-side merging.

        Addresses and AS numbers ship as integers: the router must
        merge-sort numerically before striding, and dotted-quad strings
        do not sort like the addresses they name.
        """
        self.warm()
        assert self._key_groups is not None and self._track_index is not None
        assert self._as_stats is not None
        return {
            "digest": self.digest,
            "fingerprints": [
                fingerprint.hex()
                for fingerprint in sorted(self.study.validation().results)
            ],
            "keys": sorted(self._key_groups),
            "ips": sorted(self._track_index),
            "as_devices": {
                str(asn): stats.n_devices
                for asn, stats in self._as_stats.items()
            },
        }

    def fleet_as(self, asn_text: str) -> dict:
        """Raw §7.4 counts for one AS (200 with zeros when unseen)."""
        self.warm()
        assert self._as_stats is not None
        asn = _parse_asn(asn_text)
        stats = self._as_stats.get(asn) or ASAssignmentStats(
            asn=asn, n_devices=0, n_static=0, n_fully_dynamic=0
        )
        return {
            "asn": asn,
            "digest": self.digest,
            "n_devices": stats.n_devices,
            "n_static": stats.n_static,
            "n_fully_dynamic": stats.n_fully_dynamic,
        }
