"""repro — a full reproduction of *Measuring and Applying Invalid SSL
Certificates: The Silent Majority* (Chung et al., IMC 2016).

Layers:

* :mod:`repro.x509` — from-scratch X.509: DER, RSA, chains, trust stores;
* :mod:`repro.net` — IPv4/prefix math, BGP routing history, AS registry;
* :mod:`repro.internet` — the simulated device/website population;
* :mod:`repro.scanner` — zmap-like full-IPv4 scan campaigns;
* :mod:`repro.core` — the paper's pipeline: validation, comparison
  analyses, certificate linking, device tracking;
* :mod:`repro.datasets` — ready-made synthetic corpora;
* :mod:`repro.study` — the one-object facade over the whole pipeline.

Quickstart::

    from repro.datasets import tiny
    from repro.study import Study

    study = Study.from_synthetic(tiny())
    print(f"invalid: {study.validation().invalid_fraction:.1%}")
    print(f"linked devices: {len(study.pipeline().groups)}")
"""

from .study import Study

__version__ = "1.0.0"

__all__ = ["Study", "__version__"]
