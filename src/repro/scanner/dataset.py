"""The collected scan corpus and its indexes.

:class:`ScanDataset` is the hand-off point between the substrate (scanner
over a simulated world — or a :class:`~repro.io.backends.DatasetBackend`
loading real scan files) and the paper's analysis pipeline.  Downstream
code sees only scans, observations, and certificates; nothing about the
simulator leaks through except the ground-truth ``entity`` tags that the
test suite (and nothing else) consumes.

Internally the corpus is **columnar**: on first use the row scans are
interned into :class:`~repro.scanner.columns.ObservationColumns` (parallel
``array`` columns of small integers) and inverted once into a CSR
:class:`~repro.scanner.columns.ObservationIndex`.  Every per-certificate
query — ``appearances``, ``handshake_of``, ``entities_of``,
``ips_by_scan``, lifetimes — then costs O(that certificate's sightings)
instead of O(total observations).

Setting ``REPRO_DATASET_PARITY=1`` in the environment makes every dataset
assert, at index-build time, that the columnar answers match a naive
row-path recomputation (the legacy implementation); the test suite also
exercises :meth:`verify_index_parity` directly on seeded worlds.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..internet.population import World
from ..x509.certificate import Certificate
from .campaign import ScanCampaign
from .columns import CertIntervals, ObservationColumns, ObservationIndex, RowDelta
from .engine import ScanEngine
from .records import Scan
from .shards import columns_equal, merge_shards, scans_over_columns

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..core.kernels import FeatureMatrix
    from ..io.backends import DatasetBackend

__all__ = ["ScanDataset"]

#: Environment knob: assert columnar/row parity on every index build.
PARITY_ENV = "REPRO_DATASET_PARITY"

#: Environment knob (shared with the linking kernels): replay the legacy
#: row generation after every columnar collection and assert bitwise
#: identity of rows, interning tables, and certificate-store order.
LINK_PARITY_ENV = "REPRO_LINK_PARITY"


class ScanDataset:
    """An ordered collection of scans plus the certificate table."""

    def __init__(
        self,
        scans: Sequence[Scan],
        certificates: dict[bytes, Certificate],
        backend: Optional["DatasetBackend"] = None,
    ) -> None:
        self.scans: list[Scan] = sorted(scans, key=lambda s: (s.day, s.source))
        self.certificates = certificates
        self.backend = backend
        self._columns: Optional[ObservationColumns] = None
        self._observation_index: Optional[ObservationIndex] = None
        self._intervals: Optional[CertIntervals] = None
        self._feature_matrix: Optional["FeatureMatrix"] = None
        self._corpus_digest: Optional[str] = None

    @classmethod
    def collect(
        cls,
        world: World,
        campaigns: Iterable[ScanCampaign],
        collect_handshakes: bool = False,
        workers: int = 1,
        columnar: bool = True,
    ) -> "ScanDataset":
        """Run every campaign over the world and gather the corpus.

        ``collect_handshakes`` stores TLS/transport traits with each
        observation — richer than the paper's corpora, enabling the
        network-fingerprint linking extension.  ``workers`` fans scan days
        out over processes; results are identical to ``workers=1`` because
        each day's RNG is keyed by (seed, campaign, day).

        The default path generates **directly into columnar day shards**
        and merges them once, in (day, source) order — the dataset adopts
        the merged :class:`ObservationColumns` immediately (no second
        columnarization pass) and the scans are lazy row views over it.
        ``columnar=False`` selects the legacy row emitter, kept as the
        parity fallback; ``REPRO_LINK_PARITY=1`` replays it after every
        columnar collection and asserts the two corpora are bitwise
        identical.
        """
        engine = ScanEngine(world, collect_handshakes=collect_handshakes)
        campaigns = list(campaigns)
        if not columnar:
            scans: list[Scan] = []
            for campaign in campaigns:
                scans.extend(engine.run_campaign_rows(campaign))
            return cls(scans, engine.certificate_store)
        shards = []
        for campaign in campaigns:
            shards.extend(engine.run_campaign_shards(campaign, workers=workers))
        shards.sort(key=lambda shard: (shard.day, shard.source))
        columns, scan_meta = merge_shards(shards)
        dataset = cls(
            scans_over_columns(columns, scan_meta), engine.certificate_store
        )
        dataset._columns = columns
        if os.environ.get(LINK_PARITY_ENV):
            dataset._verify_generation_parity(world, campaigns, collect_handshakes)
        return dataset

    def _verify_generation_parity(
        self,
        world: World,
        campaigns: "list[ScanCampaign]",
        collect_handshakes: bool,
    ) -> None:
        """Replay the legacy row generation and assert bitwise identity.

        Uses the engine's quiet row emitter (no metrics, no spans) so the
        parity replay never perturbs observability counters, then checks
        every scan's rows, the merged interning tables, and the
        certificate-store insertion order against the columnar result.
        """
        engine = ScanEngine(world, collect_handshakes=collect_handshakes)
        row_scans: list[Scan] = []
        for campaign in campaigns:
            for day in campaign.scan_days:
                row_scans.append(Scan(
                    day=day,
                    source=campaign.name,
                    observations=engine.row_observations(campaign, day),
                ))
        row_scans.sort(key=lambda scan: (scan.day, scan.source))
        assert [(scan.day, scan.source) for scan in row_scans] == [
            (scan.day, scan.source) for scan in self.scans
        ], "generation parity: scan schedule diverges"
        for row_scan, lazy_scan in zip(row_scans, self.scans):
            assert lazy_scan.observations == row_scan.observations, (
                "generation parity: rows diverge in "
                f"{row_scan.source}/day={row_scan.day}"
            )
        assert list(engine.certificate_store) == list(self.certificates), (
            "generation parity: certificate store order diverges"
        )
        reference = ObservationColumns.from_scans(row_scans)
        assert columns_equal(reference, self._columns), (
            "generation parity: merged columns diverge"
        )

    @classmethod
    def from_backend(cls, backend: "DatasetBackend") -> "ScanDataset":
        """Materialize a dataset from any corpus-storage backend.

        A mapped backend (format 3 container) takes the zero-copy fast
        path: the dataset adopts the memoryview-backed columns and the
        lazy certificate mapping directly, so opening stays O(1) — no
        row rehydration, no DER parsing, no column copies.
        """
        if getattr(backend, "mapped", False):
            dataset = cls(
                backend.load_scans(),
                backend.load_certificates(),
                backend=backend,
            )
            dataset._columns = backend.columns
            return dataset
        dataset = cls(
            list(backend.load_scans()),
            dict(backend.load_certificates()),
            backend=backend,
        )
        # An in-memory backend already holds the columnar view; adopt it
        # instead of re-interning, provided the scan order matches the
        # dataset's (day, source) sort.
        columns = getattr(backend, "columns", None)
        scan_meta = getattr(backend, "scan_meta", None)
        if columns is not None and scan_meta is not None:
            meta_order = [(day, source) for day, source, _, _ in scan_meta]
            if meta_order == [(scan.day, scan.source) for scan in dataset.scans]:
                dataset._columns = columns
        return dataset

    # --- columnar core ---------------------------------------------------------

    @property
    def columns(self) -> ObservationColumns:
        """The interned columnar view of every observation (built once)."""
        return self.build_columns()

    def build_columns(self, workers: int = 1) -> ObservationColumns:
        """The columnar view, columnarizing with ``workers`` on first use."""
        if self._columns is None:
            self._columns = ObservationColumns.from_scans(
                self.scans, workers=workers
            )
        return self._columns

    @property
    def index(self) -> ObservationIndex:
        """The per-certificate CSR index over the columns (built once)."""
        if self._observation_index is None:
            self._observation_index = ObservationIndex(self.columns)
            if os.environ.get(PARITY_ENV):
                self.verify_index_parity()
        return self._observation_index

    @property
    def intervals(self) -> CertIntervals:
        """Per-certificate interval/dedup arrays (one CSR sweep, built once)."""
        if self._intervals is None:
            self._intervals = CertIntervals(self.index)
        return self._intervals

    @property
    def feature_matrix(self) -> "FeatureMatrix":
        """Interned §6.3 feature values of every certificate (built once).

        Imported lazily: :mod:`repro.core.kernels` depends on the feature
        extractors in :mod:`repro.core.features`, which import this module.
        """
        return self.build_feature_matrix()

    def build_feature_matrix(self, workers: int = 1) -> "FeatureMatrix":
        """The feature matrix, extracting with ``workers`` on first use."""
        if self._feature_matrix is None:
            from ..core.kernels import FeatureMatrix

            self._feature_matrix = FeatureMatrix.from_certificates(
                self.certificates, workers=workers
            )
        return self._feature_matrix

    # --- derived-artifact plumbing (repro.io.artifacts) ------------------------

    @property
    def kernel_state(
        self,
    ) -> "tuple[Optional[ObservationColumns], Optional[ObservationIndex], Optional[CertIntervals], Optional[FeatureMatrix]]":
        """Whatever kernels are currently built (no builds triggered)."""
        return (
            self._columns, self._observation_index,
            self._intervals, self._feature_matrix,
        )

    def adopt_kernels(
        self,
        columns: Optional[ObservationColumns] = None,
        index: Optional[ObservationIndex] = None,
        intervals: Optional[CertIntervals] = None,
        matrix: Optional["FeatureMatrix"] = None,
    ) -> None:
        """Install externally built (cache-loaded) kernels."""
        if columns is not None:
            self._columns = columns
        if index is not None:
            self._observation_index = index
        if intervals is not None:
            self._intervals = intervals
        if matrix is not None:
            self._feature_matrix = matrix

    def extend_from_shard(
        self,
        shards,
        certificates: dict[bytes, Certificate],
        path,
        cache=None,
        workers: int = 1,
    ) -> "ScanDataset":
        """Append one day's shard(s) and return the grown mapped dataset.

        The O(day) ingestion entry point over a format 3 mapped corpus:
        :func:`repro.io.store.append_shards` emits the grown container
        (raw-copying every unchanged byte range), the new container is
        re-opened zero-copy, and any kernel this dataset has already
        built — CSR index, interval arrays, feature matrix — is
        delta-merged onto the grown corpus through the ``extended``
        constructors instead of being rebuilt, all bitwise-identical to
        a cold build.  When ``cache`` (an
        :class:`~repro.io.artifacts.ArtifactCache`) is given, the grown
        digest's lineage is recorded so a warm artifact hit on the base
        corpus can serve the grown one via one delta-merge.
        """
        if not getattr(self.backend, "mapped", False):
            raise ValueError(
                "extend_from_shard requires a format 3 mapped dataset "
                "(open the corpus via load_dataset)"
            )
        from ..io.backends import MappedBackend
        from ..io.store import append_shards

        result = append_shards(self.backend.path, shards, certificates, path)
        grown = ScanDataset.from_backend(MappedBackend(result.path))
        grown._corpus_digest = result.digest
        if self._observation_index is not None or self._intervals is not None:
            delta = RowDelta(
                grown.columns, result.base_observations,
                result.base_observed_certs,
            )
            if self._observation_index is not None:
                grown._observation_index = ObservationIndex.extended(
                    self._observation_index, delta
                )
            if self._intervals is not None:
                grown._intervals = CertIntervals.extended(
                    self._intervals, delta
                )
        if self._feature_matrix is not None:
            from ..core.kernels import FeatureMatrix

            grown._feature_matrix = FeatureMatrix.extended(
                self._feature_matrix, grown.certificates, workers=workers
            )
        if cache is not None:
            cache.record_lineage(result.digest, self.corpus_digest())
        return grown

    def materialize(self) -> "ScanDataset":
        """Copy every mapped view into process-local storage (in place).

        The explicit escape hatch out of the zero-copy regime: after
        this, no column, kernel array, or certificate depends on the
        backing ``mmap`` and the dataset pickles by value.  Bytes copied
        out of the map are counted in ``io.bytes_materialized``.
        """
        if self._columns is not None:
            self._columns.materialize()
        if self._observation_index is not None:
            self._observation_index.materialize()
        if self._intervals is not None:
            self._intervals.materialize()
        if not isinstance(self.certificates, dict):
            self.certificates = dict(self.certificates)
        return self

    # --- pickling (process fan-out) --------------------------------------------
    #
    # Workers receive datasets through the pool initializer.  A mapped
    # dataset ships as its container *path* plus whatever kernels are
    # already built: the worker re-maps the file on unpickle, so N
    # workers share one physical copy of the columns through the page
    # cache instead of each deserializing its own.  Non-mapped datasets
    # pickle by value, materializing any stray mapped kernel first
    # (memoryviews cannot pickle).

    def __getstate__(self) -> dict:
        if getattr(self.backend, "mapped", False):
            index = self._observation_index
            if index is not None:
                # Ship the CSR arrays alone — the index object itself
                # references the mapped (unpicklable) columns.
                index.materialize()
            return {
                "__mapped__": True,
                "backend": self.backend,  # ships as the container path
                "index": (
                    (index._offsets, index._order)
                    if index is not None else None
                ),
                "_intervals": (
                    self._intervals.materialize()
                    if self._intervals is not None else None
                ),
                "_feature_matrix": self._feature_matrix,
                "_corpus_digest": self._corpus_digest,
            }
        if self._columns is not None and self._columns.is_mapped:
            self._columns.materialize()
        if self._observation_index is not None:
            self._observation_index.materialize()
        if self._intervals is not None:
            self._intervals.materialize()
        if not isinstance(self.certificates, dict):
            self.certificates = dict(self.certificates)
        return dict(self.__dict__)

    def __setstate__(self, state: dict) -> None:
        if state.pop("__mapped__", False):
            remapped = ScanDataset.from_backend(state.pop("backend"))
            self.__dict__.update(remapped.__dict__)
            arrays = state.pop("index")
            if arrays is not None:
                # Rebuild the index around the re-mapped columns from
                # the shipped CSR arrays (no O(n) counting sort).
                index = ObservationIndex.__new__(ObservationIndex)
                index.columns = self._columns
                index._offsets, index._order = arrays
                self._observation_index = index
            self.__dict__.update(state)
            return
        self.__dict__.update(state)

    def corpus_digest(self, workers: int = 1) -> str:
        """The content digest keying this corpus' cached artifacts.

        Backends that know their own identity (archive file bytes,
        already-interned columns) answer directly; otherwise the digest
        is the canonical hash over this dataset's columnar view, built
        with ``workers`` if not built yet — so on a cold run the digest
        computation *is* the sharded columnarization, not wasted work.
        """
        if self._corpus_digest is None:
            backend_digest = getattr(self.backend, "corpus_digest", None)
            if backend_digest is not None:
                self._corpus_digest = backend_digest()
            else:
                from ..io.artifacts import columns_digest

                self._corpus_digest = columns_digest(
                    self.build_columns(workers=workers),
                    [(scan.day, scan.source) for scan in self.scans],
                    self.certificates,
                )
        return self._corpus_digest

    def verify_index_parity(self) -> None:
        """Assert the columnar index agrees with the legacy row path.

        Recomputes appearances, handshakes, and entity sets for every
        certificate by walking the row scans (the pre-columnar
        implementation) and compares; raises ``AssertionError`` on any
        divergence.  O(corpus); meant for tests and the parity env knob.
        """
        index = self._observation_index or ObservationIndex(self.columns)
        row_appearances: dict[bytes, list[tuple[int, int]]] = {}
        row_handshakes: dict[bytes, object] = {}
        row_entities: dict[bytes, set[str]] = {}
        for scan_idx, scan in enumerate(self.scans):
            for obs in scan.observations:
                row_appearances.setdefault(obs.fingerprint, []).append(
                    (scan_idx, obs.ip)
                )
                if obs.handshake is not None and obs.fingerprint not in row_handshakes:
                    row_handshakes[obs.fingerprint] = obs.handshake
                if obs.entity:
                    row_entities.setdefault(obs.fingerprint, set()).add(obs.entity)
        observed = set(row_appearances)
        for fingerprint in observed | set(self.certificates):
            assert index.appearances(fingerprint) == row_appearances.get(
                fingerprint, []
            ), f"appearance mismatch: {fingerprint.hex()[:12]}"
            assert index.handshake_of(fingerprint) == row_handshakes.get(
                fingerprint
            ), f"handshake mismatch: {fingerprint.hex()[:12]}"
            assert index.entities_of(fingerprint) == row_entities.get(
                fingerprint, set()
            ), f"entity mismatch: {fingerprint.hex()[:12]}"

    def handshake_of(self, fingerprint: bytes) -> Optional[object]:
        """A handshake record observed with the certificate, if collected."""
        return self.index.handshake_of(fingerprint)

    # --- basic shape -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.scans)

    @property
    def n_observations(self) -> int:
        """Total sightings across all scans."""
        return sum(len(scan) for scan in self.scans)

    def scans_from(self, source: str) -> list[Scan]:
        """All scans of one campaign, in day order."""
        return [scan for scan in self.scans if scan.source == source]

    def scan_days(self) -> list[int]:
        """Distinct scan days, sorted."""
        return sorted({scan.day for scan in self.scans})

    def certificate(self, fingerprint: bytes) -> Certificate:
        """Resolve a fingerprint to its certificate."""
        return self.certificates[fingerprint]

    # --- per-certificate indexes --------------------------------------------------

    def appearances(self, fingerprint: bytes) -> list[tuple[int, int]]:
        """(scan index, ip) sightings of one certificate."""
        return self.index.appearances(fingerprint)

    def scan_indexes_of(self, fingerprint: bytes) -> list[int]:
        """Sorted distinct scan indexes where the certificate appeared."""
        return self.index.scan_indexes_of(fingerprint)

    def first_last_day(self, fingerprint: bytes) -> tuple[int, int]:
        """Days of the first and last sighting."""
        scan_idxs = self.scan_indexes_of(fingerprint)
        if not scan_idxs:
            raise KeyError(f"certificate never observed: {fingerprint.hex()[:12]}")
        return self.scans[scan_idxs[0]].day, self.scans[scan_idxs[-1]].day

    def lifetime_days(self, fingerprint: bytes) -> int:
        """Inclusive observed lifetime: one scan → one day (§5.1)."""
        first, last = self.first_last_day(fingerprint)
        return last - first + 1

    def ips_by_scan(self, fingerprint: bytes) -> dict[int, set[int]]:
        """scan index → set of addresses advertising the certificate."""
        return self.index.ips_by_scan(fingerprint)

    def mean_ips_per_scan(self, fingerprint: bytes) -> float:
        """Average distinct advertising addresses per scan it appears in."""
        by_scan = self.ips_by_scan(fingerprint)
        return sum(len(ips) for ips in by_scan.values()) / len(by_scan)

    def max_ips_in_any_scan(self, fingerprint: bytes) -> int:
        """Peak simultaneous advertising addresses (the §6.2 dedup input)."""
        return max(len(ips) for ips in self.ips_by_scan(fingerprint).values())

    # --- ground truth (test-suite only) ---------------------------------------------

    def entities_of(self, fingerprint: bytes) -> set[str]:
        """Ground-truth entities that served the certificate.

        For simulator validation only — the analysis layer never calls this.
        """
        return self.index.entities_of(fingerprint)
