"""The collected scan corpus and its indexes.

:class:`ScanDataset` is the hand-off point between the substrate (scanner
over a simulated world — or, in principle, a loader over real scan files)
and the paper's analysis pipeline.  Downstream code sees only scans,
observations, and certificates; nothing about the simulator leaks through
except the ground-truth ``entity`` tags that the test suite (and nothing
else) consumes.

The class maintains the indexes the analyses in §§4–7 need constantly:
per-certificate appearance lists, first/last sighting, inclusive lifetimes
(a certificate seen in one scan has a one-day lifetime, §5.1), and
per-scan address sets.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..internet.population import World
from ..x509.certificate import Certificate
from .campaign import ScanCampaign
from .engine import ScanEngine
from .records import Observation, Scan

__all__ = ["ScanDataset"]


class ScanDataset:
    """An ordered collection of scans plus the certificate table."""

    def __init__(
        self, scans: Sequence[Scan], certificates: dict[bytes, Certificate]
    ) -> None:
        self.scans: list[Scan] = sorted(scans, key=lambda s: (s.day, s.source))
        self.certificates = certificates
        self._appearance_index: Optional[dict[bytes, list[tuple[int, int]]]] = None

    @classmethod
    def collect(
        cls,
        world: World,
        campaigns: Iterable[ScanCampaign],
        collect_handshakes: bool = False,
    ) -> "ScanDataset":
        """Run every campaign over the world and gather the corpus.

        ``collect_handshakes`` stores TLS/transport traits with each
        observation — richer than the paper's corpora, enabling the
        network-fingerprint linking extension.
        """
        engine = ScanEngine(world, collect_handshakes=collect_handshakes)
        scans: list[Scan] = []
        for campaign in campaigns:
            scans.extend(engine.run_campaign(campaign))
        return cls(scans, engine.certificate_store)

    def handshake_of(self, fingerprint: bytes) -> Optional[object]:
        """A handshake record observed with the certificate, if collected."""
        for scan in self.scans:
            for obs in scan.observations:
                if obs.fingerprint == fingerprint and obs.handshake is not None:
                    return obs.handshake
        return None

    # --- basic shape -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.scans)

    @property
    def n_observations(self) -> int:
        """Total sightings across all scans."""
        return sum(len(scan) for scan in self.scans)

    def scans_from(self, source: str) -> list[Scan]:
        """All scans of one campaign, in day order."""
        return [scan for scan in self.scans if scan.source == source]

    def scan_days(self) -> list[int]:
        """Distinct scan days, sorted."""
        return sorted({scan.day for scan in self.scans})

    def certificate(self, fingerprint: bytes) -> Certificate:
        """Resolve a fingerprint to its certificate."""
        return self.certificates[fingerprint]

    # --- per-certificate indexes --------------------------------------------------

    def _index(self) -> dict[bytes, list[tuple[int, int]]]:
        """fingerprint → [(scan index, ip), …] in scan order (built once)."""
        if self._appearance_index is None:
            index: dict[bytes, list[tuple[int, int]]] = {}
            for scan_idx, scan in enumerate(self.scans):
                for obs in scan.observations:
                    index.setdefault(obs.fingerprint, []).append((scan_idx, obs.ip))
            self._appearance_index = index
        return self._appearance_index

    def appearances(self, fingerprint: bytes) -> list[tuple[int, int]]:
        """(scan index, ip) sightings of one certificate."""
        return self._index().get(fingerprint, [])

    def scan_indexes_of(self, fingerprint: bytes) -> list[int]:
        """Sorted distinct scan indexes where the certificate appeared."""
        return sorted({scan_idx for scan_idx, _ in self.appearances(fingerprint)})

    def first_last_day(self, fingerprint: bytes) -> tuple[int, int]:
        """Days of the first and last sighting."""
        sightings = self.appearances(fingerprint)
        if not sightings:
            raise KeyError(f"certificate never observed: {fingerprint.hex()[:12]}")
        scan_idxs = [scan_idx for scan_idx, _ in sightings]
        return self.scans[min(scan_idxs)].day, self.scans[max(scan_idxs)].day

    def lifetime_days(self, fingerprint: bytes) -> int:
        """Inclusive observed lifetime: one scan → one day (§5.1)."""
        first, last = self.first_last_day(fingerprint)
        return last - first + 1

    def ips_by_scan(self, fingerprint: bytes) -> dict[int, set[int]]:
        """scan index → set of addresses advertising the certificate."""
        result: dict[int, set[int]] = {}
        for scan_idx, ip in self.appearances(fingerprint):
            result.setdefault(scan_idx, set()).add(ip)
        return result

    def mean_ips_per_scan(self, fingerprint: bytes) -> float:
        """Average distinct advertising addresses per scan it appears in."""
        by_scan = self.ips_by_scan(fingerprint)
        return sum(len(ips) for ips in by_scan.values()) / len(by_scan)

    def max_ips_in_any_scan(self, fingerprint: bytes) -> int:
        """Peak simultaneous advertising addresses (the §6.2 dedup input)."""
        return max(len(ips) for ips in self.ips_by_scan(fingerprint).values())

    # --- ground truth (test-suite only) ---------------------------------------------

    def entities_of(self, fingerprint: bytes) -> set[str]:
        """Ground-truth entities that served the certificate.

        For simulator validation only — the analysis layer never calls this.
        """
        entities: set[str] = set()
        for scan in self.scans:
            for obs in scan.observations:
                if obs.fingerprint == fingerprint and obs.entity:
                    entities.add(obs.entity)
        return entities
