"""Scan campaign schedules and blind spots.

Reproduces the two corpora of §4.1:

* **University of Michigan** — 156 scans, 2012-06-10 … 2014-01-29,
  irregular cadence (3.83-day average, gaps up to 24 days, one 42-day
  streak of daily scans);
* **Rapid7** — 74 scans, 2013-10-30 … 2015-03-30, almost always exactly
  seven days apart.

Each campaign also has a *persistent prefix blacklist* (operator- or
target-requested, never scanned — the paper attributes most of the
two-corpus discrepancy to these) plus a small per-scan random miss rate
(the residual "missing hosts spread across the entire IP space" of
Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.ip import Prefix
from ..seeding import stable_rng
from ..simtime import RAPID7_FIRST_SCAN_DAY, UMICH_FIRST_SCAN_DAY, date_to_day

import datetime

__all__ = [
    "ScanCampaign",
    "umich_schedule",
    "rapid7_schedule",
    "make_campaigns",
]

_UMICH_LAST_DAY = date_to_day(datetime.date(2014, 1, 29))
_RAPID7_LAST_DAY = date_to_day(datetime.date(2015, 3, 30))


@dataclass(frozen=True)
class ScanCampaign:
    """One scan operator: schedule plus blind spots."""

    name: str
    scan_days: tuple[int, ...]
    blacklist: tuple[Prefix, ...] = ()
    #: Per-scan probability that any given responding host is missed.
    random_miss_rate: float = 0.0

    def is_blacklisted(self, ip: int) -> bool:
        """Does this campaign never probe the address?"""
        return any(prefix.contains(ip) for prefix in self.blacklist)


def umich_schedule(stride: int = 1) -> tuple[int, ...]:
    """The University of Michigan scan days.

    Generated deterministically: a 42-day daily streak, surrounding
    irregular gaps averaging ≈3.8 days with occasional long pauses.
    ``stride`` keeps every ``stride``-th scan (for fast test datasets).
    """
    rng = stable_rng("umich-schedule")
    days = [UMICH_FIRST_SCAN_DAY]
    streak_start = UMICH_FIRST_SCAN_DAY + 200
    while days[-1] < _UMICH_LAST_DAY:
        current = days[-1]
        if streak_start <= current < streak_start + 42:
            gap = 1
        else:
            roll = rng.random()
            if roll < 0.70:
                gap = rng.randrange(2, 6)
            elif roll < 0.95:
                gap = rng.randrange(6, 12)
            else:
                gap = rng.randrange(12, 25)
        days.append(current + gap)
    days = [day for day in days if day <= _RAPID7_LAST_DAY]
    return tuple(days[::stride])


def rapid7_schedule(stride: int = 1) -> tuple[int, ...]:
    """The Rapid7 scan days: weekly, almost metronomic."""
    days = list(range(RAPID7_FIRST_SCAN_DAY, _RAPID7_LAST_DAY + 1, 7))
    return tuple(days[::stride])


def _campaign_blacklist(name: str, prefixes: list[Prefix], fraction: float) -> tuple[Prefix, ...]:
    """Select the announced prefixes a campaign persistently never scans.

    The paper found 11,624 BGP prefixes always missing from Rapid7 scans
    and 1,906 always missing from the University of Michigan scans, and
    attributes them to networks requesting exclusion (whole announcements
    go dark for that operator).  The blacklists here are the scaled
    equivalent: whole announced prefixes, so the §4.1 per-prefix
    attribution can rediscover them.
    """
    rng = stable_rng("blacklist", name)
    return tuple(prefix for prefix in prefixes if rng.random() < fraction)


def make_campaigns(
    announced_prefixes: list[Prefix],
    stride: int = 1,
    umich_blacklist_fraction: float = 0.02,
    rapid7_blacklist_fraction: float = 0.10,
    umich_miss_rate: float = 0.02,
    rapid7_miss_rate: float = 0.05,
    blacklistable: list[Prefix] = None,
) -> tuple[ScanCampaign, ScanCampaign]:
    """Build both campaigns over a world's announced prefixes.

    ``blacklistable`` restricts which announcements may go dark (the world
    builder passes the generic tails, keeping the paper's named ISPs
    observable in both corpora).
    """
    candidates = announced_prefixes if blacklistable is None else blacklistable
    umich = ScanCampaign(
        name="umich",
        scan_days=umich_schedule(stride),
        blacklist=_campaign_blacklist("umich", candidates, umich_blacklist_fraction),
        random_miss_rate=umich_miss_rate,
    )
    rapid7 = ScanCampaign(
        name="rapid7",
        scan_days=rapid7_schedule(stride),
        blacklist=_campaign_blacklist("rapid7", candidates, rapid7_blacklist_fraction),
        random_miss_rate=rapid7_miss_rate,
    )
    return umich, rapid7
