"""Columnar observation storage and the corpus-wide index.

The analyses of §§4–7 re-traverse the corpus constantly: every
certificate is asked for its appearances, lifetimes, per-scan address
sets, ground-truth entities, and (for the network-fingerprint extension)
an observed handshake.  Row-based storage answers those questions by
walking every observation of every scan — O(total observations) per
query — which is exactly the shape production scan pipelines (ZMap /
Censys-style corpora) abandoned in favour of columnar layouts with
precomputed per-certificate indexes.

:class:`ObservationColumns` is that layout: one interning table per
string-ish domain (fingerprints, entity tags, handshake records) plus
parallel ``array``-backed columns of small integers, one entry per
observation, in corpus order (scans sorted, observations in scan order).

:class:`ObservationIndex` is a CSR (compressed sparse row) inversion of
the ``cert_id`` column, built once in O(n) with a counting sort: for any
certificate, the positions of all its observations are one contiguous
slice, so every per-certificate query is O(k) in that certificate's own
sighting count.

Incremental ingestion: when a corpus grows by appending scan days
(:func:`repro.io.store.append_shards`), the new rows form a pure tail —
existing positions, scan indexes, and interned ids never change.
:class:`RowDelta` groups that tail by certificate once, and the
``extended`` constructors on :class:`ObservationIndex` and
:class:`CertIntervals` splice it into the base structures in O(delta)
instead of rebuilding in O(corpus), bitwise-identical to a full rebuild.
"""

from __future__ import annotations

from array import array
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Sequence

from ..obs import runtime as obs_runtime
from ..tls.handshake import HandshakeRecord
from .records import Observation, Scan

__all__ = [
    "ObservationColumns", "ObservationIndex", "CertIntervals", "RowDelta",
]


def _init_columns_worker(obs_enabled: bool) -> None:
    obs_runtime.install_worker(obs_enabled)


def _columnarize_chunk(
    task: "tuple[int, int, Sequence[Scan]]",
) -> "tuple[ObservationColumns, Optional[dict]]":
    """Columnarize one contiguous run of scans into a shard-local table."""
    shard_index, base_scan_index, scans = task
    mark = obs_runtime.task_mark()
    with obs_runtime.span(f"kernels/columns_shard={shard_index}"):
        columns = ObservationColumns()
        entity_ids: dict[str, int] = {"": 0}
        handshake_ids: dict[HandshakeRecord, int] = {}
        for offset, scan in enumerate(scans):
            for obs in scan.observations:
                columns.append(
                    base_scan_index + offset, obs, entity_ids=entity_ids,
                    handshake_ids=handshake_ids,
                )
    return columns, obs_runtime.task_delta(mark)


#: The five per-observation columns, with their canonical typecodes.
COLUMN_TYPECODES = (
    ("scan_idx", "I"), ("ip", "I"), ("cert_id", "I"),
    ("entity_id", "I"), ("handshake_id", "i"),
)


def _materialize_column(column) -> array:
    """Copy a mapped memoryview column into a process-local array."""
    if isinstance(column, array):
        return column
    materialized = array(column.format)
    materialized.frombytes(column.cast("B"))
    obs_runtime.inc("io.bytes_materialized", column.nbytes)
    return materialized


class ObservationColumns:
    """Parallel columns over every observation of a corpus.

    Columns (one entry per observation, corpus order):

    * ``scan_idx``  — index into the dataset's sorted scan list;
    * ``ip``        — the observed IPv4 address (as an int);
    * ``cert_id``   — interned fingerprint id (``fingerprints[cert_id]``);
    * ``entity_id`` — interned ground-truth tag (0 is the empty tag);
    * ``handshake_id`` — interned handshake record (-1 when not collected).

    Each column is either a host ``array`` (a freshly interned or
    materialized corpus) or a little-endian ``memoryview`` cast over an
    ``mmap`` of a format 3 container (:meth:`from_segments`) — both
    support the same indexing/slicing/iteration surface, so every
    consumer works unchanged.  Mapped columns are read-only; call
    :meth:`materialize` before mutating.  The fingerprint table of a
    mapped corpus stays a flat 32-byte-stride blob until first use and
    is sliced (and dict-inverted) lazily.
    """

    __slots__ = (
        "scan_idx", "ip", "cert_id", "entity_id", "handshake_id",
        "_fingerprints", "_fingerprint_ids", "_fp_blob",
        "entities", "handshakes", "_source",
    )

    def __init__(self) -> None:
        self.scan_idx = array("I")
        self.ip = array("I")
        self.cert_id = array("I")
        self.entity_id = array("I")
        self.handshake_id = array("i")
        #: cert_id → fingerprint, in first-appearance order.
        self._fingerprints: "Optional[list[bytes]]" = []
        self._fingerprint_ids: "Optional[dict[bytes, int]]" = {}
        self._fp_blob = None
        #: entity_id → tag; id 0 is always the empty tag.
        self.entities: list[str] = [""]
        self.handshakes: list[HandshakeRecord] = []
        #: Keeps the backing mmap reader alive for mapped columns.
        self._source = None

    def __len__(self) -> int:
        return len(self.cert_id)

    # --- mapped construction ---------------------------------------------------

    @classmethod
    def from_segments(
        cls,
        scan_idx, ip, cert_id, entity_id, handshake_id,
        fp_blob,
        entities: "list[str]",
        handshakes: "list[HandshakeRecord]",
        source=None,
    ) -> "ObservationColumns":
        """Wrap already-decoded column buffers (typically mmap views).

        The five columns may be ``memoryview`` casts over a mapped
        container; ``fp_blob`` is the flat 32-byte-stride fingerprint
        blob, sliced lazily on first table access.  ``source`` (the
        segment reader) is retained so the mapping outlives the caller.
        """
        columns = cls.__new__(cls)
        columns.scan_idx = scan_idx
        columns.ip = ip
        columns.cert_id = cert_id
        columns.entity_id = entity_id
        columns.handshake_id = handshake_id
        columns._fingerprints = None
        columns._fingerprint_ids = None
        columns._fp_blob = fp_blob
        columns.entities = entities
        columns.handshakes = handshakes
        columns._source = source
        return columns

    @property
    def fingerprints(self) -> "list[bytes]":
        """cert_id → fingerprint (sliced lazily from a mapped blob)."""
        table = self._fingerprints
        if table is None:
            blob = bytes(self._fp_blob)
            if len(blob) % 32:
                raise ValueError("fingerprint blob not a digest-size multiple")
            table = self._fingerprints = [
                blob[base:base + 32] for base in range(0, len(blob), 32)
            ]
            obs_runtime.inc("io.bytes_materialized", len(blob))
        return table

    @fingerprints.setter
    def fingerprints(self, table: "list[bytes]") -> None:
        self._fingerprints = table
        self._fp_blob = None

    @property
    def fingerprint_ids(self) -> "dict[bytes, int]":
        """fingerprint → cert_id (inverted lazily for mapped corpora)."""
        ids = self._fingerprint_ids
        if ids is None:
            ids = self._fingerprint_ids = {
                fingerprint: cert_id
                for cert_id, fingerprint in enumerate(self.fingerprints)
            }
        return ids

    @fingerprint_ids.setter
    def fingerprint_ids(self, ids: "dict[bytes, int]") -> None:
        self._fingerprint_ids = ids

    @property
    def is_mapped(self) -> bool:
        """True while any column is a view over a mapped container."""
        return any(
            isinstance(getattr(self, name), memoryview)
            for name, _ in COLUMN_TYPECODES
        )

    def materialize(self) -> "ObservationColumns":
        """Copy every mapped column into process-local arrays (in place).

        The explicit escape hatch for mutation paths: mapped columns are
        read-only, so anything that needs :meth:`append` must
        materialize first.  Bytes copied out of the map are counted in
        ``io.bytes_materialized``.
        """
        for name, _ in COLUMN_TYPECODES:
            setattr(self, name, _materialize_column(getattr(self, name)))
        self.fingerprints  # force the table
        self.fingerprint_ids
        self._fp_blob = None  # the table is now authoritative (and mutable)
        self._source = None
        return self

    def nbytes_by_column(self) -> "dict[str, int]":
        """Column name → payload byte size (mapped or materialized)."""
        sizes = {}
        for name, _ in COLUMN_TYPECODES:
            column = getattr(self, name)
            if isinstance(column, memoryview):
                sizes[name] = column.nbytes
            else:
                sizes[name] = len(column) * column.itemsize
        if self._fp_blob is not None:
            sizes["fingerprints"] = len(self._fp_blob)
        else:
            sizes["fingerprints"] = 32 * len(self.fingerprints)
        return sizes

    @classmethod
    def from_scans(
        cls, scans: Sequence[Scan], workers: int = 1
    ) -> "ObservationColumns":
        """Columnarize a row corpus.

        ``workers > 1`` shards contiguous scan runs across a process
        pool, each worker interning into a shard-local table, and merges
        the shards in scan order.  Because the merge re-interns shard
        entries in first-appearance order over the same corpus order the
        serial pass sees, the result is bitwise-identical to serial.
        """
        n_chunks = min(workers, len(scans))
        if n_chunks > 1:
            bounds = [
                round(index * len(scans) / n_chunks)
                for index in range(n_chunks + 1)
            ]
            tasks = [
                (shard, bounds[shard], list(scans[bounds[shard]:bounds[shard + 1]]))
                for shard in range(n_chunks)
                if bounds[shard] < bounds[shard + 1]
            ]
            with ProcessPoolExecutor(
                max_workers=len(tasks),
                initializer=_init_columns_worker,
                initargs=(obs_runtime.enabled(),),
            ) as pool:
                shards = []
                for shard_columns, delta in pool.map(_columnarize_chunk, tasks):
                    shards.append(shard_columns)
                    obs_runtime.absorb(delta)
            return cls._merge_shards(shards)
        columns = cls()
        entity_ids: dict[str, int] = {"": 0}
        handshake_ids: dict[HandshakeRecord, int] = {}
        for scan_index, scan in enumerate(scans):
            for obs in scan.observations:
                columns.append(
                    scan_index, obs, entity_ids=entity_ids,
                    handshake_ids=handshake_ids,
                )
        return columns

    @classmethod
    def _merge_shards(
        cls, shards: Sequence["ObservationColumns"]
    ) -> "ObservationColumns":
        """Concatenate shard tables, remapping local ids to global ones.

        Shards cover contiguous scan ranges and are merged in scan
        order, so re-interning each shard's tables in local-id order
        reproduces exactly the serial first-appearance interning order.
        """
        merged = cls()
        entity_ids: dict[str, int] = {"": 0}
        handshake_ids: dict[HandshakeRecord, int] = {}
        for shard in shards:
            cert_map = array("I", (
                merged.intern_fingerprint(fingerprint)
                for fingerprint in shard.fingerprints
            ))
            entity_map = array("I", bytes(4 * len(shard.entities)))
            for local_id, tag in enumerate(shard.entities):
                global_id = entity_ids.get(tag)
                if global_id is None:
                    global_id = entity_ids[tag] = len(merged.entities)
                    merged.entities.append(tag)
                entity_map[local_id] = global_id
            handshake_map = array("I", bytes(4 * len(shard.handshakes)))
            for local_id, record in enumerate(shard.handshakes):
                global_id = handshake_ids.get(record)
                if global_id is None:
                    global_id = handshake_ids[record] = len(merged.handshakes)
                    merged.handshakes.append(record)
                handshake_map[local_id] = global_id
            merged.scan_idx.extend(shard.scan_idx)
            merged.ip.extend(shard.ip)
            merged.cert_id.extend(cert_map[cert_id] for cert_id in shard.cert_id)
            merged.entity_id.extend(
                entity_map[entity_id] for entity_id in shard.entity_id
            )
            merged.handshake_id.extend(
                handshake_map[handshake_id] if handshake_id >= 0 else -1
                for handshake_id in shard.handshake_id
            )
        return merged

    def append(
        self,
        scan_index: int,
        obs: Observation,
        entity_ids: dict[str, int],
        handshake_ids: dict[HandshakeRecord, int],
    ) -> None:
        """Intern and append one observation."""
        if not isinstance(self.scan_idx, array):
            raise TypeError(
                "mapped columns are read-only; call materialize() first"
            )
        self.scan_idx.append(scan_index)
        self.ip.append(obs.ip)
        self.cert_id.append(self.intern_fingerprint(obs.fingerprint))
        entity_id = entity_ids.get(obs.entity)
        if entity_id is None:
            entity_id = entity_ids[obs.entity] = len(self.entities)
            self.entities.append(obs.entity)
        self.entity_id.append(entity_id)
        if obs.handshake is None:
            self.handshake_id.append(-1)
        else:
            handshake_id = handshake_ids.get(obs.handshake)
            if handshake_id is None:
                handshake_id = handshake_ids[obs.handshake] = len(self.handshakes)
                self.handshakes.append(obs.handshake)
            self.handshake_id.append(handshake_id)

    def intern_fingerprint(self, fingerprint: bytes) -> int:
        """The stable integer id of a fingerprint (assigned on first use)."""
        cert_id = self.fingerprint_ids.get(fingerprint)
        if cert_id is None:
            if self._fp_blob is not None:
                raise TypeError(
                    "mapped fingerprint table is read-only; call "
                    "materialize() first"
                )
            cert_id = self.fingerprint_ids[fingerprint] = len(self.fingerprints)
            self.fingerprints.append(fingerprint)
        return cert_id

    def distinct_ips(self, start: int, stop: int) -> set:
        """Distinct addresses in one contiguous row range (e.g. one scan)."""
        return set(self.ip[start:stop])

    def distinct_fingerprints(self, start: int, stop: int) -> set:
        """Distinct fingerprints in one contiguous row range."""
        fingerprints = self.fingerprints
        return {fingerprints[cert_id] for cert_id in self.cert_id[start:stop]}

    def observation_at(self, position: int) -> Observation:
        """Rehydrate one row (the inverse of :meth:`append`)."""
        handshake_id = self.handshake_id[position]
        return Observation(
            ip=self.ip[position],
            fingerprint=self.fingerprints[self.cert_id[position]],
            entity=self.entities[self.entity_id[position]],
            handshake=(
                self.handshakes[handshake_id] if handshake_id >= 0 else None
            ),
        )


class RowDelta:
    """The appended tail of a grown corpus, grouped by certificate.

    An append (:func:`repro.io.store.append_shards`) only ever adds rows
    at the end: base positions, scan indexes, and interned ids are
    immutable.  One pass over ``columns.cert_id[base_rows:]`` buckets
    the new row positions per certificate, so the ``extended``
    constructors touch only the certificates the delta mentions —
    O(delta), not O(corpus).
    """

    __slots__ = ("columns", "base_rows", "base_certs", "positions")

    def __init__(
        self, columns: ObservationColumns, base_rows: int, base_certs: int
    ) -> None:
        if base_rows > len(columns):
            raise ValueError("delta base beyond the corpus end")
        if base_certs > len(columns.fingerprints):
            raise ValueError("delta base beyond the certificate table")
        self.columns = columns
        self.base_rows = base_rows
        self.base_certs = base_certs
        #: cert_id → new row positions (increasing, all ≥ ``base_rows``).
        positions: dict[int, array] = {}
        for offset, cert_id in enumerate(columns.cert_id[base_rows:]):
            bucket = positions.get(cert_id)
            if bucket is None:
                bucket = positions[cert_id] = array("I")
            bucket.append(base_rows + offset)
        self.positions = positions

    def __len__(self) -> int:
        return len(self.columns) - self.base_rows


def _byte_view(column) -> memoryview:
    """A writable-compatible flat byte view over an array or memoryview."""
    view = memoryview(column)
    if view.format != "B":
        view = view.cast("B")
    return view


class ObservationIndex:
    """CSR inversion of the ``cert_id`` column: certificate → positions.

    ``positions(cert_id)`` is a contiguous slice of observation positions
    in corpus order, so every per-certificate query costs O(its own
    sightings) instead of O(all observations).
    """

    __slots__ = ("columns", "_offsets", "_order")

    def __init__(self, columns: ObservationColumns) -> None:
        self.columns = columns
        n_certs = len(columns.fingerprints)
        counts = array("I", bytes(4 * (n_certs + 1)))
        for cert_id in columns.cert_id:
            counts[cert_id + 1] += 1
        for index in range(1, n_certs + 1):
            counts[index] += counts[index - 1]
        self._offsets = counts  # offsets[i] .. offsets[i+1] bound cert i
        order = array("I", bytes(4 * len(columns)))
        cursor = array("I", counts[:-1])
        for position, cert_id in enumerate(columns.cert_id):
            order[cursor[cert_id]] = position
            cursor[cert_id] += 1
        self._order = order

    @classmethod
    def extended(
        cls, base: "ObservationIndex", delta: RowDelta
    ) -> "ObservationIndex":
        """Splice a row delta into a base index — O(delta + n_certs).

        Every appended position is larger than every base position, so a
        certificate's grown CSR slice is exactly its base slice followed
        by its delta bucket; untouched certificates keep their base
        bytes verbatim (copied in contiguous runs, never walked).
        Bitwise-identical to rebuilding over the grown columns.
        """
        columns = delta.columns
        n_certs = len(columns.fingerprints)
        base_offsets = base._offsets
        base_order = base._order
        if len(base_offsets) != delta.base_certs + 1 \
                or len(base_order) != delta.base_rows:
            raise ValueError("row delta does not extend this index")
        positions = delta.positions
        base_certs = delta.base_certs
        offsets = array("I", bytes(4 * (n_certs + 1)))
        total = 0
        for cert_id in range(n_certs):
            if cert_id < base_certs:
                total += base_offsets[cert_id + 1] - base_offsets[cert_id]
            bucket = positions.get(cert_id)
            if bucket is not None:
                total += len(bucket)
            offsets[cert_id + 1] = total
        order = array("I", bytes(4 * len(columns)))
        dst = _byte_view(order)
        src = _byte_view(base_order)
        write = copied = 0
        for cert_id in sorted(positions):
            # Flush the base bytes of every certificate up to (and
            # including) this one in a single contiguous copy.
            boundary = 4 * base_offsets[min(cert_id + 1, base_certs)]
            if boundary > copied:
                dst[write:write + boundary - copied] = src[copied:boundary]
                write += boundary - copied
                copied = boundary
            chunk = _byte_view(positions[cert_id])
            dst[write:write + len(chunk)] = chunk
            write += len(chunk)
        tail = 4 * base_offsets[base_certs]
        if tail > copied:
            dst[write:write + tail - copied] = src[copied:tail]
            write += tail - copied
        if write != 4 * len(columns):
            raise ValueError("row delta does not cover the grown corpus")
        index = cls.__new__(cls)
        index.columns = columns
        index._offsets = offsets
        index._order = order
        return index

    def materialize(self) -> "ObservationIndex":
        """Copy mapped CSR arrays into process-local storage (in place)."""
        self._offsets = _materialize_column(self._offsets)
        self._order = _materialize_column(self._order)
        return self

    def positions(self, cert_id: int) -> array:
        """Observation positions of one certificate, in corpus order."""
        return self._order[self._offsets[cert_id]:self._offsets[cert_id + 1]]

    def sighting_count(self, cert_id: int) -> int:
        return self._offsets[cert_id + 1] - self._offsets[cert_id]

    # --- per-certificate queries (all O(k) in the certificate's sightings) ---

    def _cert_id(self, fingerprint: bytes) -> Optional[int]:
        return self.columns.fingerprint_ids.get(fingerprint)

    def appearances(self, fingerprint: bytes) -> list[tuple[int, int]]:
        """(scan index, ip) sightings of one certificate, in scan order."""
        cert_id = self._cert_id(fingerprint)
        if cert_id is None:
            return []
        columns = self.columns
        return [
            (columns.scan_idx[pos], columns.ip[pos])
            for pos in self.positions(cert_id)
        ]

    def scan_indexes_of(self, fingerprint: bytes) -> list[int]:
        """Sorted distinct scan indexes where the certificate appeared."""
        cert_id = self._cert_id(fingerprint)
        if cert_id is None:
            return []
        scan_idx = self.columns.scan_idx
        # Positions are in corpus order, so scan indexes arrive sorted.
        distinct: list[int] = []
        for pos in self.positions(cert_id):
            value = scan_idx[pos]
            if not distinct or distinct[-1] != value:
                distinct.append(value)
        return distinct

    def ips_by_scan(self, fingerprint: bytes) -> dict[int, set[int]]:
        """scan index → set of addresses advertising the certificate."""
        cert_id = self._cert_id(fingerprint)
        result: dict[int, set[int]] = {}
        if cert_id is None:
            return result
        columns = self.columns
        for pos in self.positions(cert_id):
            result.setdefault(columns.scan_idx[pos], set()).add(columns.ip[pos])
        return result

    def handshake_of(self, fingerprint: bytes) -> Optional[HandshakeRecord]:
        """The first handshake observed with the certificate, if any."""
        cert_id = self._cert_id(fingerprint)
        if cert_id is None:
            return None
        handshake_id = self.columns.handshake_id
        for pos in self.positions(cert_id):
            if handshake_id[pos] >= 0:
                return self.columns.handshakes[handshake_id[pos]]
        return None

    def entities_of(self, fingerprint: bytes) -> set[str]:
        """Ground-truth entities that served the certificate."""
        cert_id = self._cert_id(fingerprint)
        if cert_id is None:
            return set()
        columns = self.columns
        return {
            columns.entities[columns.entity_id[pos]]
            for pos in self.positions(cert_id)
            if columns.entity_id[pos]
        }


class CertIntervals:
    """Per-certificate scan-interval and multi-homing stats, one CSR sweep.

    The §6 stages keep re-deriving the same five per-certificate scalars —
    dedup wants the per-scan distinct-address extremes, the overlap rule
    wants the (first, last) scan interval, and the lifetime statistics want
    the distinct-scan count — each via a fresh dict-of-sets walk per
    fingerprint.  This computes all of them for every certificate in a
    single pass over the CSR index (positions arrive in corpus order, so
    each certificate's observations group into contiguous per-scan runs).

    Arrays (one entry per ``cert_id``):

    * ``first_scan`` / ``last_scan`` — scan indexes of the first and last
      sighting (-1 when the certificate was never observed);
    * ``n_scans``   — number of distinct scans with at least one sighting;
    * ``max_ips`` / ``min_ips`` — largest / smallest number of distinct
      addresses advertising the certificate in any single scan it appears
      in (0 when never observed).
    """

    __slots__ = ("first_scan", "last_scan", "n_scans", "max_ips", "min_ips")

    def __init__(self, index: ObservationIndex) -> None:
        columns = index.columns
        n_certs = len(columns.fingerprints)
        self.first_scan = array("i", bytes(4 * n_certs))
        self.last_scan = array("i", bytes(4 * n_certs))
        self.n_scans = array("I", bytes(4 * n_certs))
        self.max_ips = array("I", bytes(4 * n_certs))
        self.min_ips = array("I", bytes(4 * n_certs))
        scan_idx = columns.scan_idx
        ip_col = columns.ip
        self._sweep(index, n_certs, scan_idx, ip_col)

    @classmethod
    def extended(
        cls, base: "CertIntervals", delta: RowDelta
    ) -> "CertIntervals":
        """Splice a row delta into base interval arrays — O(delta).

        Appended rows belong to strictly newer scans than anything in
        the base, so the base's final per-scan run is already finalized;
        each touched certificate just replays the sweep over its delta
        bucket seeded from its base scalars (or from scratch for a
        certificate first observed in the delta).  Bitwise-identical to
        rebuilding over the grown index.
        """
        columns = delta.columns
        n_certs = len(columns.fingerprints)
        base_certs = delta.base_certs
        if len(base.first_scan) != base_certs:
            raise ValueError("row delta does not extend these intervals")
        intervals = cls.__new__(cls)
        for name in cls.__slots__:
            typecode = "i" if name in ("first_scan", "last_scan") else "I"
            column = array(typecode, bytes(4 * n_certs))
            src = _byte_view(getattr(base, name))
            _byte_view(column)[:4 * base_certs] = src
            setattr(intervals, name, column)
        for cert_id in range(base_certs, n_certs):
            intervals.first_scan[cert_id] = -1
            intervals.last_scan[cert_id] = -1
        scan_idx = columns.scan_idx
        ip_col = columns.ip
        for cert_id, bucket in delta.positions.items():
            sightings = iter(bucket)
            first_pos = next(sightings)
            run_scan = scan_idx[first_pos]
            run_ips = {ip_col[first_pos]}
            if intervals.first_scan[cert_id] < 0:
                intervals.first_scan[cert_id] = run_scan
                n_scans = 1
                max_ips = min_ips = 0
            else:
                n_scans = intervals.n_scans[cert_id] + 1
                max_ips = intervals.max_ips[cert_id]
                min_ips = intervals.min_ips[cert_id]
            for pos in sightings:
                scan = scan_idx[pos]
                if scan != run_scan:
                    size = len(run_ips)
                    if size > max_ips:
                        max_ips = size
                    if min_ips == 0 or size < min_ips:
                        min_ips = size
                    run_scan = scan
                    run_ips = {ip_col[pos]}
                    n_scans += 1
                else:
                    run_ips.add(ip_col[pos])
            size = len(run_ips)
            if size > max_ips:
                max_ips = size
            if min_ips == 0 or size < min_ips:
                min_ips = size
            intervals.last_scan[cert_id] = run_scan
            intervals.n_scans[cert_id] = n_scans
            intervals.max_ips[cert_id] = max_ips
            intervals.min_ips[cert_id] = min_ips
        return intervals

    def materialize(self) -> "CertIntervals":
        """Copy mapped interval arrays into process-local storage."""
        for name in self.__slots__:
            setattr(self, name, _materialize_column(getattr(self, name)))
        return self

    def _sweep(self, index, n_certs, scan_idx, ip_col) -> None:
        for cert_id in range(n_certs):
            positions = index.positions(cert_id)
            if not positions:
                self.first_scan[cert_id] = -1
                self.last_scan[cert_id] = -1
                continue
            sightings = iter(positions)
            first_pos = next(sightings)
            run_scan = scan_idx[first_pos]
            self.first_scan[cert_id] = run_scan
            run_ips = {ip_col[first_pos]}
            n_scans = 1
            max_ips = min_ips = 0
            for pos in sightings:
                scan = scan_idx[pos]
                if scan != run_scan:
                    size = len(run_ips)
                    if size > max_ips:
                        max_ips = size
                    if min_ips == 0 or size < min_ips:
                        min_ips = size
                    run_scan = scan
                    run_ips = {ip_col[pos]}
                    n_scans += 1
                else:
                    run_ips.add(ip_col[pos])
            size = len(run_ips)
            if size > max_ips:
                max_ips = size
            if min_ips == 0 or size < min_ips:
                min_ips = size
            self.last_scan[cert_id] = run_scan
            self.n_scans[cert_id] = n_scans
            self.max_ips[cert_id] = max_ips
            self.min_ips[cert_id] = min_ips
