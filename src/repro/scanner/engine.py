"""The zmap-like scan engine.

ZMap probes the IPv4 space in random order over roughly ten hours (§6.2).
The engine reproduces the two consequences that matter to the paper:

* **scan duplicates** — each candidate address gets an independent random
  probe instant; a device whose address flips mid-scan responds at its old
  address if that was probed before the flip *and* at its new address if
  that was probed after it, so one device can contribute two addresses to
  one scan;
* **mid-scan reissue** — similarly, a device that regenerates its
  certificate during the scan can expose the old certificate at one probe
  and the new one at another, producing the single-scan lifetime overlap
  the linking methodology must tolerate.

The engine iterates the *population* rather than all 2³² addresses — every
unpopulated address is a guaranteed non-responder, so the result is
identical to a full sweep.

Generation is **direct-to-columnar**: :meth:`ScanEngine.run_shard` appends
every sighting straight into preallocated ``array`` columns with day-local
interning (no row tuples, no Python key-function sort — day order comes
from a stable argsort on packed byte keys in
:func:`~repro.scanner.shards.finalize_shard`), and ``run_campaign`` ships
those compact shards home from workers instead of pickled row lists.  The
legacy row emitter survives as :meth:`run_rows` /
:meth:`run_campaign_rows`: it is the parity twin (``REPRO_LINK_PARITY=1``
re-runs it and asserts bitwise-identical output) and the baseline the
generation benchmark measures against.  Both paths consume the per-day RNG
in exactly the same order, so their corpora are bitwise identical.
"""

from __future__ import annotations

import random
from array import array
from bisect import bisect_right
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

from ..internet.population import World
from ..obs import runtime as obs
from ..seeding import stable_rng
from ..tls.handshake import HandshakeRecord, negotiate
from ..tls.profiles import WEBSITE_TLS_PROFILE, tls_profile_for
from ..x509.certificate import Certificate
from .campaign import ScanCampaign
from .records import Observation, Scan
from .shards import ScanShard, finalize_shard, shard_scan

__all__ = ["ScanEngine", "SCAN_DURATION_HOURS"]

#: ZMap needed up to ten hours per full sweep (§6.2).
SCAN_DURATION_HOURS = 10.0


class ScanEngine:
    """Runs simulated full-IPv4 scans of one world."""

    def __init__(
        self,
        world: World,
        duration_hours: float = SCAN_DURATION_HOURS,
        collect_handshakes: bool = False,
    ) -> None:
        self._world = world
        self._duration = duration_hours
        self._store: dict[bytes, Certificate] = {}
        #: When enabled, observations carry the negotiated HandshakeRecord
        #: (the network features the paper's corpora lacked, §6.3).
        self._collect_handshakes = collect_handshakes
        # Per-run probe accounting, flushed to the metrics registry in
        # one bulk call per scan (never per probe).
        self._probes_attempted = 0
        self._probes_blacklisted = 0
        self._handshakes_attempted = 0
        # Engine-lifetime caches, all derived deterministically from the
        # world/campaigns (never from scan state): entity tag strings,
        # negotiated handshakes per TLS profile, merged blacklist
        # intervals per campaign, and the shard capacity bound.
        self._tag_tables: Optional[tuple[list[str], list[str]]] = None
        self._ca_tags: dict[bytes, str] = {}
        self._profile_handshakes: dict[str, HandshakeRecord] = {}
        self._blacklist_cache: dict[str, tuple] = {}
        self._capacity: Optional[int] = None

    def _device_handshake(self, device) -> "HandshakeRecord | None":
        if not self._collect_handshakes:
            return None
        name = device.profile.name
        record = self._profile_handshakes.get(name)
        if record is None:
            record = negotiate(tls_profile_for(name))
            self._profile_handshakes[name] = record
        return record

    def _website_handshake(self) -> "HandshakeRecord | None":
        if not self._collect_handshakes:
            return None
        record = self._profile_handshakes.get("")
        if record is None:
            record = negotiate(WEBSITE_TLS_PROFILE)
            self._profile_handshakes[""] = record
        return record

    # --- columnar generation (the default path) --------------------------------

    def run(self, campaign: ScanCampaign, day: int) -> Scan:
        """Execute one scan; returns day-sorted observations.

        Deterministic per (world seed, campaign, day).  The returned
        scan's observations are a lazy row view over the day's columnar
        shard (see :meth:`run_shard`).
        """
        return shard_scan(self.run_shard(campaign, day))

    def run_shard(self, campaign: ScanCampaign, day: int) -> ScanShard:
        """Execute one scan directly into a columnar day shard.

        Deterministic per (world seed, campaign, day) — which is what
        makes O(day) ingestion possible: a later session can rebuild the
        world, run just the new day's shard, and delta-append it to an
        existing corpus (``repro append``) with bytes identical to a
        full rebuild that included the day.
        """
        with obs.span(f"scan/day={day}", campaign=campaign.name) as span:
            self._probes_attempted = 0
            self._probes_blacklisted = 0
            self._handshakes_attempted = 0
            shard = self._generate_shard(campaign, day)
            obs.inc("scanner.scans_executed")
            obs.inc("scanner.probes_attempted", self._probes_attempted)
            obs.inc("scanner.probes_blacklisted", self._probes_blacklisted)
            obs.inc("scanner.handshakes_attempted", self._handshakes_attempted)
            obs.inc("scanner.observations_recorded", len(shard))
            obs.inc("scanner.shard_rows", len(shard))
            obs.inc("scanner.shard_bytes", shard.nbytes)
            span.set(observations=len(shard))
            return shard

    def run_campaign(self, campaign: ScanCampaign, workers: int = 1) -> list[Scan]:
        """All scans of one campaign's schedule (lazy row views)."""
        return [
            shard_scan(shard)
            for shard in self.run_campaign_shards(campaign, workers=workers)
        ]

    def run_campaign_shards(
        self, campaign: ScanCampaign, workers: int = 1
    ) -> list[ScanShard]:
        """All shards of one campaign's schedule, in day order.

        ``workers > 1`` fans the schedule's days out over a process pool;
        what rides home per day is the compact columnar shard (four int
        arrays plus the day-local tables), not a pickled row list.  Each
        day's RNG is keyed by (world seed, campaign, day), so the shards
        — and the order certificates enter the store — are bitwise
        identical to the serial path.  When observability is active, each
        worker records into its own registry/tracer and ships a per-day
        delta home with the shard; merged counter totals equal the serial
        run's exactly.
        """
        if workers <= 1 or len(campaign.scan_days) <= 1:
            return [self.run_shard(campaign, day) for day in campaign.scan_days]
        shards: list[ScanShard] = []
        with ProcessPoolExecutor(
            max_workers=min(workers, len(campaign.scan_days)),
            initializer=_init_scan_worker,
            initargs=(self._world, self._duration, self._collect_handshakes,
                      obs.enabled()),
        ) as pool:
            days = list(campaign.scan_days)
            for shard, day_certs, delta in pool.map(
                _scan_one_day, ((campaign, day) for day in days)
            ):
                shards.append(shard)
                obs.absorb(delta)
                # Merging day stores in day order replays the serial
                # insertion sequence, so the store's dict order matches.
                for fingerprint, cert in day_certs.items():
                    self._store.setdefault(fingerprint, cert)
        return shards

    # --- legacy row generation (parity twin and benchmark baseline) -------------

    def run_rows(self, campaign: ScanCampaign, day: int) -> Scan:
        """One scan through the legacy row emitter (list of namedtuples)."""
        with obs.span(f"scan_rows/day={day}", campaign=campaign.name) as span:
            observations = self.row_observations(campaign, day)
            obs.inc("scanner.scans_executed")
            obs.inc("scanner.probes_attempted", self._probes_attempted)
            obs.inc("scanner.probes_blacklisted", self._probes_blacklisted)
            obs.inc("scanner.handshakes_attempted", self._handshakes_attempted)
            obs.inc("scanner.observations_recorded", len(observations))
            span.set(observations=len(observations))
            return Scan(day=day, source=campaign.name, observations=observations)

    def run_campaign_rows(self, campaign: ScanCampaign) -> list[Scan]:
        """The campaign's schedule through the legacy row emitter (serial)."""
        return [self.run_rows(campaign, day) for day in campaign.scan_days]

    def row_observations(
        self, campaign: ScanCampaign, day: int
    ) -> list[Observation]:
        """Sorted row observations of one scan — no metrics, no spans.

        This is the pre-columnar generation loop, kept verbatim as the
        parity reference: ``REPRO_LINK_PARITY=1`` replays it after every
        columnar collection and asserts the outputs are bitwise
        identical.
        """
        rng = stable_rng(self._world.config.seed, "scan", campaign.name, day)
        observations: list[Observation] = []
        self._probes_attempted = 0
        self._probes_blacklisted = 0
        self._handshakes_attempted = 0
        self._scan_devices_rows(campaign, day, rng, observations)
        self._scan_websites_rows(campaign, day, rng, observations)
        observations.sort(key=lambda obs: (obs.ip, obs.fingerprint))
        return observations

    # --- internals ------------------------------------------------------------

    def _admit(
        self, campaign: ScanCampaign, rng: random.Random, ip: int
    ) -> bool:
        """Blacklist and random-miss filtering for one address."""
        self._probes_attempted += 1
        if campaign.is_blacklisted(ip):
            self._probes_blacklisted += 1
            return False
        if rng.random() < campaign.random_miss_rate:
            return False
        self._handshakes_attempted += 1
        return True

    def _blacklist_intervals(self, campaign: ScanCampaign) -> tuple:
        """The campaign's blacklist as merged sorted (start, end) arrays.

        Membership then costs one bisect instead of a Python loop over
        every prefix, and — unlike the prefix walk — consumes no RNG, so
        the optimization is invisible to the probe stream.
        """
        cached = self._blacklist_cache.get(campaign.name)
        if cached is not None and cached[0] is campaign:
            return cached[1], cached[2]
        intervals = sorted(
            (prefix.first, prefix.last) for prefix in campaign.blacklist
        )
        merged: list[list[int]] = []
        for first, last in intervals:
            if merged and first <= merged[-1][1] + 1:
                if last > merged[-1][1]:
                    merged[-1][1] = last
            else:
                merged.append([first, last])
        starts = array("I", (interval[0] for interval in merged))
        ends = array("I", (interval[1] for interval in merged))
        self._blacklist_cache[campaign.name] = (campaign, starts, ends)
        return starts, ends

    def _entity_tags(self) -> "tuple[list[str], list[str]]":
        """Precomputed ground-truth tag strings, by population position."""
        tables = self._tag_tables
        if tables is None:
            world = self._world
            tables = self._tag_tables = (
                [f"device:{device.device_id}" for device in world.devices],
                [f"website:{website.website_id}" for website in world.websites],
            )
        return tables

    def _shard_capacity(self) -> int:
        """Upper bound on observations a single scan can produce."""
        capacity = self._capacity
        if capacity is None:
            world = self._world
            capacity = self._capacity = 2 * len(world.devices) + 2 * sum(
                len(website.host_ips) for website in world.websites
            )
        return capacity

    def _generate_shard(self, campaign: ScanCampaign, day: int) -> ScanShard:
        """One scan, appended straight into preallocated columns."""
        capacity = self._shard_capacity()
        col_ip = array("I", bytes(4 * capacity))
        col_cert = array("I", bytes(4 * capacity))
        col_entity = array("I", bytes(4 * capacity))
        col_handshake = array("i", bytes(4 * capacity))
        fingerprint_ids: dict[bytes, int] = {}
        fingerprints: list[bytes] = []
        entity_ids: dict[str, int] = {}
        entities: list[str] = []
        handshake_ids: dict[HandshakeRecord, int] = {}
        handshakes: list[HandshakeRecord] = []
        rng = stable_rng(self._world.config.seed, "scan", campaign.name, day)
        state = (
            campaign, day, rng, col_ip, col_cert, col_entity, col_handshake,
            fingerprint_ids, fingerprints, entity_ids, entities,
            handshake_ids, handshakes,
        )
        cursor = self._scan_devices(0, *state)
        cursor = self._scan_websites(cursor, *state)
        return finalize_shard(
            day, campaign.name, cursor, col_ip, col_cert, col_entity,
            col_handshake, fingerprints, entities, handshakes,
        )

    def _scan_devices(
        self, cursor, campaign, day, rng, col_ip, col_cert, col_entity,
        col_handshake, fingerprint_ids, fingerprints, entity_ids, entities,
        handshake_ids, handshakes,
    ) -> int:
        """Device sightings, appended into the shard columns.

        Consumes the per-day RNG in exactly the legacy row order: probe
        instants are drawn per device, then (for each non-blacklisted
        probe) one miss-rate draw — blacklist filtering itself consumes
        nothing in either path.
        """
        world = self._world
        policies = world.policies
        duration = self._duration
        miss_rate = campaign.random_miss_rate
        rng_random = rng.random
        starts, ends = self._blacklist_intervals(campaign)
        device_tags = self._entity_tags()[0]
        store = self._store
        fingerprint_get = fingerprint_ids.get
        entity_get = entity_ids.get
        collect_handshakes = self._collect_handshakes
        probes = blocked = admitted = 0

        for position, device in enumerate(world.devices):
            if not device.is_active(day):
                continue
            location = device.location_at(day)
            policy = policies[location.asn]
            subscriber = location.subscriber
            flip_hour = policy.reassignment_hour(subscriber, day)
            ip_start = policy.address(subscriber, day, 0.0)
            tag = device_tags[position]
            entity_id = entity_get(tag)
            if entity_id is None:
                entity_id = entity_ids[tag] = len(entities)
                entities.append(tag)
            handshake_id = -1
            if collect_handshakes:
                record = self._device_handshake(device)
                handshake_id = handshake_ids.get(record)
                if handshake_id is None:
                    handshake_id = handshake_ids[record] = len(handshakes)
                    handshakes.append(record)
            epoch = device.reissue_epoch(day)
            reissue_hour = device.reissue_hour_on(day)

            if flip_hour < 0.0:
                # Address stable all day: one probe, one sighting.
                probe = rng_random() * duration
                probes += 1
                hit = bisect_right(starts, ip_start)
                if hit and ip_start <= ends[hit - 1]:
                    blocked += 1
                elif rng_random() >= miss_rate:
                    admitted += 1
                    cert = device.certificate_for_epoch(
                        epoch - 1
                        if 0.0 <= reissue_hour and probe < reissue_hour
                        else epoch
                    )
                    fingerprint = cert.fingerprint
                    cert_id = fingerprint_get(fingerprint)
                    if cert_id is None:
                        cert_id = fingerprint_ids[fingerprint] = len(fingerprints)
                        fingerprints.append(fingerprint)
                        if fingerprint not in store:
                            store[fingerprint] = cert
                    col_ip[cursor] = ip_start
                    col_cert[cursor] = cert_id
                    col_entity[cursor] = entity_id
                    col_handshake[cursor] = handshake_id
                    cursor += 1
                continue

            ip_end = policy.address(subscriber, day, 23.99)
            probe_old = rng_random() * duration
            probe_new = rng_random() * duration
            if probe_old < flip_hour:
                probes += 1
                hit = bisect_right(starts, ip_start)
                if hit and ip_start <= ends[hit - 1]:
                    blocked += 1
                elif rng_random() >= miss_rate:
                    admitted += 1
                    cert = device.certificate_for_epoch(
                        epoch - 1
                        if 0.0 <= reissue_hour and probe_old < reissue_hour
                        else epoch
                    )
                    fingerprint = cert.fingerprint
                    cert_id = fingerprint_get(fingerprint)
                    if cert_id is None:
                        cert_id = fingerprint_ids[fingerprint] = len(fingerprints)
                        fingerprints.append(fingerprint)
                        if fingerprint not in store:
                            store[fingerprint] = cert
                    col_ip[cursor] = ip_start
                    col_cert[cursor] = cert_id
                    col_entity[cursor] = entity_id
                    col_handshake[cursor] = handshake_id
                    cursor += 1
            if probe_new >= flip_hour:
                probes += 1
                hit = bisect_right(starts, ip_end)
                if hit and ip_end <= ends[hit - 1]:
                    blocked += 1
                elif rng_random() >= miss_rate:
                    admitted += 1
                    cert = device.certificate_for_epoch(
                        epoch - 1
                        if 0.0 <= reissue_hour and probe_new < reissue_hour
                        else epoch
                    )
                    fingerprint = cert.fingerprint
                    cert_id = fingerprint_get(fingerprint)
                    if cert_id is None:
                        cert_id = fingerprint_ids[fingerprint] = len(fingerprints)
                        fingerprints.append(fingerprint)
                        if fingerprint not in store:
                            store[fingerprint] = cert
                    col_ip[cursor] = ip_end
                    col_cert[cursor] = cert_id
                    col_entity[cursor] = entity_id
                    col_handshake[cursor] = handshake_id
                    cursor += 1

        self._probes_attempted += probes
        self._probes_blacklisted += blocked
        self._handshakes_attempted += admitted
        return cursor

    def _scan_websites(
        self, cursor, campaign, day, rng, col_ip, col_cert, col_entity,
        col_handshake, fingerprint_ids, fingerprints, entity_ids, entities,
        handshake_ids, handshakes,
    ) -> int:
        """Website sightings (leaf + intermediate per address).

        Fingerprints and tags are interned once per website (not per
        address); the certificate store is only touched once a probe is
        actually admitted, preserving the row path's first-sighting
        insertion order.
        """
        world = self._world
        miss_rate = campaign.random_miss_rate
        rng_random = rng.random
        starts, ends = self._blacklist_intervals(campaign)
        website_tags = self._entity_tags()[1]
        ca_tags = self._ca_tags
        store = self._store
        fingerprint_get = fingerprint_ids.get
        entity_get = entity_ids.get
        collect_handshakes = self._collect_handshakes
        probes = blocked = admitted = 0

        for position, website in enumerate(world.websites):
            if not website.is_active(day):
                continue
            leaf, intermediate = website.chain_on(day)
            handshake_id = -1
            if collect_handshakes:
                record = self._website_handshake()
                handshake_id = handshake_ids.get(record)
                if handshake_id is None:
                    handshake_id = handshake_ids[record] = len(handshakes)
                    handshakes.append(record)
            leaf_fp = leaf.fingerprint
            leaf_id = fingerprint_get(leaf_fp)
            if leaf_id is None:
                leaf_id = fingerprint_ids[leaf_fp] = len(fingerprints)
                fingerprints.append(leaf_fp)
            intermediate_fp = intermediate.fingerprint
            intermediate_id = fingerprint_get(intermediate_fp)
            if intermediate_id is None:
                intermediate_id = fingerprint_ids[intermediate_fp] = len(fingerprints)
                fingerprints.append(intermediate_fp)
            tag = website_tags[position]
            site_entity = entity_get(tag)
            if site_entity is None:
                site_entity = entity_ids[tag] = len(entities)
                entities.append(tag)
            ca_tag = ca_tags.get(intermediate_fp)
            if ca_tag is None:
                ca_tag = ca_tags[intermediate_fp] = f"ca:{intermediate.subject_cn}"
            ca_entity = entity_get(ca_tag)
            if ca_entity is None:
                ca_entity = entity_ids[ca_tag] = len(entities)
                entities.append(ca_tag)
            site_stored = False
            for ip in website.host_ips:
                probes += 1
                hit = bisect_right(starts, ip)
                if hit and ip <= ends[hit - 1]:
                    blocked += 1
                    continue
                if rng_random() < miss_rate:
                    continue
                admitted += 1
                if not site_stored:
                    # Store insertion happens at the first *admitted*
                    # sighting, matching the row path's order exactly.
                    site_stored = True
                    if leaf_fp not in store:
                        store[leaf_fp] = leaf
                    if intermediate_fp not in store:
                        store[intermediate_fp] = intermediate
                col_ip[cursor] = ip
                col_cert[cursor] = leaf_id
                col_entity[cursor] = site_entity
                col_handshake[cursor] = handshake_id
                cursor += 1
                col_ip[cursor] = ip
                col_cert[cursor] = intermediate_id
                col_entity[cursor] = ca_entity
                col_handshake[cursor] = handshake_id
                cursor += 1

        self._probes_attempted += probes
        self._probes_blacklisted += blocked
        self._handshakes_attempted += admitted
        return cursor

    def _scan_devices_rows(self, campaign, day, rng, observations) -> None:
        world = self._world
        for device in world.devices:
            if not device.is_active(day):
                continue
            flip_hour = world.device_reassignment_hour(device, day)
            ip_start = world.device_ip(device, day, hour=0.0)
            entity = f"device:{device.device_id}"
            handshake = self._device_handshake(device)

            if flip_hour < 0.0:
                # Address stable all day: one probe, one sighting.
                probe = rng.random() * self._duration
                if self._admit(campaign, rng, ip_start):
                    cert = device.certificate_at(day, probe)
                    observations.append(
                        Observation(ip_start, self._intern(cert), entity, handshake)
                    )
                continue

            ip_end = world.device_ip(device, day, hour=23.99)
            probe_old = rng.random() * self._duration
            probe_new = rng.random() * self._duration
            if probe_old < flip_hour and self._admit(campaign, rng, ip_start):
                cert = device.certificate_at(day, probe_old)
                observations.append(
                    Observation(ip_start, self._intern(cert), entity, handshake)
                )
            if probe_new >= flip_hour and self._admit(campaign, rng, ip_end):
                cert = device.certificate_at(day, probe_new)
                observations.append(
                    Observation(ip_end, self._intern(cert), entity, handshake)
                )

    def _scan_websites_rows(self, campaign, day, rng, observations) -> None:
        for website in self._world.websites:
            if not website.is_active(day):
                continue
            chain = website.chain_on(day)
            handshake = self._website_handshake()
            for ip in website.host_ips:
                if not self._admit(campaign, rng, ip):
                    continue
                leaf, intermediate = chain
                observations.append(
                    Observation(
                        ip, self._intern(leaf),
                        f"website:{website.website_id}", handshake,
                    )
                )
                observations.append(
                    Observation(
                        ip, self._intern(intermediate),
                        f"ca:{intermediate.subject_cn}", handshake,
                    )
                )

    @property
    def certificate_store(self) -> dict[bytes, Certificate]:
        """Canonical Certificate for every fingerprint emitted so far.

        The certificate source for corpus writes — both
        :class:`~repro.io.store.StreamingDatasetWriter` and the
        delta-append path (:func:`repro.io.store.append_shards`) resolve
        shard fingerprints to DER through this mapping.
        """
        return self._store

    def _intern(self, cert: Certificate) -> bytes:
        fingerprint = cert.fingerprint
        if fingerprint not in self._store:
            self._store[fingerprint] = cert
        return fingerprint


# --- process-pool plumbing -----------------------------------------------------
#
# Each worker process builds one engine from the pickled world at pool
# start-up and reuses it for every day it is handed; per-task it returns
# the day's columnar shard, only that day's newly seen certificates, and
# — when the parent had observability active — the metrics/spans
# recorded for it.

_WORKER_ENGINE: Optional[ScanEngine] = None


def _init_scan_worker(
    world: World, duration_hours: float, collect_handshakes: bool,
    obs_enabled: bool = False,
) -> None:
    global _WORKER_ENGINE
    obs.install_worker(obs_enabled)
    _WORKER_ENGINE = ScanEngine(
        world, duration_hours=duration_hours, collect_handshakes=collect_handshakes
    )


def _scan_one_day(
    task: "tuple[ScanCampaign, int]",
) -> "tuple[ScanShard, dict[bytes, Certificate], Optional[dict]]":
    campaign, day = task
    engine = _WORKER_ENGINE
    engine.certificate_store.clear()
    mark = obs.task_mark()
    shard = engine.run_shard(campaign, day)
    return shard, dict(engine.certificate_store), obs.task_delta(mark)
