"""The zmap-like scan engine.

ZMap probes the IPv4 space in random order over roughly ten hours (§6.2).
The engine reproduces the two consequences that matter to the paper:

* **scan duplicates** — each candidate address gets an independent random
  probe instant; a device whose address flips mid-scan responds at its old
  address if that was probed before the flip *and* at its new address if
  that was probed after it, so one device can contribute two addresses to
  one scan;
* **mid-scan reissue** — similarly, a device that regenerates its
  certificate during the scan can expose the old certificate at one probe
  and the new one at another, producing the single-scan lifetime overlap
  the linking methodology must tolerate.

The engine iterates the *population* rather than all 2³² addresses — every
unpopulated address is a guaranteed non-responder, so the result is
identical to a full sweep.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

from ..internet.population import World
from ..obs import runtime as obs
from ..seeding import stable_rng
from ..tls.handshake import HandshakeRecord, negotiate
from ..tls.profiles import WEBSITE_TLS_PROFILE, tls_profile_for
from ..x509.certificate import Certificate
from .campaign import ScanCampaign
from .records import Observation, Scan

__all__ = ["ScanEngine", "SCAN_DURATION_HOURS"]

#: ZMap needed up to ten hours per full sweep (§6.2).
SCAN_DURATION_HOURS = 10.0


class ScanEngine:
    """Runs simulated full-IPv4 scans of one world."""

    def __init__(
        self,
        world: World,
        duration_hours: float = SCAN_DURATION_HOURS,
        collect_handshakes: bool = False,
    ) -> None:
        self._world = world
        self._duration = duration_hours
        self._store: dict[bytes, Certificate] = {}
        #: When enabled, observations carry the negotiated HandshakeRecord
        #: (the network features the paper's corpora lacked, §6.3).
        self._collect_handshakes = collect_handshakes
        # Per-run probe accounting, flushed to the metrics registry in
        # one bulk call per scan (never per probe).
        self._probes_attempted = 0
        self._probes_blacklisted = 0
        self._handshakes_attempted = 0

    def _device_handshake(self, device) -> "HandshakeRecord | None":
        if not self._collect_handshakes:
            return None
        return negotiate(tls_profile_for(device.profile.name))

    def _website_handshake(self) -> "HandshakeRecord | None":
        if not self._collect_handshakes:
            return None
        return negotiate(WEBSITE_TLS_PROFILE)

    def run(self, campaign: ScanCampaign, day: int) -> Scan:
        """Execute one scan; returns day-sorted observations.

        Deterministic per (world seed, campaign, day).
        """
        with obs.span(f"scan/day={day}", campaign=campaign.name) as span:
            rng = stable_rng(self._world.config.seed, "scan", campaign.name, day)
            observations: list[Observation] = []
            self._probes_attempted = 0
            self._probes_blacklisted = 0
            self._handshakes_attempted = 0
            self._scan_devices(campaign, day, rng, observations)
            self._scan_websites(campaign, day, rng, observations)
            observations.sort(key=lambda obs: (obs.ip, obs.fingerprint))
            obs.inc("scanner.scans_executed")
            obs.inc("scanner.probes_attempted", self._probes_attempted)
            obs.inc("scanner.probes_blacklisted", self._probes_blacklisted)
            obs.inc("scanner.handshakes_attempted", self._handshakes_attempted)
            obs.inc("scanner.observations_recorded", len(observations))
            span.set(observations=len(observations))
            return Scan(day=day, source=campaign.name, observations=observations)

    def run_campaign(self, campaign: ScanCampaign, workers: int = 1) -> list[Scan]:
        """All scans of one campaign's schedule.

        ``workers > 1`` fans the schedule's days out over a process pool.
        Each day's RNG is keyed by (world seed, campaign, day), so the
        scans — and the order certificates enter the store — are bitwise
        identical to the serial path; ``workers=1`` is the serial
        fallback.  When observability is active, each worker records into
        its own registry/tracer and ships a per-day delta home with the
        scan; merged counter totals equal the serial run's exactly.
        """
        if workers <= 1 or len(campaign.scan_days) <= 1:
            return [self.run(campaign, day) for day in campaign.scan_days]
        scans: list[Scan] = []
        with ProcessPoolExecutor(
            max_workers=min(workers, len(campaign.scan_days)),
            initializer=_init_scan_worker,
            initargs=(self._world, self._duration, self._collect_handshakes,
                      obs.enabled()),
        ) as pool:
            days = list(campaign.scan_days)
            for scan, day_certs, delta in pool.map(
                _scan_one_day, ((campaign, day) for day in days)
            ):
                scans.append(scan)
                obs.absorb(delta)
                # Merging day stores in day order replays the serial
                # insertion sequence, so the store's dict order matches.
                for fingerprint, cert in day_certs.items():
                    self._store.setdefault(fingerprint, cert)
        return scans

    # --- internals ------------------------------------------------------------

    def _admit(
        self, campaign: ScanCampaign, rng: random.Random, ip: int
    ) -> bool:
        """Blacklist and random-miss filtering for one address."""
        self._probes_attempted += 1
        if campaign.is_blacklisted(ip):
            self._probes_blacklisted += 1
            return False
        if rng.random() < campaign.random_miss_rate:
            return False
        self._handshakes_attempted += 1
        return True

    def _scan_devices(self, campaign, day, rng, observations) -> None:
        world = self._world
        for device in world.devices:
            if not device.is_active(day):
                continue
            flip_hour = world.device_reassignment_hour(device, day)
            ip_start = world.device_ip(device, day, hour=0.0)
            entity = f"device:{device.device_id}"
            handshake = self._device_handshake(device)

            if flip_hour < 0.0:
                # Address stable all day: one probe, one sighting.
                probe = rng.random() * self._duration
                if self._admit(campaign, rng, ip_start):
                    cert = device.certificate_at(day, probe)
                    observations.append(
                        Observation(ip_start, self._intern(cert), entity, handshake)
                    )
                continue

            ip_end = world.device_ip(device, day, hour=23.99)
            probe_old = rng.random() * self._duration
            probe_new = rng.random() * self._duration
            if probe_old < flip_hour and self._admit(campaign, rng, ip_start):
                cert = device.certificate_at(day, probe_old)
                observations.append(
                    Observation(ip_start, self._intern(cert), entity, handshake)
                )
            if probe_new >= flip_hour and self._admit(campaign, rng, ip_end):
                cert = device.certificate_at(day, probe_new)
                observations.append(
                    Observation(ip_end, self._intern(cert), entity, handshake)
                )

    def _scan_websites(self, campaign, day, rng, observations) -> None:
        for website in self._world.websites:
            if not website.is_active(day):
                continue
            chain = website.chain_on(day)
            handshake = self._website_handshake()
            for ip in website.host_ips:
                if not self._admit(campaign, rng, ip):
                    continue
                leaf, intermediate = chain
                observations.append(
                    Observation(
                        ip, self._intern(leaf),
                        f"website:{website.website_id}", handshake,
                    )
                )
                observations.append(
                    Observation(
                        ip, self._intern(intermediate),
                        f"ca:{intermediate.subject_cn}", handshake,
                    )
                )

    @property
    def certificate_store(self) -> dict[bytes, Certificate]:
        """Canonical Certificate for every fingerprint emitted so far."""
        return self._store

    def _intern(self, cert: Certificate) -> bytes:
        fingerprint = cert.fingerprint
        if fingerprint not in self._store:
            self._store[fingerprint] = cert
        return fingerprint


# --- process-pool plumbing -----------------------------------------------------
#
# Each worker process builds one engine from the pickled world at pool
# start-up and reuses it for every day it is handed; per-task it returns
# the scan, only that day's newly seen certificates, and — when the
# parent had observability active — the metrics/spans recorded for it.

_WORKER_ENGINE: Optional[ScanEngine] = None


def _init_scan_worker(
    world: World, duration_hours: float, collect_handshakes: bool,
    obs_enabled: bool = False,
) -> None:
    global _WORKER_ENGINE
    obs.install_worker(obs_enabled)
    _WORKER_ENGINE = ScanEngine(
        world, duration_hours=duration_hours, collect_handshakes=collect_handshakes
    )


def _scan_one_day(
    task: "tuple[ScanCampaign, int]",
) -> "tuple[Scan, dict[bytes, Certificate], Optional[dict]]":
    campaign, day = task
    engine = _WORKER_ENGINE
    engine.certificate_store.clear()
    mark = obs.task_mark()
    scan = engine.run(campaign, day)
    return scan, dict(engine.certificate_store), obs.task_delta(mark)
