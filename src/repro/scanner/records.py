"""Scan data model (the row interchange schema).

An :class:`Observation` is one (address, certificate) sighting inside one
scan; a :class:`Scan` is everything one campaign collected on one day.
This is exactly the schema the paper's pipeline consumed from the
University of Michigan and Rapid7 corpora.  Rows are the *interchange*
representation — the scanner emits them and backends rehydrate them — but
the dataset's analytical storage is columnar: rows are interned into
:class:`~repro.scanner.columns.ObservationColumns` and queried through a
per-certificate CSR index (see ``repro.scanner.columns``).

Observations also carry an ``entity`` tag — the simulator's ground-truth
identity of whatever served the certificate.  **The analysis layer never
reads it**; it exists so the test suite can validate the linking
methodology against truth, the validation the paper itself says it lacked
(§8: "we lack a ground truth against which to validate our techniques").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, NamedTuple, Optional, Sequence

from ..tls.handshake import HandshakeRecord

__all__ = ["Observation", "Scan"]


class Observation(NamedTuple):
    """One certificate sighting at one address during one scan."""

    ip: int
    fingerprint: bytes
    #: Ground-truth tag, e.g. ``'device:123'`` — off-limits to analysis code.
    entity: str = ""
    #: Handshake traits, when the scan collected them (the paper's corpora
    #: did not: "the certificate scan data contains only the certificates
    #: themselves", §6.3 — enable via ScanEngine(collect_handshakes=True)).
    handshake: Optional[HandshakeRecord] = None


@dataclass
class Scan:
    """One full-IPv4 sweep by one campaign.

    ``observations`` is any day-sorted observation sequence — a plain
    row list, or the lazy columnar view the engine now emits
    (:class:`~repro.scanner.shards.LazyObservations`).  Scans are
    immutable after collection, so the distinct-address and
    distinct-fingerprint sets are memoized on first use.
    """

    day: int
    source: str
    observations: Sequence[Observation]
    _ips: Optional[set] = field(
        default=None, init=False, repr=False, compare=False
    )
    _fingerprints: Optional[set] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.observations)

    def __iter__(self) -> Iterator[Observation]:
        return iter(self.observations)

    def ips(self) -> set[int]:
        """Distinct responding addresses in this scan (memoized)."""
        cached = self._ips
        if cached is None:
            distinct = getattr(self.observations, "distinct_ips", None)
            if distinct is not None:
                cached = distinct()
            else:
                cached = {obs.ip for obs in self.observations}
            self._ips = cached
        return cached

    def fingerprints(self) -> set[bytes]:
        """Distinct certificates advertised in this scan (memoized)."""
        cached = self._fingerprints
        if cached is None:
            distinct = getattr(self.observations, "distinct_fingerprints", None)
            if distinct is not None:
                cached = distinct()
            else:
                cached = {obs.fingerprint for obs in self.observations}
            self._fingerprints = cached
        return cached
