"""Per-day columnar scan shards and their corpus merge.

The engine used to emit every sighting as a row ``Observation`` namedtuple,
sort the rows with a Python key function, pickle whole row lists back from
scan workers, and re-intern everything into
:class:`~repro.scanner.columns.ObservationColumns` in a second pass.  A
:class:`ScanShard` is the direct-to-columnar replacement: one scan day's
observations as parallel ``array`` columns plus day-local interning tables,
built in one pass by the engine, shipped compactly across process
boundaries, and merged into the corpus columns without ever materializing
rows.

Two invariants make the merge bitwise-identical to the legacy
row-then-columnarize path:

* **sorted first-appearance tables** — :func:`finalize_shard` day-sorts the
  columns by (ip, fingerprint) via a stable argsort on packed byte keys
  (identical tie behaviour to the old ``list.sort``) and renumbers every
  local id so the shard tables are in first-appearance order *over the
  sorted rows*; entries never referenced by a row drop out;
* **day-order interning merge** — :func:`merge_shards` interns each shard's
  tables in local-id order, shard by shard in (day, source) order, which
  replays exactly the global first-appearance order the serial row pass
  would have produced.

Rows never went away: :class:`LazyObservations` is a sequence view that
rehydrates ``Observation`` tuples on demand from a shard or from a merged
column range, so ``Scan.observations`` keeps its API (iteration, indexing,
equality against real row lists) at O(1) memory.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence
from typing import Iterator, List, Union

from ..obs import runtime as obs
from ..tls.handshake import HandshakeRecord
from .columns import ObservationColumns
from .records import Observation, Scan

__all__ = [
    "ScanShard",
    "LazyObservations",
    "finalize_shard",
    "merge_shards",
    "columns_equal",
    "shard_scan",
    "scans_over_columns",
]

class ScanShard:
    """One scan day as sorted parallel columns plus local interning tables.

    Columns (one entry per observation, (ip, fingerprint)-sorted):

    * ``ip``           — observed IPv4 address (int);
    * ``cert_id``      — index into ``fingerprints``;
    * ``entity_id``    — index into ``entities``;
    * ``handshake_id`` — index into ``handshakes`` (-1 when not collected).

    All three tables are in first-appearance order over the sorted rows,
    so a day-order merge re-interning them in local-id order reproduces
    the serial corpus interning order exactly.
    """

    __slots__ = (
        "day", "source", "ip", "cert_id", "entity_id", "handshake_id",
        "fingerprints", "entities", "handshakes",
    )

    def __init__(
        self,
        day: int,
        source: str,
        ip: array,
        cert_id: array,
        entity_id: array,
        handshake_id: array,
        fingerprints: List[bytes],
        entities: List[str],
        handshakes: List[HandshakeRecord],
    ) -> None:
        self.day = day
        self.source = source
        self.ip = ip
        self.cert_id = cert_id
        self.entity_id = entity_id
        self.handshake_id = handshake_id
        self.fingerprints = fingerprints
        self.entities = entities
        self.handshakes = handshakes

    def __len__(self) -> int:
        return len(self.ip)

    # Pickle support: __slots__ classes have no __dict__, so spell the
    # state out (this is what rides home from scan workers).
    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state) -> None:
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)

    @property
    def nbytes(self) -> int:
        """Approximate wire size of the columns and fingerprint table."""
        return (
            self.ip.itemsize * len(self.ip) * 4
            + 32 * len(self.fingerprints)
        )

    def observation_at(self, position: int) -> Observation:
        """Rehydrate one row of the shard."""
        handshake_id = self.handshake_id[position]
        return Observation(
            ip=self.ip[position],
            fingerprint=self.fingerprints[self.cert_id[position]],
            entity=self.entities[self.entity_id[position]],
            handshake=(
                self.handshakes[handshake_id] if handshake_id >= 0 else None
            ),
        )

    def distinct_ips(self, start: int, stop: int) -> set:
        """Distinct addresses in a row range (whole shard: 0..len)."""
        return set(self.ip[start:stop])

    def distinct_fingerprints(self, start: int, stop: int) -> set:
        """Distinct fingerprints in a row range."""
        if start == 0 and stop >= len(self.ip):
            # Every table entry is referenced by at least one row.
            return set(self.fingerprints)
        fingerprints = self.fingerprints
        return {fingerprints[cert_id] for cert_id in self.cert_id[start:stop]}


class LazyObservations(Sequence):
    """Row view over a shard or a merged column range.

    Quacks like the ``list[Observation]`` the engine used to build —
    length, indexing, slicing, iteration, and equality against any other
    observation sequence — but holds only (source, start, stop) and
    rehydrates tuples on demand, so a corpus of lazy scans costs no row
    storage at all.
    """

    __slots__ = ("_source", "_start", "_stop")

    def __init__(
        self,
        source: Union[ScanShard, ObservationColumns],
        start: int,
        stop: int,
    ) -> None:
        self._source = source
        self._start = start
        self._stop = stop

    def __len__(self) -> int:
        return self._stop - self._start

    def __getitem__(self, index):
        positions = range(self._start, self._stop)[index]
        if isinstance(index, slice):
            observation_at = self._source.observation_at
            return [observation_at(position) for position in positions]
        return self._source.observation_at(positions)

    def __iter__(self) -> Iterator[Observation]:
        observation_at = self._source.observation_at
        for position in range(self._start, self._stop):
            yield observation_at(position)

    def __eq__(self, other) -> bool:
        if other is self:
            return True
        if not isinstance(other, (LazyObservations, list, tuple)):
            return NotImplemented
        if len(other) != len(self):
            return False
        return all(ours == theirs for ours, theirs in zip(self, other))

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None  # mutable-sequence lookalike

    def __repr__(self) -> str:
        return f"<LazyObservations n={len(self)}>"

    def distinct_ips(self) -> set:
        """Distinct addresses, computed on the columns (no rehydration)."""
        return self._source.distinct_ips(self._start, self._stop)

    def distinct_fingerprints(self) -> set:
        """Distinct fingerprints, computed on the columns."""
        return self._source.distinct_fingerprints(self._start, self._stop)


def shard_scan(shard: ScanShard) -> Scan:
    """Wrap one shard as a ``Scan`` with a lazy row view."""
    return Scan(
        day=shard.day,
        source=shard.source,
        observations=LazyObservations(shard, 0, len(shard)),
    )


def scans_over_columns(
    columns: ObservationColumns,
    scan_meta: Sequence,
) -> List[Scan]:
    """Lazy ``Scan`` views over merged columns.

    ``scan_meta`` rows are ``(day, source, start, stop)`` as produced by
    :func:`merge_shards`.
    """
    return [
        Scan(
            day=day,
            source=source,
            observations=LazyObservations(columns, start, stop),
        )
        for day, source, start, stop in scan_meta
    ]


def finalize_shard(
    day: int,
    source: str,
    count: int,
    ip: array,
    cert_id: array,
    entity_id: array,
    handshake_id: array,
    fingerprints: List[bytes],
    entities: List[str],
    handshakes: List[HandshakeRecord],
) -> ScanShard:
    """Day-sort generation-order columns and canonicalize the tables.

    ``ip``/``cert_id``/``entity_id``/``handshake_id`` are the engine's
    preallocated append arrays (only the first ``count`` entries are
    live), with tables in generation order.  The argsort key is the
    packed ``(big-endian ip, fingerprint)`` byte string — ``sorted`` is
    stable, so ties land exactly where the legacy row
    ``sort(key=lambda obs: (obs.ip, obs.fingerprint))`` put them.  Ids
    are then renumbered to first-appearance order over the sorted rows;
    table entries no sorted row references (e.g. a website whose every
    address was blacklisted) disappear.
    """
    # Imported lazily: repro.io pulls in the backend/artifact layer,
    # which imports this module.
    from ..io.encoding import pack_sort_key

    keys = [
        pack_sort_key(ip[i], fingerprints[cert_id[i]]) for i in range(count)
    ]
    order = sorted(range(count), key=keys.__getitem__)

    sorted_ip = array("I", bytes(4 * count))
    sorted_cert = array("I", bytes(4 * count))
    sorted_entity = array("I", bytes(4 * count))
    sorted_handshake = array("i", bytes(4 * count))
    cert_remap = array("i", [-1]) * len(fingerprints)
    entity_remap = array("i", [-1]) * len(entities)
    handshake_remap = array("i", [-1]) * len(handshakes)
    new_fingerprints: List[bytes] = []
    new_entities: List[str] = []
    new_handshakes: List[HandshakeRecord] = []
    for out, position in enumerate(order):
        sorted_ip[out] = ip[position]
        local = cert_id[position]
        mapped = cert_remap[local]
        if mapped < 0:
            mapped = cert_remap[local] = len(new_fingerprints)
            new_fingerprints.append(fingerprints[local])
        sorted_cert[out] = mapped
        local = entity_id[position]
        mapped = entity_remap[local]
        if mapped < 0:
            mapped = entity_remap[local] = len(new_entities)
            new_entities.append(entities[local])
        sorted_entity[out] = mapped
        local = handshake_id[position]
        if local >= 0:
            mapped = handshake_remap[local]
            if mapped < 0:
                mapped = handshake_remap[local] = len(new_handshakes)
                new_handshakes.append(handshakes[local])
            sorted_handshake[out] = mapped
        else:
            sorted_handshake[out] = -1
    return ScanShard(
        day, source, sorted_ip, sorted_cert, sorted_entity, sorted_handshake,
        new_fingerprints, new_entities, new_handshakes,
    )


def merge_shards(
    shards: Sequence[ScanShard],
) -> "tuple[ObservationColumns, list[tuple[int, str, int, int]]]":
    """Merge (day, source)-ordered shards into corpus columns.

    Returns the merged :class:`ObservationColumns` plus per-scan
    ``(day, source, start, stop)`` metadata.  Because each shard's tables
    are in sorted first-appearance order, interning them in local-id
    order shard by shard reproduces the exact global interning order of
    a serial row columnarization — the result is bitwise-identical to
    ``ObservationColumns.from_scans`` over the equivalent row corpus.
    """
    with obs.span("scan/shard_merge", shards=len(shards)):
        columns = ObservationColumns()
        entity_ids: dict[str, int] = {"": 0}
        handshake_ids: dict[HandshakeRecord, int] = {}
        scan_meta: List[tuple[int, str, int, int]] = []
        position = 0
        for scan_index, shard in enumerate(shards):
            count = len(shard)
            cert_map = array("I", (
                columns.intern_fingerprint(fingerprint)
                for fingerprint in shard.fingerprints
            ))
            entity_map = array("I", bytes(4 * len(shard.entities)))
            for local_id, tag in enumerate(shard.entities):
                global_id = entity_ids.get(tag)
                if global_id is None:
                    global_id = entity_ids[tag] = len(columns.entities)
                    columns.entities.append(tag)
                entity_map[local_id] = global_id
            handshake_map = array("I", bytes(4 * len(shard.handshakes)))
            for local_id, record in enumerate(shard.handshakes):
                global_id = handshake_ids.get(record)
                if global_id is None:
                    global_id = handshake_ids[record] = len(columns.handshakes)
                    columns.handshakes.append(record)
                handshake_map[local_id] = global_id
            columns.scan_idx.extend(array("I", (scan_index,)) * count)
            columns.ip.extend(shard.ip)
            columns.cert_id.extend(map(cert_map.__getitem__, shard.cert_id))
            columns.entity_id.extend(
                map(entity_map.__getitem__, shard.entity_id)
            )
            if shard.handshakes:
                columns.handshake_id.extend(
                    handshake_map[handshake_id] if handshake_id >= 0 else -1
                    for handshake_id in shard.handshake_id
                )
            else:
                columns.handshake_id.extend(shard.handshake_id)
            scan_meta.append((shard.day, shard.source, position, position + count))
            position += count
        obs.inc("scanner.shards_merged", len(shards))
    return columns, scan_meta


def columns_equal(left: ObservationColumns, right: ObservationColumns) -> bool:
    """Bitwise equality of two columnar corpora (columns and tables)."""
    return (
        left.scan_idx == right.scan_idx
        and left.ip == right.ip
        and left.cert_id == right.cert_id
        and left.entity_id == right.entity_id
        and left.handshake_id == right.handshake_id
        and left.fingerprints == right.fingerprints
        and left.entities == right.entities
        and left.handshakes == right.handshakes
    )


def certificate_order(
    observed: Sequence[bytes], certificates,
) -> List[bytes]:
    """Canonical certificate-id order for serialization.

    Observed fingerprints first (corpus first-appearance order), then
    any certificates that were issued but never sighted, sorted — the
    same order for a streamed write and an in-memory one.
    """
    extra = sorted(set(certificates) - set(observed))
    return list(observed) + extra
