"""Scanner substrate: zmap-like engine, campaign schedules, columnar corpus."""

from .campaign import ScanCampaign, make_campaigns, rapid7_schedule, umich_schedule
from .columns import ObservationColumns, ObservationIndex
from .dataset import ScanDataset
from .engine import SCAN_DURATION_HOURS, ScanEngine
from .records import Observation, Scan
from .shards import LazyObservations, ScanShard, columns_equal, merge_shards

__all__ = [
    "ScanCampaign",
    "make_campaigns",
    "rapid7_schedule",
    "umich_schedule",
    "ObservationColumns",
    "ObservationIndex",
    "ScanDataset",
    "SCAN_DURATION_HOURS",
    "ScanEngine",
    "Observation",
    "Scan",
    "LazyObservations",
    "ScanShard",
    "columns_equal",
    "merge_shards",
]
