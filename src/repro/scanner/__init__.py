"""Scanner substrate: zmap-like engine, campaign schedules, scan corpus."""

from .campaign import ScanCampaign, make_campaigns, rapid7_schedule, umich_schedule
from .dataset import ScanDataset
from .engine import SCAN_DURATION_HOURS, ScanEngine
from .records import Observation, Scan

__all__ = [
    "ScanCampaign",
    "make_campaigns",
    "rapid7_schedule",
    "umich_schedule",
    "ScanDataset",
    "SCAN_DURATION_HOURS",
    "ScanEngine",
    "Observation",
    "Scan",
]
