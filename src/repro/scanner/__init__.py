"""Scanner substrate: zmap-like engine, campaign schedules, columnar corpus."""

from .campaign import ScanCampaign, make_campaigns, rapid7_schedule, umich_schedule
from .columns import ObservationColumns, ObservationIndex
from .dataset import ScanDataset
from .engine import SCAN_DURATION_HOURS, ScanEngine
from .records import Observation, Scan

__all__ = [
    "ScanCampaign",
    "make_campaigns",
    "rapid7_schedule",
    "umich_schedule",
    "ObservationColumns",
    "ObservationIndex",
    "ScanDataset",
    "SCAN_DURATION_HOURS",
    "ScanEngine",
    "Observation",
    "Scan",
]
