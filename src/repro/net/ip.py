"""IPv4 address and prefix arithmetic.

The whole simulation stores IPv4 addresses as plain ``int`` in
``[0, 2**32)``.  This module provides the conversions and prefix math that
the rest of the library builds on: dotted-quad parsing/formatting,
CIDR prefixes with containment tests, and the /8, /16, /24 groupings the
paper uses (per-/8 scan-discrepancy plots, /24-level linking consistency).

Everything here is pure and allocation-light; these helpers sit on the hot
path of the scanner and the consistency evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

IPV4_SPACE = 2 ** 32

__all__ = [
    "IPV4_SPACE",
    "ip_to_str",
    "str_to_ip",
    "slash8",
    "slash16",
    "slash24",
    "Prefix",
    "RESERVED_PREFIXES",
    "is_reserved",
    "is_private",
]


def ip_to_str(ip: int) -> str:
    """Format an integer IPv4 address as a dotted quad.

    >>> ip_to_str(3232235777)
    '192.168.1.1'
    """
    if not 0 <= ip < IPV4_SPACE:
        raise ValueError(f"IPv4 address out of range: {ip!r}")
    return f"{(ip >> 24) & 0xFF}.{(ip >> 16) & 0xFF}.{(ip >> 8) & 0xFF}.{ip & 0xFF}"


def str_to_ip(text: str) -> int:
    """Parse a dotted quad into an integer IPv4 address.

    >>> str_to_ip('192.168.1.1')
    3232235777
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"non-numeric octet in {text!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def slash8(ip: int) -> int:
    """Return the /8 network number (top octet) of an address."""
    return (ip >> 24) & 0xFF


def slash16(ip: int) -> int:
    """Return the address truncated to its /16 network."""
    return ip & 0xFFFF0000


def slash24(ip: int) -> int:
    """Return the address truncated to its /24 network."""
    return ip & 0xFFFFFF00


@dataclass(frozen=True, order=True)
class Prefix:
    """A CIDR prefix, e.g. ``Prefix.parse('10.0.0.0/8')``.

    Stored as (network, length) with the network address already masked.
    Instances are hashable and totally ordered (by network, then length),
    which lets sorted prefix lists be binary-searched.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length out of range: {self.length}")
        if self.network & ~self.netmask() & 0xFFFFFFFF:
            raise ValueError(
                f"host bits set in network {ip_to_str(self.network)}/{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``'a.b.c.d/len'`` notation."""
        try:
            net_text, len_text = text.split("/")
        except ValueError:
            raise ValueError(f"not CIDR notation: {text!r}") from None
        length = int(len_text)
        network = str_to_ip(net_text)
        mask = _mask(length)
        if network & ~mask & 0xFFFFFFFF:
            raise ValueError(f"host bits set in {text!r}")
        return cls(network, length)

    @classmethod
    def of(cls, ip: int, length: int) -> "Prefix":
        """Build the prefix of the given length that contains ``ip``."""
        return cls(ip & _mask(length), length)

    def netmask(self) -> int:
        """Return the integer netmask for this prefix."""
        return _mask(self.length)

    def contains(self, ip: int) -> bool:
        """Return True if ``ip`` falls inside this prefix."""
        return (ip & self.netmask()) == self.network

    def contains_prefix(self, other: "Prefix") -> bool:
        """Return True if ``other`` is equal to or nested inside this prefix."""
        return other.length >= self.length and self.contains(other.network)

    @property
    def size(self) -> int:
        """Number of addresses covered by this prefix."""
        return 1 << (32 - self.length)

    @property
    def first(self) -> int:
        """Lowest address in the prefix (the network address)."""
        return self.network

    @property
    def last(self) -> int:
        """Highest address in the prefix (the broadcast address)."""
        return self.network | (~self.netmask() & 0xFFFFFFFF)

    def hosts(self) -> Iterator[int]:
        """Iterate every address in the prefix (including network/broadcast).

        The simulator treats all addresses as assignable; real-world
        network/broadcast conventions do not matter for scan analysis.
        """
        return iter(range(self.first, self.last + 1))

    def __str__(self) -> str:
        return f"{ip_to_str(self.network)}/{self.length}"


def _mask(length: int) -> int:
    if not 0 <= length <= 32:
        raise ValueError(f"prefix length out of range: {length}")
    if length == 0:
        return 0
    return (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF


#: Prefixes that are never routed on the public Internet.  The scanner
#: skips these and the population builder never places devices in them —
#: but *certificates* frequently name addresses from the private blocks
#: (the paper's 192.168.1.1 Common Names).
RESERVED_PREFIXES: tuple[Prefix, ...] = (
    Prefix.parse("0.0.0.0/8"),
    Prefix.parse("10.0.0.0/8"),
    Prefix.parse("100.64.0.0/10"),   # carrier-grade NAT
    Prefix.parse("127.0.0.0/8"),
    Prefix.parse("169.254.0.0/16"),
    Prefix.parse("172.16.0.0/12"),
    Prefix.parse("192.168.0.0/16"),
    Prefix.parse("224.0.0.0/4"),     # multicast
    Prefix.parse("240.0.0.0/4"),     # future use
)

_PRIVATE_PREFIXES: tuple[Prefix, ...] = (
    Prefix.parse("10.0.0.0/8"),
    Prefix.parse("172.16.0.0/12"),
    Prefix.parse("192.168.0.0/16"),
)


def is_reserved(ip: int) -> bool:
    """Return True if the address lies in a non-routable block."""
    return any(prefix.contains(ip) for prefix in RESERVED_PREFIXES)


def is_private(ip: int) -> bool:
    """Return True if the address is RFC 1918 private space."""
    return any(prefix.contains(ip) for prefix in _PRIVATE_PREFIXES)


def looks_like_ipv4(text: str) -> bool:
    """Return True if ``text`` parses as a dotted-quad IPv4 address.

    The linking evaluation (§6.4.1) discards certificates whose Common Name
    is an IP address before linking on Common Name; this is the predicate
    it uses.
    """
    try:
        str_to_ip(text)
    except ValueError:
        return False
    return True


def summarize_slash8(ips: Iterable[int]) -> dict[int, int]:
    """Count addresses per /8 network.  Used by the Figure 1 analysis."""
    counts: dict[int, int] = {}
    for ip in ips:
        top = slash8(ip)
        counts[top] = counts.get(top, 0) + 1
    return counts
