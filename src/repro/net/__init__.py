"""Network substrate: IPv4 math, BGP prefix tables, and the AS registry."""

from .asn import ASInfo, ASRegistry, ASType, OrgRecord
from .bgp import PrefixTable, Route, RoutingHistory
from .ip import (
    IPV4_SPACE,
    Prefix,
    RESERVED_PREFIXES,
    ip_to_str,
    is_private,
    is_reserved,
    looks_like_ipv4,
    slash8,
    slash16,
    slash24,
    str_to_ip,
    summarize_slash8,
)

__all__ = [
    "ASInfo",
    "ASRegistry",
    "ASType",
    "OrgRecord",
    "PrefixTable",
    "Route",
    "RoutingHistory",
    "IPV4_SPACE",
    "Prefix",
    "RESERVED_PREFIXES",
    "ip_to_str",
    "is_private",
    "is_reserved",
    "looks_like_ipv4",
    "slash8",
    "slash16",
    "slash24",
    "str_to_ip",
    "summarize_slash8",
]
