"""BGP prefix-to-AS substrate.

The paper maps scanned IP addresses to BGP prefixes and ASes using historic
RouteViews snapshots (CAIDA prefix2as).  This module provides the same
machinery for the simulated Internet:

* :class:`PrefixTable` — an immutable longest-prefix-match table, the
  equivalent of one RouteViews snapshot;
* :class:`RoutingHistory` — a day-indexed sequence of snapshots, so the
  analysis can ask "which AS originated this address on the day of scan N"
  exactly the way the paper replays historic RouteViews data;
* prefix-transfer support, used to simulate ISPs moving address blocks
  between their ASes (the Verizon → MCI events of §7.3).

Longest-prefix match is implemented with a per-length hash map, which is
both simple and O(#distinct lengths) per lookup — plenty fast for the
simulator and trivially correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from .ip import Prefix

__all__ = ["Route", "PrefixTable", "RoutingHistory"]


@dataclass(frozen=True)
class Route:
    """One announced prefix and its originating AS."""

    prefix: Prefix
    asn: int


class PrefixTable:
    """A longest-prefix-match table over a set of announced routes.

    Equivalent to one RouteViews ``prefix2as`` snapshot.  Lookup returns the
    most-specific covering route, as BGP forwarding would.
    """

    def __init__(self, routes: Iterable[Route] = ()) -> None:
        # One dict per prefix length, keyed by masked network address.
        self._by_length: dict[int, dict[int, Route]] = {}
        self._routes: list[Route] = []
        for route in routes:
            self.add(route)

    def add(self, route: Route) -> None:
        """Announce a route.  Re-announcing the same prefix replaces it."""
        bucket = self._by_length.setdefault(route.prefix.length, {})
        previous = bucket.get(route.prefix.network)
        if previous is not None:
            self._routes.remove(previous)
        bucket[route.prefix.network] = route
        self._routes.append(route)

    def withdraw(self, prefix: Prefix) -> bool:
        """Withdraw a route; returns False if it was not announced."""
        bucket = self._by_length.get(prefix.length)
        if not bucket:
            return False
        route = bucket.pop(prefix.network, None)
        if route is None:
            return False
        self._routes.remove(route)
        return True

    def lookup(self, ip: int) -> Optional[Route]:
        """Longest-prefix match for an address; None if unrouted."""
        for length in sorted(self._by_length, reverse=True):
            masked = ip & _length_mask(length)
            route = self._by_length[length].get(masked)
            if route is not None:
                return route
        return None

    def origin_as(self, ip: int) -> Optional[int]:
        """The AS originating the covering prefix, or None."""
        route = self.lookup(ip)
        return route.asn if route else None

    def routes(self) -> list[Route]:
        """All announced routes (copy)."""
        return list(self._routes)

    def prefixes_of(self, asn: int) -> list[Prefix]:
        """All prefixes originated by one AS."""
        return [route.prefix for route in self._routes if route.asn == asn]

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[Route]:
        return iter(self._routes)

    def copy(self) -> "PrefixTable":
        """Deep-enough copy: routes are frozen, tables are rebuilt."""
        return PrefixTable(self._routes)

    def transfer(self, prefix: Prefix, new_asn: int) -> "PrefixTable":
        """Return a new table with ``prefix`` re-originated by ``new_asn``.

        Models an ISP moving an address block between ASes it owns
        (§7.3's Verizon → MCI transfers).  The prefix must currently be
        announced.
        """
        bucket = self._by_length.get(prefix.length, {})
        if prefix.network not in bucket:
            raise KeyError(f"prefix {prefix} not announced")
        updated = self.copy()
        updated.add(Route(prefix, new_asn))
        return updated


def _length_mask(length: int) -> int:
    if length == 0:
        return 0
    return (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF


class RoutingHistory:
    """Day-indexed sequence of :class:`PrefixTable` snapshots.

    The paper replays historic RouteViews data so each scan is mapped with
    the routing state of its own day.  ``table_at(day)`` returns the most
    recent snapshot at or before ``day`` (and the earliest snapshot for
    days before the first one, so early scans still resolve).
    """

    def __init__(self, snapshots: Sequence[tuple[int, PrefixTable]]) -> None:
        if not snapshots:
            raise ValueError("RoutingHistory needs at least one snapshot")
        ordered = sorted(snapshots, key=lambda pair: pair[0])
        self._days: list[int] = [day for day, _ in ordered]
        self._tables: list[PrefixTable] = [table for _, table in ordered]
        if len(set(self._days)) != len(self._days):
            raise ValueError("duplicate snapshot days")

    @classmethod
    def constant(cls, table: PrefixTable) -> "RoutingHistory":
        """A history that never changes (single snapshot at day 0)."""
        return cls([(0, table)])

    def epoch_of(self, day: int) -> int:
        """Index of the snapshot in force on ``day``.

        Two days with the same epoch are guaranteed to resolve through the
        same table, so day-aware lookup caches (the consistency kernel's
        ``(ip, day) → ASN`` memo) can key on the epoch instead of the day
        and collapse every scan within one routing regime to one entry.
        """
        # Linear scan is fine: histories hold a handful of snapshots.
        chosen = 0
        for index, snapshot_day in enumerate(self._days):
            if snapshot_day <= day:
                chosen = index
            else:
                break
        return chosen

    def table_at(self, day: int) -> PrefixTable:
        """Snapshot in force on ``day``."""
        return self._tables[self.epoch_of(day)]

    def origin_as(self, ip: int, day: int) -> Optional[int]:
        """AS originating ``ip`` on ``day``."""
        return self.table_at(day).origin_as(ip)

    def snapshot_days(self) -> list[int]:
        """Days on which the routing state changed."""
        return list(self._days)

    def add_snapshot(self, day: int, table: PrefixTable) -> None:
        """Insert a new snapshot, keeping days sorted and unique."""
        if day in self._days:
            raise ValueError(f"snapshot for day {day} already present")
        self._days.append(day)
        self._tables.append(table)
        order = sorted(range(len(self._days)), key=self._days.__getitem__)
        self._days = [self._days[i] for i in order]
        self._tables = [self._tables[i] for i in order]
