"""Autonomous-system registry.

The paper classifies ASes using CAIDA's AS-classification dataset
(transit/access, content, enterprise, unknown) and maps ASes to countries
and organizations via CAIDA's AS-organization dataset.  This module is the
simulated equivalent: a registry of :class:`ASInfo` records that the world
builder populates and the analysis layer queries.

The organization history supports the temporal resolution the paper notes
(3–4 month snapshots) so that §7.3's country-movement analysis can select
"the entry closest to each scan".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

__all__ = ["ASType", "ASInfo", "OrgRecord", "ASRegistry"]


class ASType(enum.Enum):
    """CAIDA-style AS classification (Table 2 of the paper)."""

    TRANSIT_ACCESS = "Transit/Access"
    CONTENT = "Content"
    ENTERPRISE = "Enterprise"
    UNKNOWN = "Unknown"


@dataclass(frozen=True)
class OrgRecord:
    """One snapshot of an AS's organization data.

    ``valid_from`` is a simulated day index; snapshots are typically
    ~100 days apart, mirroring CAIDA's 3–4 month resolution.
    """

    valid_from: int
    org_name: str
    country: str


@dataclass
class ASInfo:
    """Static and slowly-changing facts about one autonomous system."""

    asn: int
    name: str
    as_type: ASType
    org_history: list[OrgRecord] = field(default_factory=list)

    def org_at(self, day: int) -> Optional[OrgRecord]:
        """Return the organization snapshot closest to ``day``.

        Mirrors the paper's footnote 13: the AS-organization dataset has a
        resolution of 3–4 months, so "we choose the entry that is closest
        to each of our scans".
        """
        if not self.org_history:
            return None
        return min(self.org_history, key=lambda rec: abs(rec.valid_from - day))

    def country_at(self, day: int) -> Optional[str]:
        """Country code of the organization snapshot closest to ``day``."""
        record = self.org_at(day)
        return record.country if record else None


class ASRegistry:
    """Lookup table of every AS in the simulated Internet."""

    def __init__(self) -> None:
        self._by_asn: dict[int, ASInfo] = {}

    def add(self, info: ASInfo) -> None:
        """Register an AS; re-registering the same ASN is an error."""
        if info.asn in self._by_asn:
            raise ValueError(f"AS{info.asn} already registered")
        self._by_asn[info.asn] = info

    def get(self, asn: int) -> Optional[ASInfo]:
        """Return the record for ``asn``, or None if unknown."""
        return self._by_asn.get(asn)

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn

    def __len__(self) -> int:
        return len(self._by_asn)

    def __iter__(self) -> Iterator[ASInfo]:
        return iter(self._by_asn.values())

    def classify(self, asn: int) -> ASType:
        """Return the AS type, or UNKNOWN for unregistered ASes."""
        info = self._by_asn.get(asn)
        return info.as_type if info else ASType.UNKNOWN

    def by_type(self, as_type: ASType) -> list[ASInfo]:
        """All ASes of one classification."""
        return [info for info in self._by_asn.values() if info.as_type is as_type]

    @classmethod
    def from_infos(cls, infos: Iterable[ASInfo]) -> "ASRegistry":
        """Build a registry from an iterable of records."""
        registry = cls()
        for info in infos:
            registry.add(info)
        return registry
