"""Shared statistics utilities."""

from .cdf import CDF
from .tables import format_count, format_pct, render_table

__all__ = ["CDF", "format_count", "format_pct", "render_table"]
