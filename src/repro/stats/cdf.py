"""Empirical CDF utility.

Every distributional figure in the paper (3, 4, 5, 6, 7, 8, 10, 11) is a
CDF; :class:`CDF` is the shared representation the analysis layer returns
and the benchmark harness prints.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["CDF"]


@dataclass(frozen=True)
class CDF:
    """An empirical cumulative distribution over numeric samples."""

    values: tuple[float, ...]  # sorted

    @classmethod
    def of(cls, samples: Iterable[float]) -> "CDF":
        """Build from raw samples."""
        values = tuple(sorted(samples))
        if not values:
            raise ValueError("CDF needs at least one sample")
        return cls(values)

    def __len__(self) -> int:
        return len(self.values)

    def at(self, x: float) -> float:
        """Fraction of samples ≤ x."""
        return bisect.bisect_right(self.values, x) / len(self.values)

    def percentile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1] (nearest-rank)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if q == 0.0:
            return self.values[0]
        rank = max(0, min(len(self.values) - 1, int(q * len(self.values)) - (q == 1.0)))
        index = min(len(self.values) - 1, int(round(q * (len(self.values) - 1))))
        return self.values[index] if rank is not None else self.values[rank]

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.percentile(0.5)

    @property
    def min(self) -> float:
        return self.values[0]

    @property
    def max(self) -> float:
        return self.values[-1]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    def fraction_below(self, x: float) -> float:
        """Fraction of samples strictly less than x."""
        return bisect.bisect_left(self.values, x) / len(self.values)

    def series(self, points: Sequence[float]) -> list[tuple[float, float]]:
        """(x, F(x)) pairs for plotting/printing at the given x points."""
        return [(x, self.at(x)) for x in points]
