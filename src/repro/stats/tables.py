"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_count", "format_pct"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table (headers + separator + rows)."""
    table = [list(map(str, headers))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[col]) for row in table) for col in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_count(value: int) -> str:
    """Thousands-separated integer."""
    return f"{value:,}"


def format_pct(fraction: float, digits: int = 1) -> str:
    """Fraction → percentage string."""
    return f"{100.0 * fraction:.{digits}f}%"
