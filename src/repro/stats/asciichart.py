"""Terminal-friendly chart rendering.

The benchmark harness and examples print CDFs and time series the way the
paper plots them, without any plotting dependency: a fixed-size character
grid with axis labels.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .cdf import CDF

__all__ = ["render_cdf", "render_series"]


def render_series(
    points: Sequence[tuple[float, float]],
    width: int = 60,
    height: int = 12,
    title: str = "",
    marker: str = "*",
) -> str:
    """Plot (x, y) points on a character grid with min/max axis labels."""
    if not points:
        raise ValueError("nothing to plot")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        column = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][column] = marker

    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        label = ""
        if index == 0:
            label = f"{y_hi:.2f}"
        elif index == height - 1:
            label = f"{y_lo:.2f}"
        lines.append(f"{label:>8s} |{''.join(row)}")
    lines.append(f"{'':>8s} +{'-' * width}")
    lines.append(f"{'':>10s}{x_lo:<.6g}{'':>{max(1, width - 14)}}{x_hi:.6g}")
    return "\n".join(lines)


def render_cdf(
    cdf: CDF,
    width: int = 60,
    height: int = 12,
    title: str = "",
    log_x: bool = False,
    points: Optional[int] = None,
) -> str:
    """Plot an empirical CDF, optionally with a log-scaled x axis.

    ``log_x`` mirrors the paper's Figures 3, 5, and 8; non-positive values
    are clamped to the smallest positive sample.
    """
    import math

    points = points or width
    lo, hi = cdf.min, cdf.max
    if log_x:
        positive = [value for value in cdf.values if value > 0]
        if not positive:
            raise ValueError("log-x CDF needs positive samples")
        lo = positive[0]
        hi = max(hi, lo)
        xs = [
            lo * (hi / lo) ** (i / (points - 1)) if points > 1 else lo
            for i in range(points)
        ]
        plotted = [(math.log10(x), cdf.at(x)) for x in xs]
    else:
        span = (hi - lo) or 1.0
        xs = [lo + span * i / (points - 1) if points > 1 else lo for i in range(points)]
        plotted = [(x, cdf.at(x)) for x in xs]
    label = f"{title} (x: log10)" if log_x and title else (title or "")
    return render_series(plotted, width=width, height=height, title=label)
