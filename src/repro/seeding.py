"""Deterministic RNG derivation.

``random.Random(some_tuple)`` seeds from ``hash()``, which Python randomizes
per process for strings — a silent reproducibility killer.  Every component
of the simulator instead derives child RNGs through :func:`stable_rng`,
which hashes the scope parts with SHA-256, so a world seed produces
identical certificates, addresses, and schedules across runs, machines, and
``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["stable_seed", "stable_rng"]


def stable_seed(*parts: object) -> int:
    """Collapse arbitrary scope parts into a 64-bit deterministic seed."""
    material = "\x1f".join(repr(part) for part in parts).encode("utf-8")
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


def stable_rng(*parts: object) -> random.Random:
    """A fresh ``random.Random`` seeded stably from the scope parts."""
    return random.Random(stable_seed(*parts))
