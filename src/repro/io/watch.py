"""The ``repro ingest --watch`` daemon: a polling shard-drop ingester.

The O(day) append path (:func:`~repro.io.store.append_shards`) assumed
someone calls it; this module is that someone, run continuously.  A scan
producer writes one :func:`~repro.io.store.write_shard_drop` file per
day into a drop directory (atomic rename, so a drop is either absent or
complete); :class:`WatchIngestor` polls the directory, orders pending
drops by scan day (an O(1) ``read_container_meta`` peek per file — the
columns stay unread until ingestion), and delta-appends each into the
watched corpus.

Crash-safety mirrors the drop writer: the grown container is assembled
next to the corpus and swapped in with one atomic rename, so a reader
mapping the corpus never sees a partial append and a daemon killed
mid-ingest leaves the previous corpus intact and the drop file pending.
Processed drops are renamed ``<name>.done``; drops the append rejects
(wrong day order, missing certificates, truncated container) become
``<name>.rejected`` and never block later days.

Because every ingest *is* ``append_shards``, the grown corpus is
byte-identical to what a direct ``repro append`` of the same day would
produce — append-path invariance extends to the daemon.

Observability: the ingester publishes ``ingest.last_day`` /
``ingest.watch_polls`` and mutates a caller-shared health dict
(``last_append_day``, ``files_ingested``, ``files_rejected``,
``last_error``) that the live plane's ``/healthz`` endpoint surfaces.
"""

from __future__ import annotations

import pathlib
import threading
from typing import Dict, List, Optional, Union

from ..obs import runtime as obs
from .encoding import SegmentError, read_container_meta
from .store import AppendResult, append_shards, read_shard_drop

__all__ = ["WatchIngestor", "DROP_SUFFIX"]

#: The drop-file extension the watcher polls for (``repro shard`` writes).
DROP_SUFFIX = ".rps"


class WatchIngestor:
    """Polls a drop directory and delta-appends arriving days.

    One instance owns one corpus; :meth:`poll` is re-entrant-free and
    single-threaded by design (appends must serialize — each one's base
    is the previous one's output).  :meth:`run` wraps polling in a
    stoppable loop for daemon use.
    """

    def __init__(
        self,
        corpus: Union[str, pathlib.Path],
        drop_dir: Union[str, pathlib.Path],
        health: Optional[Dict] = None,
    ) -> None:
        self.corpus = pathlib.Path(corpus)
        self.drop_dir = pathlib.Path(drop_dir)
        #: Mutated in place on every ingest; share it with a
        #: :class:`~repro.obs.live.LiveServer` to surface it at /healthz.
        self.health = health if health is not None else {}
        self.health.setdefault("corpus", str(self.corpus))
        self.health.setdefault("drop_dir", str(self.drop_dir))
        self.health.setdefault("files_ingested", 0)
        self.health.setdefault("files_rejected", 0)
        self.polls = 0
        self.ingested = 0
        self.rejected = 0

    # --- discovery -------------------------------------------------------------

    def pending(self) -> List[pathlib.Path]:
        """Complete drop files awaiting ingestion, in scan-day order.

        Day order is what ``append_shards`` requires; name order breaks
        ties deterministically.  Files whose trailer cannot be read yet
        are skipped this poll (the writer renames atomically, so this
        only happens for foreign files, which will be rejected once
        they stop changing — never for an in-progress ``.tmp``).
        """
        candidates = []
        for path in sorted(self.drop_dir.glob(f"*{DROP_SUFFIX}")):
            try:
                meta = read_container_meta(path)
                day = meta["meta"]["day"]
            except (SegmentError, KeyError, OSError, ValueError):
                self._reject(path, "unreadable drop container")
                continue
            candidates.append((day, path.name, path))
        return [path for _, _, path in sorted(candidates)]

    # --- ingestion -------------------------------------------------------------

    def ingest(self, path: pathlib.Path) -> Optional[AppendResult]:
        """Append one drop file; returns the result, or None on reject."""
        try:
            drop = read_shard_drop(path)
            grown = self.corpus.with_name(self.corpus.name + ".growing")
            result = append_shards(
                self.corpus, list(drop.shards), drop.certificates, grown
            )
            grown.replace(self.corpus)
        except (SegmentError, ValueError, OSError, KeyError) as error:
            self._reject(path, str(error))
            return None
        path.replace(path.with_name(path.name + ".done"))
        self.ingested += 1
        self.health["files_ingested"] = self.ingested
        self.health["last_append_day"] = drop.day
        self.health["last_digest"] = result.digest
        obs.gauge("ingest.last_day", float(drop.day))
        obs.inc("ingest.files_ingested")
        return result

    def _reject(self, path: pathlib.Path, reason: str) -> None:
        try:
            path.replace(path.with_name(path.name + ".rejected"))
        except OSError:
            pass
        self.rejected += 1
        self.health["files_rejected"] = self.rejected
        self.health["last_error"] = f"{path.name}: {reason}"
        obs.inc("ingest.files_rejected")

    def poll(self) -> List[AppendResult]:
        """One pass over the drop directory; returns the day appends."""
        self.polls += 1
        obs.inc("ingest.watch_polls")
        results = []
        for path in self.pending():
            result = self.ingest(path)
            if result is not None:
                results.append(result)
        return results

    def run(
        self,
        interval: float = 2.0,
        stop: Optional[threading.Event] = None,
        max_days: Optional[int] = None,
    ) -> int:
        """Poll until stopped (or until ``max_days`` days have landed).

        Returns the number of ingested drop files.  ``stop`` is shared
        with the hosting process (the CLI sets it from SIGINT); the loop
        wakes immediately when it fires.
        """
        if interval <= 0:
            raise ValueError("interval must be positive seconds")
        stop = stop if stop is not None else threading.Event()
        ingested = 0
        while not stop.is_set():
            ingested += len(self.poll())
            if max_days is not None and ingested >= max_days:
                break
            stop.wait(interval)
        return ingested
