"""Pluggable corpus-storage backends.

The analysis API (:class:`~repro.scanner.dataset.ScanDataset` and
everything in ``repro.core``) is deliberately separated from *where the
corpus lives*.  A :class:`DatasetBackend` is anything that can produce
the row scans and the certificate table; ``ScanDataset.from_backend``
materializes the analysis view on top.

Two backends ship:

* :class:`InMemoryBackend` — holds the corpus **columnar**
  (:class:`~repro.scanner.columns.ObservationColumns` plus per-scan
  metadata) and rehydrates row ``Scan`` objects on demand; this is what a
  freshly scanned or deserialized corpus lives in;
* :class:`ArchiveBackend` — lazy view over one ``.rpz`` archive (format
  v1 or v2); nothing is read until a load method is called, so cheap
  operations like :meth:`describe` never parse certificates.
"""

from __future__ import annotations

import pathlib
from typing import (
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Union,
    runtime_checkable,
)

from ..scanner.columns import ObservationColumns
from ..scanner.records import Scan
from ..x509.certificate import Certificate

__all__ = ["DatasetBackend", "InMemoryBackend", "ArchiveBackend"]


@runtime_checkable
class DatasetBackend(Protocol):
    """Anything that can supply a scan corpus to the analysis layer."""

    def load_scans(self) -> Sequence[Scan]:
        """The corpus' scans (row view), in (day, source) order."""
        ...

    def load_certificates(self) -> Mapping[bytes, Certificate]:
        """fingerprint → certificate for every certificate in the corpus."""
        ...

    def describe(self) -> dict:
        """Cheap corpus statistics (no full load required)."""
        ...


class InMemoryBackend:
    """Columnar in-memory corpus storage.

    Observations live in one :class:`ObservationColumns`; scans are kept
    only as (day, source, start, end) metadata over the contiguous
    per-scan column ranges and rehydrated to rows on request.
    """

    def __init__(
        self,
        columns: ObservationColumns,
        scan_meta: Sequence[tuple[int, str, int, int]],
        certificates: Mapping[bytes, Certificate],
    ) -> None:
        self.columns = columns
        #: (day, source, first observation position, one-past-last).
        self.scan_meta = list(scan_meta)
        self.certificates = dict(certificates)
        self._corpus_digest: Optional[str] = None

    @classmethod
    def from_scans(
        cls,
        scans: Sequence[Scan],
        certificates: Mapping[bytes, Certificate],
    ) -> "InMemoryBackend":
        """Columnarize a row corpus (scans must already be day-sorted)."""
        columns = ObservationColumns.from_scans(scans)
        meta: List[tuple[int, str, int, int]] = []
        position = 0
        for scan in scans:
            meta.append((scan.day, scan.source, position, position + len(scan)))
            position += len(scan)
        return cls(columns, meta, certificates)

    @classmethod
    def from_dataset(cls, dataset) -> "InMemoryBackend":
        """Columnarize an existing :class:`ScanDataset`.

        A dataset that already holds merged columns (the columnar
        generation path, or a cache hit) is adopted zero-copy instead of
        being re-interned from rows.
        """
        columns = getattr(dataset, "_columns", None)
        if columns is not None:
            meta: List[tuple[int, str, int, int]] = []
            position = 0
            for scan in dataset.scans:
                meta.append(
                    (scan.day, scan.source, position, position + len(scan))
                )
                position += len(scan)
            return cls(columns, meta, dataset.certificates)
        return cls.from_scans(dataset.scans, dataset.certificates)

    def load_scans(self) -> List[Scan]:
        return [
            Scan(
                day=day,
                source=source,
                observations=[
                    self.columns.observation_at(position)
                    for position in range(start, end)
                ],
            )
            for day, source, start, end in self.scan_meta
        ]

    def load_certificates(self) -> Dict[bytes, Certificate]:
        return dict(self.certificates)

    def corpus_digest(self) -> str:
        """Canonical content digest over the columnar corpus.

        Cheap (one hash pass over the already-interned columns) and
        equal to the canonical digest a backend-less
        :class:`~repro.scanner.dataset.ScanDataset` computes for the
        same corpus, so artifacts stored either way are shared.
        """
        if self._corpus_digest is None:
            from .artifacts import columns_digest

            self._corpus_digest = columns_digest(
                self.columns,
                [(day, source) for day, source, _, _ in self.scan_meta],
                self.certificates,
            )
        return self._corpus_digest

    def describe(self) -> dict:
        return {
            "backend": "memory",
            "n_scans": len(self.scan_meta),
            "n_certificates": len(self.certificates),
            "n_observations": len(self.columns),
        }


class ArchiveBackend:
    """Lazy corpus view over one ``.rpz`` archive (format v1 or v2)."""

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self._corpus_digest: Optional[str] = None

    def corpus_digest(self) -> str:
        """Streaming SHA-256 over the archive's bytes (nothing parsed)."""
        if self._corpus_digest is None:
            from .artifacts import file_digest

            self._corpus_digest = file_digest(self.path)
        return self._corpus_digest

    def load_scans(self) -> List[Scan]:
        from .store import read_scans

        return read_scans(self.path)

    def load_certificates(self) -> Dict[bytes, Certificate]:
        from .store import read_certificates

        return read_certificates(self.path)

    def describe(self) -> dict:
        from .store import read_manifest

        manifest = read_manifest(self.path)
        manifest.setdefault("backend", "archive")
        return manifest
