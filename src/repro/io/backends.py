"""Pluggable corpus-storage backends.

The analysis API (:class:`~repro.scanner.dataset.ScanDataset` and
everything in ``repro.core``) is deliberately separated from *where the
corpus lives*.  A :class:`DatasetBackend` is anything that can produce
the row scans and the certificate table; ``ScanDataset.from_backend``
materializes the analysis view on top.

Three backends ship:

* :class:`InMemoryBackend` — holds the corpus **columnar**
  (:class:`~repro.scanner.columns.ObservationColumns` plus per-scan
  metadata) and rehydrates row ``Scan`` objects on demand; this is what a
  freshly scanned corpus lives in;
* :class:`ArchiveBackend` — lazy view over one ``.rpz`` archive (any
  format); nothing is read until a load method is called, so cheap
  operations like :meth:`describe` never parse certificates;
* :class:`MappedBackend` — zero-copy view over a format 3 container:
  open is O(1), columns are ``memoryview``s over one shared ``mmap``,
  certificates parse lazily on first access, and pickling ships only
  the *path* — pool workers re-map the file and share physical pages
  through the OS page cache instead of each holding a private copy.
"""

from __future__ import annotations

import pathlib
from bisect import bisect_left
from collections import OrderedDict
from typing import (
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Union,
    runtime_checkable,
)

from ..obs import runtime as obs
from ..scanner.columns import ObservationColumns
from ..scanner.records import Scan
from ..tls.handshake import HandshakeRecord
from ..x509.certificate import Certificate
from .encoding import (
    FP_HASH_SEGMENT,
    SegmentError,
    SegmentReader,
    fingerprint_hash_find,
    unpack_fingerprints,
)

__all__ = [
    "DatasetBackend",
    "InMemoryBackend",
    "ArchiveBackend",
    "MappedBackend",
    "LazyCertificates",
]

#: Byte length of the big-endian record length prefix inside
#: ``certificates.der`` (see :func:`repro.io.encoding.pack_der_record`).
_DER_PREFIX = 4


@runtime_checkable
class DatasetBackend(Protocol):
    """Anything that can supply a scan corpus to the analysis layer."""

    def load_scans(self) -> Sequence[Scan]:
        """The corpus' scans (row view), in (day, source) order."""
        ...

    def load_certificates(self) -> Mapping[bytes, Certificate]:
        """fingerprint → certificate for every certificate in the corpus."""
        ...

    def describe(self) -> dict:
        """Cheap corpus statistics (no full load required)."""
        ...


class InMemoryBackend:
    """Columnar in-memory corpus storage.

    Observations live in one :class:`ObservationColumns`; scans are kept
    only as (day, source, start, end) metadata over the contiguous
    per-scan column ranges and rehydrated to rows on request.
    """

    def __init__(
        self,
        columns: ObservationColumns,
        scan_meta: Sequence[tuple[int, str, int, int]],
        certificates: Mapping[bytes, Certificate],
    ) -> None:
        self.columns = columns
        #: (day, source, first observation position, one-past-last).
        self.scan_meta = list(scan_meta)
        self.certificates = dict(certificates)
        self._corpus_digest: Optional[str] = None

    @classmethod
    def from_scans(
        cls,
        scans: Sequence[Scan],
        certificates: Mapping[bytes, Certificate],
    ) -> "InMemoryBackend":
        """Columnarize a row corpus (scans must already be day-sorted)."""
        columns = ObservationColumns.from_scans(scans)
        meta: List[tuple[int, str, int, int]] = []
        position = 0
        for scan in scans:
            meta.append((scan.day, scan.source, position, position + len(scan)))
            position += len(scan)
        return cls(columns, meta, certificates)

    @classmethod
    def from_dataset(cls, dataset) -> "InMemoryBackend":
        """Columnarize an existing :class:`ScanDataset`.

        A dataset that already holds merged columns (the columnar
        generation path, or a cache hit) is adopted zero-copy instead of
        being re-interned from rows.
        """
        columns = getattr(dataset, "_columns", None)
        if columns is not None:
            meta: List[tuple[int, str, int, int]] = []
            position = 0
            for scan in dataset.scans:
                meta.append(
                    (scan.day, scan.source, position, position + len(scan))
                )
                position += len(scan)
            return cls(columns, meta, dataset.certificates)
        return cls.from_scans(dataset.scans, dataset.certificates)

    def load_scans(self) -> List[Scan]:
        return [
            Scan(
                day=day,
                source=source,
                observations=[
                    self.columns.observation_at(position)
                    for position in range(start, end)
                ],
            )
            for day, source, start, end in self.scan_meta
        ]

    def load_certificates(self) -> Dict[bytes, Certificate]:
        return dict(self.certificates)

    def corpus_digest(self) -> str:
        """Canonical content digest over the columnar corpus.

        Cheap (one hash pass over the already-interned columns) and
        equal to the canonical digest a backend-less
        :class:`~repro.scanner.dataset.ScanDataset` computes for the
        same corpus, so artifacts stored either way are shared.
        """
        if self._corpus_digest is None:
            from .artifacts import columns_digest

            self._corpus_digest = columns_digest(
                self.columns,
                [(day, source) for day, source, _, _ in self.scan_meta],
                self.certificates,
            )
        return self._corpus_digest

    def describe(self) -> dict:
        return {
            "backend": "memory",
            "n_scans": len(self.scan_meta),
            "n_certificates": len(self.certificates),
            "n_observations": len(self.columns),
        }


class ArchiveBackend:
    """Lazy corpus view over one ``.rpz`` archive (format v1 or v2)."""

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self._corpus_digest: Optional[str] = None

    def corpus_digest(self) -> str:
        """Streaming SHA-256 over the archive's bytes (nothing parsed)."""
        if self._corpus_digest is None:
            from .artifacts import file_digest

            self._corpus_digest = file_digest(self.path)
        return self._corpus_digest

    def load_scans(self) -> List[Scan]:
        from .store import read_scans

        return read_scans(self.path)

    def load_certificates(self) -> Dict[bytes, Certificate]:
        from .store import read_certificates

        return read_certificates(self.path)

    def describe(self) -> dict:
        from .store import read_manifest

        manifest = read_manifest(self.path)
        manifest.setdefault("backend", "archive")
        return manifest


class LazyCertificates(Mapping):
    """fingerprint → :class:`Certificate` over a mapped container.

    Lookup is O(1) via the persisted ``cert_hash`` open-addressing
    segment (probed directly against the mapped ``cert_order`` bytes —
    no per-key Python objects are ever built); containers written
    before the segment existed fall back to a binary search over a
    lazily built row permutation sorted by fingerprint.  Each
    certificate's DER parses on first ``[]`` access (O(1) via the
    parallel ``cert_offsets`` segment) and lands in a **bounded** LRU
    memo, so a serve workload hammering a hot set parses each
    certificate once (``io.der_parse_total`` counts actual parses)
    while a full-corpus sweep cannot grow memory without bound.
    Nothing is parsed at construction, which is what keeps a mapped
    corpus open O(1).
    """

    #: Default bound on the decoded-certificate memo (entries).  At
    #: ~2–10 KiB per decoded certificate this caps the memo around a
    #: few hundred MiB worst case — far below the corpus itself.
    DEFAULT_CACHE_SIZE = 65536

    def __init__(
        self,
        reader: SegmentReader,
        cache_size: Optional[int] = None,
    ) -> None:
        self._reader = reader
        self._order: "Optional[list[bytes]]" = None
        self._offsets = None
        self._fp_blob = None
        self._hash = None
        self._hash_checked = False
        #: Fallback for pre-``cert_hash`` containers: row indexes
        #: sorted by fingerprint bytes, binary-searched per lookup.
        self._sorted_rows: "Optional[list[int]]" = None
        self._cache: "OrderedDict[bytes, Certificate]" = OrderedDict()
        self._cache_size = (
            self.DEFAULT_CACHE_SIZE if cache_size is None else cache_size
        )

    def fingerprints(self) -> "list[bytes]":
        """Every certificate fingerprint, in canonical stored order."""
        if self._order is None:
            self._order = unpack_fingerprints(
                self._reader.bytes("cert_order", materialize=True)
            )
        return self._order

    def _row_of(self, fingerprint: bytes) -> Optional[int]:
        """``cert_order`` row for a fingerprint, or ``None`` if absent."""
        if self._fp_blob is None:
            self._fp_blob = self._reader.raw("cert_order")
        if not self._hash_checked:
            self._hash_checked = True
            if FP_HASH_SEGMENT in self._reader:
                self._hash = self._reader.array(FP_HASH_SEGMENT)
        if self._hash is not None:
            return fingerprint_hash_find(
                self._hash, self._fp_blob, fingerprint
            )
        order = self.fingerprints()
        if self._sorted_rows is None:
            self._sorted_rows = sorted(
                range(len(order)), key=order.__getitem__
            )
        position = bisect_left(
            self._sorted_rows, fingerprint, key=order.__getitem__
        )
        if position < len(self._sorted_rows):
            row = self._sorted_rows[position]
            if order[row] == fingerprint:
                return row
        return None

    def __len__(self) -> int:
        return self._reader.meta["n_certificates"]

    def __iter__(self):
        return iter(self.fingerprints())

    def __contains__(self, fingerprint) -> bool:
        if not isinstance(fingerprint, bytes):
            return False
        return self._row_of(fingerprint) is not None

    def __getitem__(self, fingerprint: bytes) -> Certificate:
        certificate = self._cache.get(fingerprint)
        if certificate is not None:
            self._cache.move_to_end(fingerprint)
            return certificate
        row = (
            self._row_of(fingerprint)
            if isinstance(fingerprint, bytes) else None
        )
        if row is None:
            raise KeyError(fingerprint)
        if self._offsets is None:
            self._offsets = self._reader.array("cert_offsets")
        blob = self._reader.raw("certificates.der")
        start = self._offsets[row] + _DER_PREFIX
        end = self._offsets[row + 1]
        der = bytes(blob[start:end])
        obs.inc("io.bytes_materialized", len(der))
        obs.inc("io.der_parse_total")
        certificate = Certificate.from_der(der)
        self._cache[fingerprint] = certificate
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return certificate


class MappedBackend:
    """Zero-copy corpus view over one format 3 ``.rpz`` container.

    Opening reads the trailer + manifest only; the file is ``mmap``ed on
    first data access and every observation column is consumed in place
    as a little-endian ``memoryview`` over the map.  Pickling ships the
    path, not the data: a pool worker's unpickle re-maps the same file,
    so N workers share one physical copy through the page cache.
    """

    #: Marks this backend as path-shippable / memoryview-backed for
    #: :meth:`ScanDataset.from_backend` and dataset pickling.
    mapped = True

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self._reader: Optional[SegmentReader] = None
        self._columns: Optional[ObservationColumns] = None
        self._scan_meta: "Optional[list[tuple[int, str, int, int]]]" = None
        self._certificates: Optional[LazyCertificates] = None
        self._corpus_digest: Optional[str] = None

    @property
    def reader(self) -> SegmentReader:
        """The container reader (manifest parsed once, mapped lazily)."""
        if self._reader is None:
            reader = SegmentReader(self.path)
            if reader.meta.get("kind") != "corpus":
                raise SegmentError(
                    f"not a corpus container: {self.path} "
                    f"(kind={reader.meta.get('kind')!r})"
                )
            self._reader = reader
        return self._reader

    @property
    def columns(self) -> ObservationColumns:
        """The mapped columnar view (built once, columns page lazily)."""
        if self._columns is None:
            reader = self.reader
            self._columns = ObservationColumns.from_segments(
                reader.array("scan_idx"),
                reader.array("ip"),
                reader.array("cert_id"),
                reader.array("entity_id"),
                reader.array("handshake_id"),
                fp_blob=reader.bytes("fingerprints"),
                entities=reader.json("entities"),
                handshakes=[
                    HandshakeRecord(*row)
                    for row in reader.json("handshakes")
                ],
                source=reader,
            )
        return self._columns

    @property
    def scan_meta(self) -> "list[tuple[int, str, int, int]]":
        """(day, source, start, end) per scan, from the metadata segments."""
        if self._scan_meta is None:
            reader = self.reader
            days = reader.array("scan_days")
            sources = reader.json("scan_sources")
            bounds = reader.array("scan_bounds")
            self._scan_meta = [
                (days[index], sources[index],
                 bounds[index], bounds[index + 1])
                for index in range(len(sources))
            ]
        return self._scan_meta

    def load_scans(self) -> List[Scan]:
        from ..scanner.shards import scans_over_columns

        return scans_over_columns(self.columns, self.scan_meta)

    def load_certificates(self) -> LazyCertificates:
        if self._certificates is None:
            self._certificates = LazyCertificates(self.reader)
        return self._certificates

    def corpus_digest(self) -> str:
        """Streaming SHA-256 over the container's bytes (nothing parsed).

        Equal to the digest :class:`~repro.io.store.StreamingDatasetWriter`
        computed while writing the file, so artifacts cached against a
        streamed write are found again on a mapped open.  Reads the file
        through ordinary buffered I/O — no column segment is mapped or
        materialized (``io.bytes_materialized`` stays 0), which keeps
        ``repro info`` and lineage lookups O(file bytes) with zero
        decode work.
        """
        if self._corpus_digest is None:
            from .artifacts import file_digest

            self._corpus_digest = file_digest(self.path)
        return self._corpus_digest

    def describe(self) -> dict:
        reader = self.reader
        info = {"backend": "mapped", "format": reader.format}
        info.update({
            key: value for key, value in reader.meta.items()
            if key != "kind"
        })
        info["segments"] = reader.sizes()
        return info

    # Pickling ships the path only: the receiving process re-maps the
    # container, sharing physical pages instead of copying columns.

    def __getstate__(self) -> dict:
        return {"path": self.path}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["path"])
