"""Pluggable corpus-storage backends.

The analysis API (:class:`~repro.scanner.dataset.ScanDataset` and
everything in ``repro.core``) is deliberately separated from *where the
corpus lives*.  A :class:`DatasetBackend` is anything that can produce
the row scans and the certificate table; ``ScanDataset.from_backend``
materializes the analysis view on top.

Three backends ship:

* :class:`InMemoryBackend` — holds the corpus **columnar**
  (:class:`~repro.scanner.columns.ObservationColumns` plus per-scan
  metadata) and rehydrates row ``Scan`` objects on demand; this is what a
  freshly scanned corpus lives in;
* :class:`ArchiveBackend` — lazy view over one ``.rpz`` archive (any
  format); nothing is read until a load method is called, so cheap
  operations like :meth:`describe` never parse certificates;
* :class:`MappedBackend` — zero-copy view over a format 3 container:
  open is O(1), columns are ``memoryview``s over one shared ``mmap``,
  certificates parse lazily on first access, and pickling ships only
  the *path* — pool workers re-map the file and share physical pages
  through the OS page cache instead of each holding a private copy.
"""

from __future__ import annotations

import pathlib
from typing import (
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Union,
    runtime_checkable,
)

from ..obs import runtime as obs
from ..scanner.columns import ObservationColumns
from ..scanner.records import Scan
from ..tls.handshake import HandshakeRecord
from ..x509.certificate import Certificate
from .encoding import SegmentError, SegmentReader, unpack_fingerprints

__all__ = [
    "DatasetBackend",
    "InMemoryBackend",
    "ArchiveBackend",
    "MappedBackend",
    "LazyCertificates",
]

#: Byte length of the big-endian record length prefix inside
#: ``certificates.der`` (see :func:`repro.io.encoding.pack_der_record`).
_DER_PREFIX = 4


@runtime_checkable
class DatasetBackend(Protocol):
    """Anything that can supply a scan corpus to the analysis layer."""

    def load_scans(self) -> Sequence[Scan]:
        """The corpus' scans (row view), in (day, source) order."""
        ...

    def load_certificates(self) -> Mapping[bytes, Certificate]:
        """fingerprint → certificate for every certificate in the corpus."""
        ...

    def describe(self) -> dict:
        """Cheap corpus statistics (no full load required)."""
        ...


class InMemoryBackend:
    """Columnar in-memory corpus storage.

    Observations live in one :class:`ObservationColumns`; scans are kept
    only as (day, source, start, end) metadata over the contiguous
    per-scan column ranges and rehydrated to rows on request.
    """

    def __init__(
        self,
        columns: ObservationColumns,
        scan_meta: Sequence[tuple[int, str, int, int]],
        certificates: Mapping[bytes, Certificate],
    ) -> None:
        self.columns = columns
        #: (day, source, first observation position, one-past-last).
        self.scan_meta = list(scan_meta)
        self.certificates = dict(certificates)
        self._corpus_digest: Optional[str] = None

    @classmethod
    def from_scans(
        cls,
        scans: Sequence[Scan],
        certificates: Mapping[bytes, Certificate],
    ) -> "InMemoryBackend":
        """Columnarize a row corpus (scans must already be day-sorted)."""
        columns = ObservationColumns.from_scans(scans)
        meta: List[tuple[int, str, int, int]] = []
        position = 0
        for scan in scans:
            meta.append((scan.day, scan.source, position, position + len(scan)))
            position += len(scan)
        return cls(columns, meta, certificates)

    @classmethod
    def from_dataset(cls, dataset) -> "InMemoryBackend":
        """Columnarize an existing :class:`ScanDataset`.

        A dataset that already holds merged columns (the columnar
        generation path, or a cache hit) is adopted zero-copy instead of
        being re-interned from rows.
        """
        columns = getattr(dataset, "_columns", None)
        if columns is not None:
            meta: List[tuple[int, str, int, int]] = []
            position = 0
            for scan in dataset.scans:
                meta.append(
                    (scan.day, scan.source, position, position + len(scan))
                )
                position += len(scan)
            return cls(columns, meta, dataset.certificates)
        return cls.from_scans(dataset.scans, dataset.certificates)

    def load_scans(self) -> List[Scan]:
        return [
            Scan(
                day=day,
                source=source,
                observations=[
                    self.columns.observation_at(position)
                    for position in range(start, end)
                ],
            )
            for day, source, start, end in self.scan_meta
        ]

    def load_certificates(self) -> Dict[bytes, Certificate]:
        return dict(self.certificates)

    def corpus_digest(self) -> str:
        """Canonical content digest over the columnar corpus.

        Cheap (one hash pass over the already-interned columns) and
        equal to the canonical digest a backend-less
        :class:`~repro.scanner.dataset.ScanDataset` computes for the
        same corpus, so artifacts stored either way are shared.
        """
        if self._corpus_digest is None:
            from .artifacts import columns_digest

            self._corpus_digest = columns_digest(
                self.columns,
                [(day, source) for day, source, _, _ in self.scan_meta],
                self.certificates,
            )
        return self._corpus_digest

    def describe(self) -> dict:
        return {
            "backend": "memory",
            "n_scans": len(self.scan_meta),
            "n_certificates": len(self.certificates),
            "n_observations": len(self.columns),
        }


class ArchiveBackend:
    """Lazy corpus view over one ``.rpz`` archive (format v1 or v2)."""

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self._corpus_digest: Optional[str] = None

    def corpus_digest(self) -> str:
        """Streaming SHA-256 over the archive's bytes (nothing parsed)."""
        if self._corpus_digest is None:
            from .artifacts import file_digest

            self._corpus_digest = file_digest(self.path)
        return self._corpus_digest

    def load_scans(self) -> List[Scan]:
        from .store import read_scans

        return read_scans(self.path)

    def load_certificates(self) -> Dict[bytes, Certificate]:
        from .store import read_certificates

        return read_certificates(self.path)

    def describe(self) -> dict:
        from .store import read_manifest

        manifest = read_manifest(self.path)
        manifest.setdefault("backend", "archive")
        return manifest


class LazyCertificates(Mapping):
    """fingerprint → :class:`Certificate` over a mapped container.

    The key list is sliced from the 32-byte-stride ``cert_order``
    segment on first use; each certificate's DER parses on first
    ``[]`` access (O(1) via the parallel ``cert_offsets`` segment) and
    is cached.  Nothing is parsed at construction, which is what keeps
    a mapped corpus open O(1).
    """

    def __init__(self, reader: SegmentReader) -> None:
        self._reader = reader
        self._order: "Optional[list[bytes]]" = None
        self._ids: "Optional[dict[bytes, int]]" = None
        self._offsets = None
        self._cache: Dict[bytes, Certificate] = {}

    def fingerprints(self) -> "list[bytes]":
        """Every certificate fingerprint, in canonical stored order."""
        if self._order is None:
            self._order = unpack_fingerprints(
                self._reader.bytes("cert_order", materialize=True)
            )
        return self._order

    def __len__(self) -> int:
        return self._reader.meta["n_certificates"]

    def __iter__(self):
        return iter(self.fingerprints())

    def __contains__(self, fingerprint) -> bool:
        if self._ids is None:
            self._ids = {
                value: index
                for index, value in enumerate(self.fingerprints())
            }
        return fingerprint in self._ids

    def __getitem__(self, fingerprint: bytes) -> Certificate:
        certificate = self._cache.get(fingerprint)
        if certificate is None:
            if self._ids is None:
                self._ids = {
                    value: index
                    for index, value in enumerate(self.fingerprints())
                }
            index = self._ids[fingerprint]
            if self._offsets is None:
                self._offsets = self._reader.array("cert_offsets")
            blob = self._reader.raw("certificates.der")
            start = self._offsets[index] + _DER_PREFIX
            end = self._offsets[index + 1]
            der = bytes(blob[start:end])
            obs.inc("io.bytes_materialized", len(der))
            certificate = Certificate.from_der(der)
            self._cache[fingerprint] = certificate
        return certificate


class MappedBackend:
    """Zero-copy corpus view over one format 3 ``.rpz`` container.

    Opening reads the trailer + manifest only; the file is ``mmap``ed on
    first data access and every observation column is consumed in place
    as a little-endian ``memoryview`` over the map.  Pickling ships the
    path, not the data: a pool worker's unpickle re-maps the same file,
    so N workers share one physical copy through the page cache.
    """

    #: Marks this backend as path-shippable / memoryview-backed for
    #: :meth:`ScanDataset.from_backend` and dataset pickling.
    mapped = True

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self._reader: Optional[SegmentReader] = None
        self._columns: Optional[ObservationColumns] = None
        self._scan_meta: "Optional[list[tuple[int, str, int, int]]]" = None
        self._certificates: Optional[LazyCertificates] = None
        self._corpus_digest: Optional[str] = None

    @property
    def reader(self) -> SegmentReader:
        """The container reader (manifest parsed once, mapped lazily)."""
        if self._reader is None:
            reader = SegmentReader(self.path)
            if reader.meta.get("kind") != "corpus":
                raise SegmentError(
                    f"not a corpus container: {self.path} "
                    f"(kind={reader.meta.get('kind')!r})"
                )
            self._reader = reader
        return self._reader

    @property
    def columns(self) -> ObservationColumns:
        """The mapped columnar view (built once, columns page lazily)."""
        if self._columns is None:
            reader = self.reader
            self._columns = ObservationColumns.from_segments(
                reader.array("scan_idx"),
                reader.array("ip"),
                reader.array("cert_id"),
                reader.array("entity_id"),
                reader.array("handshake_id"),
                fp_blob=reader.bytes("fingerprints"),
                entities=reader.json("entities"),
                handshakes=[
                    HandshakeRecord(*row)
                    for row in reader.json("handshakes")
                ],
                source=reader,
            )
        return self._columns

    @property
    def scan_meta(self) -> "list[tuple[int, str, int, int]]":
        """(day, source, start, end) per scan, from the metadata segments."""
        if self._scan_meta is None:
            reader = self.reader
            days = reader.array("scan_days")
            sources = reader.json("scan_sources")
            bounds = reader.array("scan_bounds")
            self._scan_meta = [
                (days[index], sources[index],
                 bounds[index], bounds[index + 1])
                for index in range(len(sources))
            ]
        return self._scan_meta

    def load_scans(self) -> List[Scan]:
        from ..scanner.shards import scans_over_columns

        return scans_over_columns(self.columns, self.scan_meta)

    def load_certificates(self) -> LazyCertificates:
        if self._certificates is None:
            self._certificates = LazyCertificates(self.reader)
        return self._certificates

    def corpus_digest(self) -> str:
        """Streaming SHA-256 over the container's bytes (nothing parsed).

        Equal to the digest :class:`~repro.io.store.StreamingDatasetWriter`
        computed while writing the file, so artifacts cached against a
        streamed write are found again on a mapped open.  Reads the file
        through ordinary buffered I/O — no column segment is mapped or
        materialized (``io.bytes_materialized`` stays 0), which keeps
        ``repro info`` and lineage lookups O(file bytes) with zero
        decode work.
        """
        if self._corpus_digest is None:
            from .artifacts import file_digest

            self._corpus_digest = file_digest(self.path)
        return self._corpus_digest

    def describe(self) -> dict:
        reader = self.reader
        info = {"backend": "mapped", "format": reader.format}
        info.update({
            key: value for key, value in reader.meta.items()
            if key != "kind"
        })
        info["segments"] = reader.sizes()
        return info

    # Pickling ships the path only: the receiving process re-maps the
    # container, sharing physical pages instead of copying columns.

    def __getstate__(self) -> dict:
        return {"path": self.path}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["path"])
