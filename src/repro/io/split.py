"""Corpus sharding: split one format 3 ``.rpz`` into a serve fleet.

``split_corpus`` partitions a corpus into K self-contained shard
containers plus a ``fleet.json`` manifest, so K independent
``repro serve`` processes (fronted by :mod:`repro.serve.router`) answer
every query **byte-identically** to one server over the whole corpus.

The partition is *analysis-closed*, not naive round-robin.  Certificates
are first unioned into components that must never straddle a shard
boundary:

* certificates sharing a **public key** (any population — key-sharing
  census counts and §6.3 key groups are computed per key);
* certificates sharing a **linkable value of any pinned linking field**
  over the deduplicated invalid population (so each shard, re-running
  the §6.4.3 pipeline under the parent's pinned ``link_plan``, derives
  exactly the parent's groups restricted to its own certificates).

Each component is owned by the shard
``int.from_bytes(min_fingerprint[:8], "little") % K`` — the
"fingerprint-hash ownership" rule, a pure function of the corpus bytes,
so splitting the same corpus twice yields byte-identical shards.

Every shard is a complete, standalone corpus container (same segment
recipe as :class:`~repro.io.store.StreamingDatasetWriter`): the full
scan schedule, the observation rows of owned certificates in parent
row order, a rebuilt ``cert_hash`` index, and two fleet extras —

* a ``fleet`` meta block (parent digest, shard index, pinned
  ``link_plan``) that :meth:`repro.serve.engine.QueryEngine.open`
  recognizes;
* a ``fleet_cas.der`` segment carrying the parent's off-shard **CA**
  certificates, pooled into §4.2 chain building as extra
  intermediates — transvalid chains need issuers that may live on
  other shards, and with the full CA pool every shard-local verdict
  equals the parent's.

Emission is O(bytes): unchanged segments (entity/handshake tables, the
scan schedule) and every DER record are raw-copied as mapped ranges via
:meth:`SegmentWriter.add_raw`, never decoded and re-encoded.

An ``owners.rpo`` sidecar (a small segment container) maps every
fingerprint and SPKI to its owning shard through the same mmap'd
hash-probe machinery the corpus uses, so the router point-routes
lookups O(1) without holding a dict of the corpus in memory.
"""

from __future__ import annotations

import json
import pathlib
from array import array
from dataclasses import dataclass
from typing import Optional, Union

from ..obs import runtime as obs
from ..x509.certificate import Certificate
from .encoding import (
    FP_HASH_SEGMENT,
    SegmentReader,
    SegmentWriter,
    build_fingerprint_hash,
    fingerprint_hash_find,
    is_segment_container,
    iter_der_records,
    le_bytes,
    pack_fingerprints,
    unpack_fingerprints,
)

__all__ = [
    "FLEET_CAS_SEGMENT",
    "FLEET_MANIFEST_NAME",
    "OWNERS_NAME",
    "FleetManifest",
    "FleetOwners",
    "ShardInfo",
    "load_fleet_manifest",
    "read_shard_fleet",
    "shard_of_fingerprint",
    "split_corpus",
    "verify_fleet",
]

#: Shard-container segment holding the parent's off-shard CA DERs
#: (length-prefixed records, same framing as ``certificates.der``).
FLEET_CAS_SEGMENT = "fleet_cas.der"

#: The fleet manifest file written next to the shard containers.
FLEET_MANIFEST_NAME = "fleet.json"

#: The owner-routing sidecar container.
OWNERS_NAME = "owners.rpo"

#: Owner indexes are u8: more shards than this is a config error long
#: before it is an encoding problem.
MAX_SHARDS = 250


def shard_of_fingerprint(fingerprint: bytes, shards: int) -> int:
    """The hash-ownership rule: owner of a component representative."""
    return int.from_bytes(fingerprint[:8], "little") % shards


# ---------------------------------------------------------------------------
# The union-find closure
# ---------------------------------------------------------------------------

class _UnionFind:
    """Plain union-find over fingerprint keys, path-halving."""

    def __init__(self) -> None:
        self._parent: dict[bytes, bytes] = {}

    def find(self, key: bytes) -> bytes:
        parent = self._parent
        root = parent.setdefault(key, key)
        while root != parent[root]:
            parent[root] = parent[parent[root]]
            root = parent[root]
        while key != root:
            key, parent[key] = parent[key], root
        return root

    def union(self, left: bytes, right: bytes) -> None:
        root_left, root_right = self.find(left), self.find(right)
        if root_left != root_right:
            self._parent[root_right] = root_left


def _component_owners(
    dataset, link_plan, unique_invalid, shards: int
) -> dict[bytes, int]:
    """fingerprint → owning shard, over the analysis-closed components."""
    from ..core.linking import group_by_feature

    union = _UnionFind()
    order = list(dataset.certificates)
    by_spki: dict[bytes, bytes] = {}
    for fingerprint in order:
        spki = dataset.certificate(fingerprint).public_key.fingerprint
        anchor = by_spki.setdefault(spki, fingerprint)
        if anchor != fingerprint:
            union.union(anchor, fingerprint)
    population = list(unique_invalid)
    for feature in link_plan:
        for members in group_by_feature(
            dataset, population, feature
        ).values():
            for member in members[1:]:
                union.union(members[0], member)
    # Component representative = the member with the smallest
    # fingerprint: independent of union order, so ownership is a pure
    # function of the corpus.
    representative: dict[bytes, bytes] = {}
    for fingerprint in order:
        root = union.find(fingerprint)
        best = representative.get(root)
        if best is None or fingerprint < best:
            representative[root] = fingerprint
    return {
        fingerprint: shard_of_fingerprint(
            representative[union.find(fingerprint)], shards
        )
        for fingerprint in order
    }


# ---------------------------------------------------------------------------
# Manifest plumbing
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardInfo:
    """One shard container in a fleet manifest."""

    index: int
    path: pathlib.Path
    digest: str
    n_certificates: int
    n_observations: int


@dataclass(frozen=True)
class FleetManifest:
    """The parsed ``fleet.json``."""

    path: pathlib.Path
    shards: int
    parent_digest: str
    link_plan: tuple[str, ...]
    shard_infos: tuple[ShardInfo, ...]
    owners_path: pathlib.Path

    @property
    def directory(self) -> pathlib.Path:
        return self.path.parent


def load_fleet_manifest(
    path: Union[str, pathlib.Path]
) -> FleetManifest:
    """Parse a ``fleet.json`` (or the directory holding one)."""
    path = pathlib.Path(path)
    if path.is_dir():
        path = path / FLEET_MANIFEST_NAME
    payload = json.loads(path.read_text())
    if payload.get("kind") != "fleet":
        raise ValueError(f"not a fleet manifest: {path}")
    base = path.parent
    infos = tuple(
        ShardInfo(
            index=entry["shard"],
            path=base / entry["path"],
            digest=entry["digest"],
            n_certificates=entry["n_certificates"],
            n_observations=entry["n_observations"],
        )
        for entry in payload["shard_files"]
    )
    return FleetManifest(
        path=path,
        shards=payload["shards"],
        parent_digest=payload["parent_digest"],
        link_plan=tuple(payload["link_plan"]),
        shard_infos=infos,
        owners_path=base / payload["owners"],
    )


def verify_fleet(manifest: FleetManifest) -> None:
    """Check every shard container against its recorded digest.

    Raises ``ValueError`` on the first mismatch — a router must refuse
    to boot over a shard whose bytes are not the ones the split
    produced, or the byte-parity contract silently dies.
    """
    from .artifacts import file_digest

    for info in manifest.shard_infos:
        actual = file_digest(info.path)
        if actual != info.digest:
            raise ValueError(
                f"shard {info.index} digest mismatch: manifest records "
                f"{info.digest[:12]}…, {info.path.name} has {actual[:12]}…"
            )


def read_shard_fleet(
    corpus: Union[str, pathlib.Path, "object"]
) -> "tuple[Optional[dict], tuple[Certificate, ...]]":
    """A container's ``fleet`` meta and its pooled off-shard CA certs.

    ``(None, ())`` for anything that is not a shard container — the
    whole-corpus serve path costs one O(1) meta read.
    """
    if not isinstance(corpus, (str, pathlib.Path)):
        return None, ()
    if not is_segment_container(corpus):
        return None, ()
    reader = SegmentReader(corpus)
    try:
        fleet = reader.meta.get("fleet")
        if fleet is None:
            return None, ()
        extras = ()
        if FLEET_CAS_SEGMENT in reader:
            extras = tuple(
                Certificate.from_der(der)
                for der in iter_der_records(reader.raw(FLEET_CAS_SEGMENT))
            )
        return dict(fleet), extras
    finally:
        reader.close()


# ---------------------------------------------------------------------------
# The owner-routing sidecar
# ---------------------------------------------------------------------------

class FleetOwners:
    """Mapped fingerprint/SPKI → shard routing table.

    Unknown identifiers fall back to :func:`shard_of_fingerprint` —
    every shard serves the same 404 bytes for an unknown certificate or
    key, so any consistent choice preserves parity.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self._reader = SegmentReader(path)
        if self._reader.meta.get("kind") != "fleet-owners":
            raise ValueError(f"not a fleet owners sidecar: {path}")
        self.shards = int(self._reader.meta["shards"])
        self.parent_digest = self._reader.meta["parent_digest"]
        self._cert_blob = self._reader.raw("cert_order")
        self._cert_hash = self._reader.array(FP_HASH_SEGMENT)
        self._cert_owner = self._reader.raw("cert_owner")
        self._spki_blob = self._reader.raw("spki_order")
        self._spki_hash = self._reader.array("spki_hash")
        self._spki_owner = self._reader.raw("spki_owner")

    def close(self) -> None:
        # Release our view slices before the reader unmaps — an mmap
        # with live exported buffers refuses to close.
        for name in ("_cert_blob", "_cert_hash", "_cert_owner",
                     "_spki_blob", "_spki_hash", "_spki_owner"):
            view = getattr(self, name, None)
            if isinstance(view, memoryview):
                view.release()
            setattr(self, name, None)
        self._reader.close()

    def owner_of_cert(self, fingerprint: bytes) -> int:
        row = fingerprint_hash_find(
            self._cert_hash, self._cert_blob, fingerprint
        )
        if row is None:
            return shard_of_fingerprint(fingerprint, self.shards)
        return self._cert_owner[row]

    def owner_of_key(self, spki: bytes) -> int:
        row = fingerprint_hash_find(
            self._spki_hash, self._spki_blob, spki
        )
        if row is None:
            return shard_of_fingerprint(spki, self.shards)
        return self._spki_owner[row]


def _write_owners(
    path: pathlib.Path,
    parent_order: list[bytes],
    owners: dict[bytes, int],
    spki_of: dict[bytes, bytes],
    shards: int,
    parent_digest: str,
) -> str:
    """Emit the ``owners.rpo`` sidecar; returns its digest."""
    spki_owner: dict[bytes, int] = {}
    for fingerprint in parent_order:
        spki_owner.setdefault(spki_of[fingerprint], owners[fingerprint])
    spki_order = sorted(spki_owner)
    writer = SegmentWriter(path, meta={
        "kind": "fleet-owners",
        "shards": shards,
        "parent_digest": parent_digest,
    })
    try:
        writer.add_bytes(
            "cert_order", pack_fingerprints(parent_order), stride=32
        )
        writer.add_array(
            FP_HASH_SEGMENT, build_fingerprint_hash(parent_order)
        )
        writer.add_bytes(
            "cert_owner",
            bytes(owners[fingerprint] for fingerprint in parent_order),
        )
        writer.add_bytes(
            "spki_order", pack_fingerprints(spki_order), stride=32
        )
        writer.add_array("spki_hash", build_fingerprint_hash(spki_order))
        writer.add_bytes(
            "spki_owner", bytes(spki_owner[spki] for spki in spki_order)
        )
        return writer.close()
    except BaseException:
        writer.abort()
        raise


# ---------------------------------------------------------------------------
# The split
# ---------------------------------------------------------------------------

def _emit_shard(
    reader: SegmentReader,
    path: pathlib.Path,
    shard: int,
    shards: int,
    owners_by_id: bytes,
    parent_order: list[bytes],
    owners: dict[bytes, int],
    ca_fingerprints: set[bytes],
    parent_digest: str,
    link_plan: list[str],
) -> ShardInfo:
    """Write one shard container by raw-copying owned byte ranges."""
    observed = unpack_fingerprints(reader.raw("fingerprints"))
    shard_observed = [
        fingerprint for index, fingerprint in enumerate(observed)
        if owners_by_id[index] == shard
    ]
    # Parent-table id → shard-table id (first-appearance order is a
    # subsequence of the parent's, so enumeration preserves it).
    id_map = array("i", [-1]) * len(observed)
    new_id = 0
    for index in range(len(observed)):
        if owners_by_id[index] == shard:
            id_map[index] = new_id
            new_id += 1

    bounds = reader.array("scan_bounds")
    cert_id = reader.array("cert_id")
    ip = reader.array("ip")
    entity_id = reader.array("entity_id")
    handshake_id = reader.array("handshake_id")
    n_scans = len(bounds) - 1

    # Selected rows per scan, in parent row order.
    selected: list[array] = []
    for scan in range(n_scans):
        rows = array("Q")
        for row in range(bounds[scan], bounds[scan + 1]):
            if owners_by_id[cert_id[row]] == shard:
                rows.append(row)
        selected.append(rows)
    n_rows = sum(len(rows) for rows in selected)

    shard_order = [
        fingerprint for fingerprint in parent_order
        if owners[fingerprint] == shard
    ]
    parent_offsets = reader.array("cert_offsets")
    parent_der = reader.raw("certificates.der")
    order_row = {
        fingerprint: row for row, fingerprint in enumerate(parent_order)
    }

    writer = SegmentWriter(path, meta={
        "kind": "corpus",
        "n_scans": n_scans,
        "n_certificates": len(shard_order),
        "n_observations": n_rows,
        "fleet": {
            "parent_digest": parent_digest,
            "shard": shard,
            "shards": shards,
            "link_plan": list(link_plan),
        },
    })
    try:
        writer.add_raw(
            "scan_idx",
            (
                le_bytes(array("I", (scan,)) * len(rows))
                for scan, rows in enumerate(selected) if rows
            ),
            reader.entry("scan_idx"),
        )
        writer.add_raw(
            "ip",
            (
                le_bytes(array("I", (ip[row] for row in rows)))
                for rows in selected if rows
            ),
            reader.entry("ip"),
        )
        writer.add_raw(
            "cert_id",
            (
                le_bytes(array(
                    "I", (id_map[cert_id[row]] for row in rows)
                ))
                for rows in selected if rows
            ),
            reader.entry("cert_id"),
        )
        writer.add_raw(
            "entity_id",
            (
                le_bytes(array("I", (entity_id[row] for row in rows)))
                for rows in selected if rows
            ),
            reader.entry("entity_id"),
        )
        writer.add_raw(
            "handshake_id",
            (
                le_bytes(array("i", (handshake_id[row] for row in rows)))
                for rows in selected if rows
            ),
            reader.entry("handshake_id"),
        )
        writer.add_raw(
            "fingerprints",
            (pack_fingerprints(shard_observed),),
            reader.entry("fingerprints"),
        )
        # Entity/handshake ids stay parent-global: the tables raw-copy
        # whole, so the filtered id columns reference them unchanged.
        writer.add_raw(
            "entities", (reader.raw("entities"),),
            reader.entry("entities"),
        )
        writer.add_raw(
            "handshakes", (reader.raw("handshakes"),),
            reader.entry("handshakes"),
        )
        writer.add_raw(
            "scan_days", (reader.raw("scan_days"),),
            reader.entry("scan_days"),
        )
        writer.add_raw(
            "scan_sources", (reader.raw("scan_sources"),),
            reader.entry("scan_sources"),
        )
        shard_bounds = array("Q", (0,))
        for rows in selected:
            shard_bounds.append(shard_bounds[-1] + len(rows))
        writer.add_raw(
            "scan_bounds", (le_bytes(shard_bounds),),
            reader.entry("scan_bounds"),
        )
        writer.add_raw(
            "cert_order", (pack_fingerprints(shard_order),),
            reader.entry("cert_order"),
        )

        offsets = array("Q", (0,))

        def der_chunks():
            for fingerprint in shard_order:
                row = order_row[fingerprint]
                start, end = parent_offsets[row], parent_offsets[row + 1]
                offsets.append(offsets[-1] + (end - start))
                yield parent_der[start:end]

        writer.add_raw(
            "certificates.der", der_chunks(),
            reader.entry("certificates.der"),
        )
        writer.add_raw(
            "cert_offsets", (le_bytes(offsets),),
            reader.entry("cert_offsets"),
        )
        writer.add_array(
            FP_HASH_SEGMENT, build_fingerprint_hash(shard_order)
        )

        def ca_chunks():
            for fingerprint in parent_order:
                if owners[fingerprint] == shard:
                    continue
                if fingerprint not in ca_fingerprints:
                    continue
                row = order_row[fingerprint]
                yield parent_der[
                    parent_offsets[row]:parent_offsets[row + 1]
                ]

        writer.add_chunks(FLEET_CAS_SEGMENT, ca_chunks(), kind="bytes")
        digest = writer.close()
    except BaseException:
        writer.abort()
        raise
    return ShardInfo(
        index=shard,
        path=path,
        digest=digest,
        n_certificates=len(shard_order),
        n_observations=n_rows,
    )


def split_corpus(
    corpus: Union[str, pathlib.Path],
    environment: Union[str, pathlib.Path],
    out_dir: Union[str, pathlib.Path],
    shards: int,
    cache_dir: Optional[str] = None,
    workers: int = 1,
) -> FleetManifest:
    """Split a format 3 corpus into ``shards`` shard containers.

    Runs the parent's warm analysis once (validation → dedup →
    Table 6 → pipeline) to pin the linking plan and compute the
    analysis-closed partition, then emits each shard O(bytes) by
    raw-copying owned ranges.  Deterministic: splitting the same
    corpus twice yields identical shard digests.
    """
    from ..study import Study
    from . import load_dataset, load_environment
    from .artifacts import ArtifactCache, file_digest

    if not 1 <= shards <= MAX_SHARDS:
        raise ValueError(f"shard count must be 1..{MAX_SHARDS}: {shards}")
    corpus = pathlib.Path(corpus)
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    if not is_segment_container(corpus):
        raise ValueError(f"not a format 3 corpus container: {corpus}")

    with obs.span("split/analyze", shards=shards):
        dataset = load_dataset(corpus)
        loaded = load_environment(environment)
        study = Study(
            dataset=dataset,
            trust_store=loaded.trust_store,
            as_of=loaded.routing.origin_as,
            registry=loaded.registry,
            workers=workers,
            cache=ArtifactCache(cache_dir) if cache_dir else None,
        )
        pipeline = study.pipeline()
        link_plan = [feature.value for feature in pipeline.field_order]
        owners = _component_owners(
            dataset, pipeline.field_order, study.unique_invalid, shards
        )

    reader = SegmentReader(corpus)
    try:
        parent_digest = dataset.corpus_digest()
        parent_order = unpack_fingerprints(reader.raw("cert_order"))
        observed = unpack_fingerprints(reader.raw("fingerprints"))
        owners_by_id = bytes(
            owners[fingerprint] for fingerprint in observed
        )
        spki_of = {}
        ca_fingerprints = set()
        for fingerprint in parent_order:
            certificate = dataset.certificate(fingerprint)
            spki_of[fingerprint] = certificate.public_key.fingerprint
            if certificate.is_ca:
                ca_fingerprints.add(fingerprint)

        infos = []
        for shard in range(shards):
            with obs.span("split/emit", shard=shard):
                infos.append(_emit_shard(
                    reader,
                    out_dir / f"shard-{shard:02d}.rpz",
                    shard,
                    shards,
                    owners_by_id,
                    parent_order,
                    owners,
                    ca_fingerprints,
                    parent_digest,
                    link_plan,
                ))
    finally:
        reader.close()

    owners_path = out_dir / OWNERS_NAME
    _write_owners(
        owners_path, parent_order, owners, spki_of, shards, parent_digest
    )

    manifest_path = out_dir / FLEET_MANIFEST_NAME
    payload = {
        "kind": "fleet",
        "shards": shards,
        "parent_corpus": str(corpus),
        "parent_digest": parent_digest,
        "partition": "component-min-fingerprint mod shards",
        "link_plan": link_plan,
        "owners": OWNERS_NAME,
        "shard_files": [
            {
                "shard": info.index,
                "path": info.path.name,
                "digest": info.digest,
                "n_certificates": info.n_certificates,
                "n_observations": info.n_observations,
            }
            for info in infos
        ],
    }
    manifest_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    obs.inc("split.shards_written", shards)
    return load_fleet_manifest(manifest_path)
