"""Analysis-environment serialization.

A scan corpus alone is not analyzable: the paper's pipeline also needs the
root store (OS X 10.9.2 in the paper), the historic routing tables
(RouteViews), and the AS metadata (CAIDA classification/organizations).
:func:`save_environment` bundles these three inputs into one ``.rpe``
archive so a saved corpus + environment pair is fully self-contained —
:func:`load_environment` returns everything :class:`repro.study.Study`
needs.
"""

from __future__ import annotations

import json
import pathlib
import struct
import zipfile
from dataclasses import dataclass
from typing import Union

from ..net.asn import ASInfo, ASRegistry, ASType, OrgRecord
from ..net.bgp import PrefixTable, Route, RoutingHistory
from ..net.ip import Prefix
from ..x509.certificate import Certificate
from ..x509.truststore import TrustStore

__all__ = ["AnalysisEnvironment", "save_environment", "load_environment"]

_LENGTH = struct.Struct(">I")


@dataclass
class AnalysisEnvironment:
    """Everything the analysis pipeline needs besides the scans."""

    trust_store: TrustStore
    routing: RoutingHistory
    registry: ASRegistry

    @classmethod
    def of_world(cls, world) -> "AnalysisEnvironment":
        """Extract the environment from a simulated world."""
        return cls(
            trust_store=world.trust_store,
            routing=world.routing,
            registry=world.registry,
        )


def save_environment(
    environment: AnalysisEnvironment, path: Union[str, pathlib.Path]
) -> None:
    """Write the environment to one ``.rpe`` archive (overwrites)."""
    roots = bytearray()
    for root in sorted(environment.trust_store, key=lambda c: c.fingerprint):
        der = root.to_der()
        roots += _LENGTH.pack(len(der))
        roots += der

    snapshots = []
    for day in environment.routing.snapshot_days():
        table = environment.routing.table_at(day)
        snapshots.append(
            {
                "day": day,
                "routes": [
                    [route.prefix.network, route.prefix.length, route.asn]
                    for route in table.routes()
                ],
            }
        )

    ases = []
    for info in environment.registry:
        ases.append(
            {
                "asn": info.asn,
                "name": info.name,
                "type": info.as_type.name,
                "orgs": [
                    [record.valid_from, record.org_name, record.country]
                    for record in info.org_history
                ],
            }
        )

    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as archive:
        archive.writestr("roots.der", bytes(roots))
        archive.writestr("routing.json", json.dumps({"snapshots": snapshots}))
        archive.writestr("asinfo.json", json.dumps({"ases": ases}))


def load_environment(path: Union[str, pathlib.Path]) -> AnalysisEnvironment:
    """Load an environment written by :func:`save_environment`."""
    with zipfile.ZipFile(path) as archive:
        roots_blob = archive.read("roots.der")
        routing_doc = json.loads(archive.read("routing.json"))
        as_doc = json.loads(archive.read("asinfo.json"))

    store = TrustStore()
    offset = 0
    while offset < len(roots_blob):
        (length,) = _LENGTH.unpack_from(roots_blob, offset)
        offset += _LENGTH.size
        store.add(Certificate.from_der(roots_blob[offset:offset + length]))
        offset += length

    snapshots = []
    for snapshot in routing_doc["snapshots"]:
        table = PrefixTable(
            Route(Prefix(network, length), asn)
            for network, length, asn in snapshot["routes"]
        )
        snapshots.append((snapshot["day"], table))
    routing = RoutingHistory(snapshots)

    registry = ASRegistry()
    for entry in as_doc["ases"]:
        registry.add(
            ASInfo(
                asn=entry["asn"],
                name=entry["name"],
                as_type=ASType[entry["type"]],
                org_history=[
                    OrgRecord(day, org, country)
                    for day, org, country in entry["orgs"]
                ],
            )
        )
    return AnalysisEnvironment(
        trust_store=store, routing=routing, registry=registry
    )
