"""Format 3: the shared segment-container encoding.

One fixed little-endian layout backs both ``.rpz`` corpora and ``.rpa``
artifact bundles (and consolidates the byte-packing helpers that
``store.py``, ``artifacts.py``, and ``scanner/shards.py`` each used to
carry privately):

* an 8-byte magic header;
* a sequence of **segments**, each padded so its payload starts on a
  16-byte boundary — every fixed-stride segment can therefore be viewed
  in place as an aligned ``memoryview`` cast over an ``mmap`` of the
  file, with zero copies on little-endian hosts;
* a JSON **manifest** describing the segments (name, kind, offset,
  length, and for arrays the typecode);
* a fixed 24-byte **trailer** holding the manifest's offset and length
  plus an end magic.

The trailer-last layout (the zip-central-directory trick) is what makes
both halves of the design work: a writer can stream segments of unknown
length straight to disk and only then write the manifest, while a reader
needs exactly one ``seek`` to the trailer plus one small read to know
everything about the file — opening is O(1) in the corpus size, and the
column bytes page in lazily through the OS page cache when (and only
when) a query touches them.

Segment kinds:

* ``array``  — a homogeneous little-endian integer column (``typecode``
  as in :mod:`array`); read back zero-copy as a ``memoryview`` cast;
* ``bytes``  — an opaque blob, optionally with a fixed ``stride`` (e.g.
  32-byte certificate fingerprints); read back as a ``memoryview``;
* ``json``   — a small JSON payload (tables, metadata);
* ``pickle`` — an irregular payload that does not round-trip through
  JSON (feature-matrix value tables, trust-root DER maps).

Writers hash every byte as it is written (salted exactly like
:func:`repro.io.artifacts.file_digest`), so the digest of a streamed
write equals the digest a later reader derives from the file.

Observability: every ``mmap`` of a container bumps
``io.mmap_open_total``; every materialization of mapped bytes into
process-local objects (arrays, fingerprint lists, JSON/pickle payloads)
adds the byte count to ``io.bytes_materialized``.  A mapped open that
answers a query without reading the whole file shows a
``bytes_materialized`` far below the file size — the CI mmap smoke
asserts exactly that.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import pathlib
import pickle
import struct
import sys
from array import array
from typing import IO, Iterable, Optional, Sequence, Union

from ..obs import runtime as obs

__all__ = [
    "CONTAINER_MAGIC",
    "DIGEST_META",
    "DIGEST_SCAN",
    "FP_HASH_SEGMENT",
    "FP_LEN",
    "SegmentError",
    "SegmentReader",
    "SegmentWriter",
    "as_array",
    "build_fingerprint_hash",
    "fingerprint_hash_find",
    "is_segment_container",
    "iter_der_records",
    "le_bytes",
    "le_view",
    "pack_der_record",
    "pack_fingerprints",
    "pack_sort_key",
    "read_container_meta",
    "typecode_of",
    "unpack_array",
    "unpack_fingerprints",
]

#: First 8 bytes of every segment container.
CONTAINER_MAGIC = b"RPSEG03\n"

#: Last 8 bytes of the trailer.
_END_MAGIC = b"RPSEND3\n"

#: (manifest offset, manifest length, end magic).
_TRAILER = struct.Struct("<QQ8s")

#: Segment payloads start on this boundary, so any sane typecode's
#: memoryview cast over the mapped file is aligned.
_ALIGN = 16

#: Salt matching :func:`repro.io.artifacts.file_digest`: the digest a
#: streaming write computes incrementally equals the digest a reader
#: re-derives from the file bytes.
_DIGEST_SALT = b"repro-archive/1\n"

#: Writer slice size for large buffers (see ``SegmentWriter._write``).
_WRITE_CHUNK = 1 << 20

#: SHA-256 fingerprints are always 32 bytes; fingerprint sequences
#: serialize as one flat blob sliced on decode.
FP_LEN = 32

#: 4-byte big-endian length prefix of the standalone-parseable DER
#: records inside ``certificates.der`` (unchanged from format 1/2, so
#: the blob stays readable without this library).
_DER_LENGTH = struct.Struct(">I")

#: Big-endian u32 — the (ip, fingerprint) shard sort key prefix.
_BE_U32 = struct.Struct(">I")

#: Little-endian (n_scans, n_certificates) header of the in-memory
#: corpus digest (:func:`repro.io.artifacts.columns_digest`).
DIGEST_META = struct.Struct("<II")

#: Little-endian (day, source length) per-scan line of the same digest.
DIGEST_SCAN = struct.Struct("<iI")


class SegmentError(ValueError):
    """A container failed structural validation."""


# ---------------------------------------------------------------------------
# Little-endian packing helpers (the consolidated former triplicates)
# ---------------------------------------------------------------------------

def typecode_of(column) -> str:
    """The :mod:`array` typecode of an array or a cast memoryview."""
    code = getattr(column, "typecode", None)
    if code is not None:
        return code
    return column.format


def le_bytes(column) -> bytes:
    """A column's raw bytes, little-endian regardless of the host.

    Accepts ``array``, ``memoryview`` (as produced by a mapped read),
    ``bytes``, or any int sequence (converted through ``array('I')``
    semantics is the caller's job — sequences must already be arrays).
    """
    if isinstance(column, (bytes, bytearray)):
        return bytes(column)
    if isinstance(column, memoryview):
        # Mapped views are stored little-endian already.
        return column.tobytes()
    if sys.byteorder == "little":
        return column.tobytes()
    swapped = array(column.typecode, column)
    swapped.byteswap()
    return swapped.tobytes()


def le_view(column):
    """Zero-copy little-endian view for hashing (copies only on BE hosts)."""
    if isinstance(column, (bytes, bytearray, memoryview)):
        return column
    if sys.byteorder == "little":
        return memoryview(column)
    return le_bytes(column)


def unpack_array(typecode: str, blob) -> array:
    """Rebuild a host-order array from little-endian bytes."""
    column = array(typecode)
    column.frombytes(blob)
    if sys.byteorder != "little":
        column.byteswap()
    return column


def as_array(column) -> array:
    """Materialize a (possibly mapped) column into a process-local array.

    A plain ``array`` passes through untouched; a ``memoryview`` is
    copied out (bumping ``io.bytes_materialized``).  Mapped views are
    little-endian by construction, so the copy is a straight
    ``frombytes`` on LE hosts and a byteswap on BE ones.
    """
    if isinstance(column, array):
        return column
    materialized = unpack_array(typecode_of(column), column.cast("B"))
    obs.inc("io.bytes_materialized", column.nbytes)
    return materialized


def pack_fingerprints(fingerprints: Sequence[bytes]) -> bytes:
    """A fingerprint sequence as one flat 32-byte-stride blob."""
    blob = b"".join(fingerprints)
    if len(blob) != FP_LEN * len(fingerprints):
        raise ValueError("non-canonical fingerprint length")
    return blob


def unpack_fingerprints(blob) -> list[bytes]:
    """Slice a flat fingerprint blob back into 32-byte values."""
    if len(blob) % FP_LEN:
        raise ValueError("fingerprint blob not a digest-size multiple")
    blob = bytes(blob)
    return [blob[base:base + FP_LEN] for base in range(0, len(blob), FP_LEN)]


def pack_der_record(der: bytes) -> bytes:
    """One standalone-parseable certificate record (BE length + DER)."""
    return _DER_LENGTH.pack(len(der)) + der


def iter_der_records(blob) -> Iterable[bytes]:
    """Yield the DER payloads of a length-prefixed certificate blob."""
    view = memoryview(blob)
    offset = 0
    while offset < len(view):
        (length,) = _DER_LENGTH.unpack_from(view, offset)
        offset += _DER_LENGTH.size
        yield bytes(view[offset:offset + length])
        offset += length


def pack_sort_key(ip: int, fingerprint: bytes) -> bytes:
    """The canonical (big-endian ip, fingerprint) shard sort key."""
    return _BE_U32.pack(ip) + fingerprint


# ---------------------------------------------------------------------------
# Fingerprint hash-index segment (O(1) fingerprint → row over the map)
# ---------------------------------------------------------------------------

#: Segment name of the persisted fingerprint → ``cert_order`` row index.
FP_HASH_SEGMENT = "cert_hash"

#: Minimum slot count of a hash-index table (keeps the mask math valid
#: for empty and near-empty corpora).
_FP_HASH_MIN_SLOTS = 8


def _fp_hash_slots(count: int) -> int:
    """Slot count for ``count`` fingerprints: power of two, load ≤ 0.5."""
    slots = _FP_HASH_MIN_SLOTS
    while slots < 2 * count:
        slots <<= 1
    return slots


def build_fingerprint_hash(fingerprints: Sequence[bytes]) -> array:
    """The persisted fingerprint hash index as a little-endian u32 table.

    An open-addressing table over ``cert_order``: each slot holds
    ``row + 1`` (0 marks an empty slot), the home slot is the first
    8 bytes of the fingerprint (SHA-256 output is already uniform) masked
    to the power-of-two table size, and collisions probe linearly.  Rows
    insert in order, so the table is a pure function of the fingerprint
    sequence — a delta-append that replays the same grown order emits a
    byte-identical segment to a from-scratch build, preserving the
    append-path-invariant container digest.
    """
    slots = _fp_hash_slots(len(fingerprints))
    mask = slots - 1
    table = array("I", bytes(4 * slots))
    for row, fingerprint in enumerate(fingerprints):
        slot = int.from_bytes(fingerprint[:8], "little") & mask
        while table[slot]:
            slot = (slot + 1) & mask
        table[slot] = row + 1
    return table


def fingerprint_hash_find(table, fp_blob, fingerprint: bytes):
    """Probe a hash-index table for a fingerprint's ``cert_order`` row.

    ``table`` is the (mapped) u32 slot table, ``fp_blob`` the raw
    32-byte-stride ``cert_order`` bytes; returns the row, or ``None``
    when the fingerprint is not in the corpus.  O(1) expected — each
    probe pages in only the one 32-byte fingerprint it compares against.
    """
    mask = len(table) - 1
    slot = int.from_bytes(fingerprint[:8], "little") & mask
    while True:
        stored = table[slot]
        if not stored:
            return None
        row = stored - 1
        base = row * FP_LEN
        if fp_blob[base:base + FP_LEN] == fingerprint:
            return row
        slot = (slot + 1) & mask


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------

class SegmentWriter:
    """Streaming container writer: segments in, file + digest out.

    Segments are written in call order, each padded to the 16-byte
    alignment boundary; :meth:`close` appends the manifest and trailer
    and returns the container's digest (equal to
    :func:`~repro.io.artifacts.file_digest` over the finished file).
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        meta: Optional[dict] = None,
        format: int = 3,
    ) -> None:
        self.path = pathlib.Path(path)
        self.meta = dict(meta or {})
        self.format = format
        self._raw: Optional[IO[bytes]] = open(self.path, "wb")
        self._digest = hashlib.sha256(_DIGEST_SALT)
        self._position = 0
        self._segments: list[dict] = []
        self._names: set[str] = set()
        self._write(CONTAINER_MAGIC)

    # --- low-level -------------------------------------------------------------

    def _write(self, data) -> None:
        # Large buffers (the delta-append path raw-copies whole base
        # segments as single memoryviews) go out in 1 MiB slices: same
        # bytes and digest, measurably better filesystem throughput
        # than one giant write.
        size = len(data)
        if size > _WRITE_CHUNK:
            view = memoryview(data)
            for offset in range(0, size, _WRITE_CHUNK):
                piece = view[offset:offset + _WRITE_CHUNK]
                self._digest.update(piece)
                self._raw.write(piece)
        else:
            self._digest.update(data)
            self._raw.write(data)
        self._position += size

    def _align(self) -> None:
        pad = -self._position % _ALIGN
        if pad:
            self._write(b"\x00" * pad)

    def _begin(self, name: str, kind: str, **extra) -> dict:
        if self._raw is None:
            raise SegmentError("writer already closed")
        if name in self._names:
            raise SegmentError(f"duplicate segment {name!r}")
        self._names.add(name)
        self._align()
        entry = {"name": name, "kind": kind, "offset": self._position,
                 "length": 0}
        entry.update({key: value for key, value in extra.items()
                      if value is not None})
        self._segments.append(entry)
        return entry

    # --- segment feeders -------------------------------------------------------

    def add_chunks(
        self, name: str, chunks: Iterable, kind: str = "bytes", **extra
    ) -> None:
        """Stream one segment from an iterable of byte chunks."""
        entry = self._begin(name, kind, **extra)
        start = self._position
        for chunk in chunks:
            self._write(chunk)
        entry["length"] = self._position - start

    def add_bytes(self, name: str, data, stride: Optional[int] = None) -> None:
        self.add_chunks(name, (le_view(data),), kind="bytes", stride=stride)

    def add_array(self, name: str, column) -> None:
        self.add_chunks(
            name, (le_view(le_bytes(column)),), kind="array",
            typecode=typecode_of(column),
        )

    def add_json(self, name: str, payload) -> None:
        encoded = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        self.add_chunks(name, (encoded,), kind="json")

    def add_pickle(self, name: str, payload) -> None:
        encoded = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self.add_chunks(name, (encoded,), kind="pickle")

    def add_raw(self, name: str, chunks: Iterable, entry: dict) -> None:
        """Raw-copy one segment under another container's manifest entry.

        ``entry`` is a :meth:`SegmentReader.entry` dict; its kind and
        extra keys (typecode, stride) carry over verbatim while offset
        and length are re-derived from the bytes actually written —
        ``chunks`` may be the source segment whole, or any re-sliced
        subset of it (the corpus splitter copies per-certificate DER
        ranges this way without decoding them).
        """
        extra = {
            key: value for key, value in entry.items()
            if key not in ("name", "kind", "offset", "length")
        }
        self.add_chunks(name, chunks, kind=entry["kind"], **extra)

    def add_stream(
        self, name: str, handle: IO[bytes], kind: str = "bytes",
        chunk_size: int = 1 << 20, **extra,
    ) -> None:
        """Stream one segment from an open binary file (e.g. a spool)."""
        def chunks():
            while True:
                chunk = handle.read(chunk_size)
                if not chunk:
                    return
                yield chunk
        self.add_chunks(name, chunks(), kind=kind, **extra)

    # --- finishing -------------------------------------------------------------

    def close(self) -> str:
        """Write manifest + trailer; return the container digest."""
        if self._raw is None:
            raise SegmentError("writer already closed")
        self._align()
        manifest = {
            "format": self.format,
            "meta": self.meta,
            "segments": self._segments,
        }
        encoded = json.dumps(manifest, separators=(",", ":"),
                             sort_keys=True).encode("utf-8")
        manifest_offset = self._position
        self._write(encoded)
        self._write(_TRAILER.pack(manifest_offset, len(encoded), _END_MAGIC))
        self._raw.close()
        self._raw = None
        return self._digest.hexdigest()

    def abort(self) -> None:
        """Close and remove a partially written container."""
        if self._raw is not None:
            self._raw.close()
            self._raw = None
        self.path.unlink(missing_ok=True)


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------

def is_segment_container(path: Union[str, pathlib.Path]) -> bool:
    """True when the file starts with the format 3 container magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(CONTAINER_MAGIC)) == CONTAINER_MAGIC
    except OSError:
        return False


class SegmentReader:
    """Mapped container reader.

    Construction reads the trailer and manifest only — O(1) in the file
    size, no ``mmap`` yet.  The file is mapped on the first data access
    (bumping ``io.mmap_open_total``); ``array``/``bytes`` reads return
    zero-copy ``memoryview``s over the map on little-endian hosts, so
    column bytes page in lazily as queries touch them.

    :attr:`bytes_materialized` counts this reader's own decoded bytes
    (the per-reader slice of the global ``io.bytes_materialized``
    counter), so the live plane's :class:`~repro.obs.resources
    .ResourceSampler` can attribute paging per watched container.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self._mmap: Optional[mmap.mmap] = None
        self._view: Optional[memoryview] = None
        #: Bytes this reader has decoded out of the map (copies only —
        #: zero-copy ``memoryview`` reads stay at zero, by design).
        self.bytes_materialized = 0
        with open(self.path, "rb") as handle:
            head = handle.read(len(CONTAINER_MAGIC))
            if head != CONTAINER_MAGIC:
                raise SegmentError(f"not a segment container: {self.path}")
            handle.seek(0, 2)
            size = handle.tell()
            if size < len(CONTAINER_MAGIC) + _TRAILER.size:
                raise SegmentError("container truncated: no trailer")
            handle.seek(size - _TRAILER.size)
            offset, length, end = _TRAILER.unpack(handle.read(_TRAILER.size))
            if end != _END_MAGIC:
                raise SegmentError("container truncated: bad end magic")
            if offset + length + _TRAILER.size != size:
                raise SegmentError("container corrupt: trailer bounds")
            handle.seek(offset)
            try:
                manifest = json.loads(handle.read(length))
            except ValueError as error:
                raise SegmentError(f"container manifest is not valid JSON "
                                   f"({error})")
        if not isinstance(manifest, dict) \
                or not isinstance(manifest.get("segments"), list):
            raise SegmentError("container manifest malformed")
        self.format = manifest.get("format")
        self.meta: dict = manifest.get("meta") or {}
        self._size = size
        self._segments = {
            entry["name"]: entry for entry in manifest["segments"]
        }
        for entry in self._segments.values():
            if entry["offset"] + entry["length"] > size - _TRAILER.size:
                raise SegmentError(
                    f"container corrupt: segment {entry['name']!r} "
                    f"out of bounds"
                )

    # --- mapping ---------------------------------------------------------------

    def _map(self) -> memoryview:
        if self._view is None:
            with open(self.path, "rb") as handle:
                self._mmap = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
            self._view = memoryview(self._mmap)
            obs.inc("io.mmap_open_total")
        return self._view

    def close(self) -> None:
        if self._view is not None:
            self._view.release()
            self._view = None
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None

    # --- introspection ---------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._segments

    def names(self) -> list[str]:
        return list(self._segments)

    def entry(self, name: str) -> dict:
        try:
            return self._segments[name]
        except KeyError:
            raise SegmentError(f"container has no segment {name!r}")

    def sizes(self) -> dict[str, int]:
        """name → payload byte length, straight from the manifest."""
        return {name: entry["length"]
                for name, entry in self._segments.items()}

    @property
    def file_size(self) -> int:
        return self._size

    # --- data access -----------------------------------------------------------

    def _materialized(self, nbytes: int) -> None:
        """Count decoded bytes, globally and against this reader."""
        self.bytes_materialized += nbytes
        obs.inc("io.bytes_materialized", nbytes)

    def raw(self, name: str) -> memoryview:
        """The segment's raw mapped bytes (zero-copy)."""
        entry = self.entry(name)
        view = self._map()
        return view[entry["offset"]:entry["offset"] + entry["length"]]

    def array(self, name: str):
        """An array segment, zero-copy where the host allows.

        Little-endian hosts get a ``memoryview`` cast over the map
        (lazy paging, no copy); big-endian hosts materialize a swapped
        ``array`` (counted in ``io.bytes_materialized``).
        """
        entry = self.entry(name)
        if entry["kind"] != "array":
            raise SegmentError(f"segment {name!r} is not an array")
        raw = self.raw(name)
        if sys.byteorder == "little":
            return raw.cast(entry["typecode"])
        column = unpack_array(entry["typecode"], raw)
        self._materialized(entry["length"])
        return column

    def bytes(self, name: str, materialize: bool = False):
        """A bytes segment: mapped view, or a real ``bytes`` copy."""
        raw = self.raw(name)
        if not materialize:
            return raw
        self._materialized(len(raw))
        return bytes(raw)

    def json(self, name: str):
        entry = self.entry(name)
        if entry["kind"] != "json":
            raise SegmentError(f"segment {name!r} is not JSON")
        raw = self.raw(name)
        self._materialized(len(raw))
        return json.loads(bytes(raw))

    def pickle(self, name: str):
        entry = self.entry(name)
        if entry["kind"] != "pickle":
            raise SegmentError(f"segment {name!r} is not a pickle")
        raw = self.raw(name)
        self._materialized(len(raw))
        return pickle.loads(raw)


def read_container_meta(path: Union[str, pathlib.Path]) -> dict:
    """A container's format + meta + per-segment sizes, O(1) in file size."""
    reader = SegmentReader(path)
    return {
        "format": reader.format,
        "meta": dict(reader.meta),
        "segments": reader.sizes(),
    }
