"""Scan-corpus serialization.

The paper published its code and data (securepki.org); this module is the
equivalent facility: a :class:`~repro.scanner.dataset.ScanDataset` round-
trips through a single ``.rpz`` file (a ZIP archive).

**Format v2 (written)** is columnar and streamed — no member is ever
materialized as one giant string in memory:

* ``manifest.json`` — format version and corpus statistics;
* ``certificates.der`` — every unique certificate as length-prefixed DER
  (parseable without this library: each record is a 4-byte big-endian
  length followed by a standard X.509 DER blob), in certificate-id order;
* ``entities.json`` / ``handshakes.json`` — the interning tables for
  ground-truth tags (id 0 is the empty tag) and handshake records;
* ``scans.jsonl`` — one JSON object per scan holding **parallel columns**
  (``ip``, ``cert``, ``entity``, ``hs``) of equal length, observations
  referencing the tables above by id (``hs`` -1 means no handshake).

**Format v1** (row-oriented ``scans.jsonl``, certificates sorted by
fingerprint) is still loaded transparently.

DER is the ground-truth encoding: loading re-parses every certificate
through :meth:`Certificate.from_der`, so a stored corpus exercises exactly
the same parse path a real scan corpus would.
"""

from __future__ import annotations

import json
import pathlib
import struct
import zipfile
from typing import Union

from ..scanner.dataset import ScanDataset
from ..scanner.records import Observation, Scan
from ..tls.handshake import HandshakeRecord
from ..x509.certificate import Certificate

__all__ = [
    "save_dataset",
    "load_dataset",
    "read_manifest",
    "read_certificates",
    "read_scans",
    "FORMAT_VERSION",
]

FORMAT_VERSION = 2

#: Formats :func:`load_dataset` understands.
SUPPORTED_FORMATS = (1, 2)

_LENGTH = struct.Struct(">I")


# ---------------------------------------------------------------------------
# Writing (always format v2)
# ---------------------------------------------------------------------------

def _certificate_order(dataset: ScanDataset) -> list[bytes]:
    """Certificate-id order: observed first-appearance, then unobserved."""
    observed = list(dataset.columns.fingerprints)
    extra = sorted(set(dataset.certificates) - set(observed))
    return observed + extra


def save_dataset(dataset: ScanDataset, path: Union[str, pathlib.Path]) -> None:
    """Write the corpus to one ``.rpz`` archive (overwrites).

    Certificates and scan columns are streamed member-by-member and
    record-by-record into the archive, so peak memory stays O(one scan),
    not O(corpus).
    """
    columns = dataset.columns
    order = _certificate_order(dataset)
    manifest = {
        "format": FORMAT_VERSION,
        "n_scans": len(dataset.scans),
        "n_certificates": len(dataset.certificates),
        "n_observations": dataset.n_observations,
    }
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as archive:
        archive.writestr("manifest.json", json.dumps(manifest, indent=2))
        with archive.open("certificates.der", "w") as member:
            for fingerprint in order:
                der = dataset.certificates[fingerprint].to_der()
                member.write(_LENGTH.pack(len(der)))
                member.write(der)
        archive.writestr(
            "entities.json", json.dumps(columns.entities, separators=(",", ":"))
        )
        archive.writestr(
            "handshakes.json",
            json.dumps(
                [list(record) for record in columns.handshakes],
                separators=(",", ":"),
            ),
        )
        with archive.open("scans.jsonl", "w") as member:
            position = 0
            for scan in dataset.scans:
                end = position + len(scan)
                row = {
                    "day": scan.day,
                    "source": scan.source,
                    "ip": columns.ip[position:end].tolist(),
                    "cert": columns.cert_id[position:end].tolist(),
                    "entity": columns.entity_id[position:end].tolist(),
                    "hs": columns.handshake_id[position:end].tolist(),
                }
                member.write(json.dumps(row, separators=(",", ":")).encode("utf-8"))
                member.write(b"\n")
                position = end


# ---------------------------------------------------------------------------
# Reading (v1 and v2)
# ---------------------------------------------------------------------------

def _read_manifest(archive: zipfile.ZipFile) -> dict:
    try:
        manifest = json.loads(archive.read("manifest.json"))
    except ValueError as error:
        raise ValueError(f"corpus corrupt: manifest is not valid JSON ({error})")
    if not isinstance(manifest, dict):
        raise ValueError("corpus corrupt: manifest is not a JSON object")
    if manifest.get("format") not in SUPPORTED_FORMATS:
        raise ValueError(f"unsupported corpus format {manifest.get('format')!r}")
    return manifest


def _unpack_certificates(blob: bytes) -> list[Certificate]:
    certificates = []
    offset = 0
    while offset < len(blob):
        (length,) = _LENGTH.unpack_from(blob, offset)
        offset += _LENGTH.size
        certificates.append(Certificate.from_der(blob[offset:offset + length]))
        offset += length
    return certificates


def _read_scans_v1(archive: zipfile.ZipFile, by_index: list[Certificate]) -> list[Scan]:
    scan_lines = archive.read("scans.jsonl").decode("utf-8").splitlines()
    scans = []
    for line in scan_lines:
        record = json.loads(line)
        observations = []
        for ip, cert_idx, entity, handshake in record["observations"]:
            observations.append(
                Observation(
                    ip=ip,
                    fingerprint=by_index[cert_idx].fingerprint,
                    entity=entity,
                    handshake=(
                        HandshakeRecord(*handshake) if handshake is not None else None
                    ),
                )
            )
        scans.append(
            Scan(day=record["day"], source=record["source"], observations=observations)
        )
    return scans


def _read_scans_v2(archive: zipfile.ZipFile, by_index: list[Certificate]) -> list[Scan]:
    entities = json.loads(archive.read("entities.json"))
    handshakes = [
        HandshakeRecord(*record)
        for record in json.loads(archive.read("handshakes.json"))
    ]
    scans = []
    with archive.open("scans.jsonl") as member:
        for line in member:
            if not line.strip():
                continue
            record = json.loads(line)
            observations = [
                Observation(
                    ip=ip,
                    fingerprint=by_index[cert_idx].fingerprint,
                    entity=entities[entity_id],
                    handshake=(handshakes[hs_id] if hs_id >= 0 else None),
                )
                for ip, cert_idx, entity_id, hs_id in zip(
                    record["ip"], record["cert"], record["entity"], record["hs"]
                )
            ]
            scans.append(
                Scan(
                    day=record["day"],
                    source=record["source"],
                    observations=observations,
                )
            )
    return scans


def load_dataset(path: Union[str, pathlib.Path]) -> ScanDataset:
    """Load a corpus written by :func:`save_dataset` (format v1 or v2)."""
    with zipfile.ZipFile(path) as archive:
        manifest = _read_manifest(archive)
        certificates = _unpack_certificates(archive.read("certificates.der"))
        if manifest["format"] == 1:
            scans = _read_scans_v1(archive, certificates)
        else:
            scans = _read_scans_v2(archive, certificates)
    from .backends import ArchiveBackend

    dataset = ScanDataset(
        scans,
        {cert.fingerprint: cert for cert in certificates},
        backend=ArchiveBackend(path),
    )
    if len(dataset.certificates) != manifest["n_certificates"]:
        raise ValueError("corpus corrupt: certificate count mismatch")
    return dataset


# --- piecemeal readers (the ArchiveBackend protocol surface) -------------------

def read_manifest(path: Union[str, pathlib.Path]) -> dict:
    """Parse and sanity-check an archive's manifest without loading it."""
    with zipfile.ZipFile(path) as archive:
        return _read_manifest(archive)


def read_certificates(path: Union[str, pathlib.Path]) -> dict[bytes, Certificate]:
    """fingerprint → certificate for every certificate in the archive."""
    with zipfile.ZipFile(path) as archive:
        _read_manifest(archive)
        certificates = _unpack_certificates(archive.read("certificates.der"))
    return {cert.fingerprint: cert for cert in certificates}


def read_scans(path: Union[str, pathlib.Path]) -> list[Scan]:
    """The archive's scans (row view), in stored order."""
    with zipfile.ZipFile(path) as archive:
        manifest = _read_manifest(archive)
        certificates = _unpack_certificates(archive.read("certificates.der"))
        if manifest["format"] == 1:
            return _read_scans_v1(archive, certificates)
        return _read_scans_v2(archive, certificates)
