"""Scan-corpus serialization.

The paper published its code and data (securepki.org); this module is the
equivalent facility: a :class:`~repro.scanner.dataset.ScanDataset` round-
trips through a single ``.rpz`` file.

**Format 3 (written)** is the mmap-native segment container of
:mod:`repro.io.encoding`: the five observation columns, the interning
tables, the per-scan metadata, and the certificate blob each live in one
fixed-stride little-endian segment, described by a JSON manifest at the
tail of the file.  Opening a format 3 corpus is O(1) — read the trailer,
parse the manifest, ``mmap`` the file — and every column is consumed in
place as a ``memoryview`` over the map, so N processes analyzing the
same corpus share one physical copy through the page cache.
``certificates.der`` keeps the standalone-parseable record encoding of
the earlier formats (4-byte big-endian length + raw X.509 DER), with a
parallel offset segment for O(1) per-certificate access; certificates
are parsed lazily, on first use.

**Formats 1 and 2** (ZIP archives: row- and column-oriented
``scans.jsonl``) are still loaded transparently through the one-shot
materializing converter path; ``repro convert`` rewrites them as
format 3.  :func:`save_dataset_v2` keeps the v2 writer alive for
compatibility fixtures and benchmarks.

DER is the ground-truth encoding: every certificate read re-parses
through :meth:`Certificate.from_der`, so a stored corpus exercises
exactly the same parse path a real scan corpus would.
"""

from __future__ import annotations

import json
import pathlib
import struct
import zipfile
from array import array
from dataclasses import dataclass
from typing import Mapping, Sequence, Union

from ..obs import runtime as obs
from ..scanner.dataset import ScanDataset
from ..scanner.records import Observation, Scan
from ..scanner.shards import ScanShard, certificate_order
from ..tls.handshake import HandshakeRecord
from ..x509.certificate import Certificate
from .encoding import (
    FP_HASH_SEGMENT,
    SegmentReader,
    SegmentWriter,
    as_array,
    build_fingerprint_hash,
    is_segment_container,
    iter_der_records,
    le_bytes,
    pack_der_record,
    pack_fingerprints,
    read_container_meta,
    unpack_fingerprints,
)

__all__ = [
    "save_dataset",
    "save_dataset_v2",
    "load_dataset",
    "read_manifest",
    "read_certificates",
    "read_scans",
    "append_shards",
    "AppendResult",
    "StreamingDatasetWriter",
    "FORMAT_VERSION",
    "ShardDrop",
    "write_shard_drop",
    "read_shard_drop",
]

FORMAT_VERSION = 3

#: Formats :func:`load_dataset` understands.
SUPPORTED_FORMATS = (1, 2, 3)

_LENGTH = struct.Struct(">I")

#: Fixed member timestamp (the ZIP epoch) for the legacy v2 writer.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)

#: The four spooled observation columns (scan_idx regenerates at close).
_SPOOLED = (("ip", "I"), ("cert_id", "I"), ("entity_id", "I"),
            ("handshake_id", "i"))


# ---------------------------------------------------------------------------
# Writing (always format 3)
# ---------------------------------------------------------------------------

class StreamingDatasetWriter:
    """Incremental ``.rpz`` writer: shards in, container + digest out.

    Feed per-day :class:`~repro.scanner.shards.ScanShard` columns with
    :meth:`add_shard` in (day, source) order; each shard is re-interned
    against the writer's global tables (replaying exactly the corpus
    first-appearance order an in-memory merge produces) and its column
    bytes are spooled to per-column temp files next to the target — peak
    memory stays O(largest shard) + O(interning tables), never
    O(corpus).  :meth:`close` assembles the final format 3 container
    through the hashing :class:`~repro.io.encoding.SegmentWriter` and
    returns the corpus digest, which equals both
    ``ArchiveBackend(path).corpus_digest()`` and the digest of a
    :func:`save_dataset` write of the same corpus, byte for byte.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self._spools = {
            name: open(self._spool_path(name), "wb")
            for name, _ in _SPOOLED
        }
        self._fingerprint_ids: dict[bytes, int] = {}
        self._fingerprints: list[bytes] = []
        self._entity_ids: dict[str, int] = {"": 0}
        self._entities: list[str] = [""]
        self._handshake_ids: dict[HandshakeRecord, int] = {}
        self._handshakes: list[HandshakeRecord] = []
        self._scan_days: list[int] = []
        self._scan_sources: list[str] = []
        self._scan_counts: list[int] = []
        self.n_scans = 0
        self.n_observations = 0
        self.digest: "str | None" = None

    def _spool_path(self, name: str) -> pathlib.Path:
        return self.path.with_name(f"{self.path.name}.{name}.tmp")

    # --- feeding ---------------------------------------------------------------

    def add_shard(self, shard: ScanShard) -> None:
        """Intern one day shard's tables and spool its columns."""
        cert_map = [
            self._intern(self._fingerprint_ids, self._fingerprints, fingerprint)
            for fingerprint in shard.fingerprints
        ]
        entity_map = [
            self._intern(self._entity_ids, self._entities, tag)
            for tag in shard.entities
        ]
        handshake_map = [
            self._intern(self._handshake_ids, self._handshakes, record)
            for record in shard.handshakes
        ]
        self._append_scan(
            shard.day,
            shard.source,
            shard.ip,
            array("I", map(cert_map.__getitem__, shard.cert_id)),
            array("I", map(entity_map.__getitem__, shard.entity_id)),
            array("i", (
                handshake_map[handshake_id] if handshake_id >= 0 else -1
                for handshake_id in shard.handshake_id
            )),
        )
        obs.inc("scanner.shards_streamed")

    @staticmethod
    def _intern(ids: dict, table: list, value) -> int:
        interned = ids.get(value)
        if interned is None:
            interned = ids[value] = len(table)
            table.append(value)
        return interned

    def _adopt_tables(self, fingerprints, entities, handshakes) -> None:
        """Seed the writer tables from already-merged corpus columns.

        Only valid on a fresh writer; :func:`save_dataset` uses this so
        global column ids can be spooled as-is.
        """
        assert not self.n_scans and not self._fingerprints
        self._fingerprints = list(fingerprints)
        self._fingerprint_ids = {
            fingerprint: index
            for index, fingerprint in enumerate(self._fingerprints)
        }
        self._entities = list(entities)
        self._entity_ids = {
            tag: index for index, tag in enumerate(self._entities)
        }
        self._handshakes = list(handshakes)
        self._handshake_ids = {
            record: index for index, record in enumerate(self._handshakes)
        }

    def _append_scan(self, day, source, ip, cert, entity, handshake) -> None:
        """Spool one scan's columns (already in global ids)."""
        self._spools["ip"].write(le_bytes(ip))
        self._spools["cert_id"].write(le_bytes(cert))
        self._spools["entity_id"].write(le_bytes(entity))
        self._spools["handshake_id"].write(le_bytes(handshake))
        self._scan_days.append(day)
        self._scan_sources.append(source)
        self._scan_counts.append(len(ip))
        self.n_scans += 1
        self.n_observations += len(ip)

    # --- finishing -------------------------------------------------------------

    def _scan_idx_chunks(self):
        """Generate the scan_idx column from the per-scan counts."""
        for scan_index, count in enumerate(self._scan_counts):
            if count:
                yield le_bytes(array("I", (scan_index,)) * count)

    def close(self, certificates: Mapping[bytes, Certificate]) -> str:
        """Assemble the container and return its corpus digest."""
        with obs.span("corpus/stream_close", scans=self.n_scans):
            try:
                for spool in self._spools.values():
                    spool.close()
                order = certificate_order(self._fingerprints, certificates)
                writer = SegmentWriter(
                    self.path,
                    meta={
                        "kind": "corpus",
                        "n_scans": self.n_scans,
                        "n_certificates": len(certificates),
                        "n_observations": self.n_observations,
                    },
                    format=FORMAT_VERSION,
                )
                try:
                    writer.add_chunks(
                        "scan_idx", self._scan_idx_chunks(),
                        kind="array", typecode="I",
                    )
                    for name, typecode in _SPOOLED:
                        with open(self._spool_path(name), "rb") as spool:
                            writer.add_stream(
                                name, spool, kind="array", typecode=typecode
                            )
                    writer.add_bytes(
                        "fingerprints",
                        pack_fingerprints(self._fingerprints), stride=32,
                    )
                    writer.add_json("entities", self._entities)
                    writer.add_json(
                        "handshakes",
                        [list(record) for record in self._handshakes],
                    )
                    writer.add_array(
                        "scan_days", array("i", self._scan_days)
                    )
                    writer.add_json("scan_sources", self._scan_sources)
                    bounds = array("Q", (0,))
                    for count in self._scan_counts:
                        bounds.append(bounds[-1] + count)
                    writer.add_array("scan_bounds", bounds)
                    writer.add_bytes(
                        "cert_order", pack_fingerprints(order), stride=32
                    )
                    offsets = array("Q", (0,))

                    def der_chunks():
                        for fingerprint in order:
                            record = pack_der_record(
                                certificates[fingerprint].to_der()
                            )
                            offsets.append(offsets[-1] + len(record))
                            yield record

                    writer.add_chunks("certificates.der", der_chunks())
                    writer.add_array("cert_offsets", offsets)
                    writer.add_array(
                        FP_HASH_SEGMENT, build_fingerprint_hash(order)
                    )
                    self.digest = writer.close()
                except BaseException:
                    writer.abort()
                    raise
            finally:
                for name, _ in _SPOOLED:
                    self._spool_path(name).unlink(missing_ok=True)
        return self.digest

    def abort(self) -> None:
        """Discard the spools without writing a container."""
        for spool in self._spools.values():
            spool.close()
        for name, _ in _SPOOLED:
            self._spool_path(name).unlink(missing_ok=True)


def save_dataset(dataset: ScanDataset, path: Union[str, pathlib.Path]) -> str:
    """Write the corpus to one format 3 ``.rpz`` container (overwrites).

    Runs on the same :class:`StreamingDatasetWriter` machinery the
    shard-streaming generation path uses — same segment order, same
    incremental digest — so an in-memory build and a streamed build of
    the same corpus produce byte-identical containers.  Columns are
    spooled scan-by-scan and certificates stream record-by-record, so
    peak memory stays O(one scan), not O(corpus).  Returns the
    container's corpus digest.
    """
    columns = dataset.columns
    writer = StreamingDatasetWriter(path)
    try:
        writer._adopt_tables(
            columns.fingerprints, columns.entities, columns.handshakes
        )
        position = 0
        for scan in dataset.scans:
            end = position + len(scan)
            writer._append_scan(
                scan.day,
                scan.source,
                columns.ip[position:end],
                columns.cert_id[position:end],
                columns.entity_id[position:end],
                columns.handshake_id[position:end],
            )
            position = end
    except BaseException:
        writer.abort()
        raise
    return writer.close(dataset.certificates)


# ---------------------------------------------------------------------------
# Incremental ingestion (O(day) corpus appends)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AppendResult:
    """What one :func:`append_shards` call did."""

    #: The grown container.
    path: pathlib.Path
    #: Its corpus digest (equals ``file_digest(path)``).
    digest: str
    #: Scan count / row count / observed-certificate-table size of the
    #: base container — the delta boundary for the ``extended`` kernels.
    base_scans: int
    base_observations: int
    base_observed_certs: int
    #: Grown totals (match the new container's manifest meta).
    n_scans: int
    n_observations: int
    n_certificates: int
    #: Distinct scan days this append introduced, in order.
    new_days: tuple
    #: Base bytes re-emitted as raw copies (never decoded or re-encoded).
    bytes_reused: int


def append_shards(
    base: Union[str, pathlib.Path],
    shards: Union[ScanShard, Sequence[ScanShard]],
    certificates: Mapping[bytes, Certificate],
    path: Union[str, pathlib.Path],
) -> AppendResult:
    """Grow a format 3 corpus by one or more appended scan shards.

    The O(day) ingestion path: the base container is opened O(1)
    (trailer + manifest), each shard's day-local tables are re-interned
    against the base tables — replaying exactly the global
    first-appearance order :class:`StreamingDatasetWriter` would produce
    had the shard been streamed into the original build — and the grown
    container is emitted by **raw-copying** the unchanged byte ranges
    (the five column segments, the fingerprint table, the observed
    certificate order, and every retained DER record) and appending only
    the delta tail.  Small metadata segments (interning tables, scan
    metadata) are re-encoded from the grown values.  The result is
    byte-identical to a from-scratch build over the grown corpus, so its
    digest — and every artifact keyed by it — is append-path-invariant.

    Shards must arrive in strictly increasing ``(day, source)`` order
    and sort after the base's last scan; anything else raises
    ``ValueError`` (out-of-order ingestion would reorder the corpus and
    break append invariance).  ``certificates`` must cover every
    appended certificate not already in the base (a fresh
    ``ScanEngine.certificate_store`` for the day suffices; entries whose
    fingerprint the base already holds are raw-copied from the base).
    """
    if isinstance(shards, ScanShard):
        shards = [shards]
    else:
        shards = list(shards)
    if not shards:
        raise ValueError("nothing to append")
    base_path = pathlib.Path(base)
    path = pathlib.Path(path)
    reader = SegmentReader(base_path)
    meta = reader.meta
    if reader.format != FORMAT_VERSION or meta.get("kind") != "corpus":
        raise ValueError(f"not a format 3 corpus container: {base_path}")
    new_days = tuple(dict.fromkeys(shard.day for shard in shards))
    with obs.span("ingest/append_day", shards=len(shards),
                  days=len(new_days)):
        result = _append_shards(reader, shards, certificates, path)
    obs.inc("ingest.days", len(new_days))
    obs.inc("ingest.rows", result.n_observations - result.base_observations)
    obs.inc("ingest.certs",
            result.n_certificates - meta["n_certificates"])
    obs.inc("ingest.bytes_reused", result.bytes_reused)
    return result


def _append_shards(
    reader: SegmentReader,
    shards: "list[ScanShard]",
    certificates: Mapping[bytes, Certificate],
    path: pathlib.Path,
) -> AppendResult:
    meta = reader.meta
    base_scans = meta["n_scans"]
    base_rows = meta["n_observations"]

    # --- base tables (small: interning tables + per-scan metadata) -----------
    fp_blob = reader.raw("fingerprints")
    fingerprints = unpack_fingerprints(fp_blob)
    base_observed = len(fingerprints)
    fingerprint_ids = {fp: i for i, fp in enumerate(fingerprints)}
    entities = reader.json("entities")
    entity_ids = {tag: i for i, tag in enumerate(entities)}
    handshakes = [
        HandshakeRecord(*record) for record in reader.json("handshakes")
    ]
    handshake_ids = {record: i for i, record in enumerate(handshakes)}
    scan_days = list(reader.array("scan_days"))
    scan_sources = reader.json("scan_sources")

    # --- ordering guard ------------------------------------------------------
    last = (scan_days[-1], scan_sources[-1]) if scan_days else None
    for shard in shards:
        key = (shard.day, shard.source)
        if last is not None and key <= last:
            raise ValueError(
                f"appended scan {key!r} does not sort after {last!r}; "
                "shards must arrive in strictly increasing (day, source) "
                "order"
            )
        last = key

    # --- replay the global interning order over the delta --------------------
    intern = StreamingDatasetWriter._intern
    remapped = []
    new_rows = 0
    for shard in shards:
        cert_map = [
            intern(fingerprint_ids, fingerprints, fingerprint)
            for fingerprint in shard.fingerprints
        ]
        entity_map = [
            intern(entity_ids, entities, tag) for tag in shard.entities
        ]
        handshake_map = [
            intern(handshake_ids, handshakes, record)
            for record in shard.handshakes
        ]
        remapped.append((
            shard.ip,
            array("I", map(cert_map.__getitem__, shard.cert_id)),
            array("I", map(entity_map.__getitem__, shard.entity_id)),
            array("i", (
                handshake_map[handshake_id] if handshake_id >= 0 else -1
                for handshake_id in shard.handshake_id
            )),
        ))
        new_rows += len(shard.ip)
        scan_days.append(shard.day)
        scan_sources.append(shard.source)

    # --- grown certificate order ---------------------------------------------
    # Equivalent to certificate_order(fingerprints, base ∪ certificates)
    # without materializing the union: the base order already ends with
    # its never-observed extras sorted, so the grown extras are those
    # plus the never-before-seen appended certificates (a C-level keys
    # difference), minus anything the delta just observed.
    base_order = unpack_fingerprints(reader.raw("cert_order"))
    base_position = {fp: i for i, fp in enumerate(base_order)}
    extra = certificates.keys() - base_position.keys()
    extra.update(base_order[base_observed:])
    extra.difference_update(fingerprints[base_observed:])
    order = list(fingerprints) + sorted(extra)
    base_offsets = reader.array("cert_offsets")
    der_blob = reader.raw("certificates.der")

    writer = SegmentWriter(
        path,
        meta={
            "kind": "corpus",
            "n_scans": base_scans + len(shards),
            "n_certificates": len(order),
            "n_observations": base_rows + new_rows,
        },
        format=FORMAT_VERSION,
    )
    reused = 0
    try:
        base_scan_idx = reader.raw("scan_idx")

        def scan_idx_chunks():
            yield base_scan_idx
            for offset, (ip, _, _, _) in enumerate(remapped):
                if len(ip):
                    yield le_bytes(array("I", (base_scans + offset,)) * len(ip))

        writer.add_chunks(
            "scan_idx", scan_idx_chunks(), kind="array", typecode="I"
        )
        reused += len(base_scan_idx)
        for slot, (name, typecode) in enumerate(_SPOOLED):
            base_column = reader.raw(name)

            def column_chunks(base_column=base_column, slot=slot):
                yield base_column
                for columns in remapped:
                    yield le_bytes(columns[slot])

            writer.add_chunks(
                name, column_chunks(), kind="array", typecode=typecode
            )
            reused += len(base_column)
        writer.add_chunks(
            "fingerprints",
            (fp_blob, pack_fingerprints(fingerprints[base_observed:])),
            kind="bytes", stride=32,
        )
        reused += len(fp_blob)
        writer.add_json("entities", entities)
        writer.add_json(
            "handshakes", [list(record) for record in handshakes]
        )
        writer.add_array("scan_days", array("i", scan_days))
        writer.add_json("scan_sources", scan_sources)
        bounds = array("Q", reader.array("scan_bounds"))
        for ip, _, _, _ in remapped:
            bounds.append(bounds[-1] + len(ip))
        writer.add_array("scan_bounds", bounds)
        writer.add_chunks(
            "cert_order",
            (fp_blob,
             pack_fingerprints(fingerprints[base_observed:]),
             pack_fingerprints(order[len(fingerprints):])),
            kind="bytes", stride=32,
        )
        reused += len(fp_blob)
        prefix_end = base_offsets[base_observed]
        offsets = array("Q", base_offsets[:base_observed + 1])

        def der_chunks():
            nonlocal reused
            if prefix_end:
                yield der_blob[:prefix_end]
                reused += prefix_end
            for fingerprint in order[base_observed:]:
                position = base_position.get(fingerprint)
                if position is not None:
                    record = der_blob[
                        base_offsets[position]:base_offsets[position + 1]
                    ]
                    reused += len(record)
                else:
                    cert = certificates.get(fingerprint)
                    if cert is None:
                        raise ValueError(
                            "missing certificate DER for appended "
                            f"fingerprint {fingerprint.hex()}"
                        )
                    record = pack_der_record(cert.to_der())
                offsets.append(offsets[-1] + len(record))
                yield record

        writer.add_chunks("certificates.der", der_chunks())
        writer.add_array("cert_offsets", offsets)
        # Rebuilt from the grown order, never copied: the table is a pure
        # function of the fingerprint sequence, so this emission is
        # byte-identical to a from-scratch build's.
        writer.add_array(FP_HASH_SEGMENT, build_fingerprint_hash(order))
        digest = writer.close()
    except BaseException:
        writer.abort()
        raise
    return AppendResult(
        path=path,
        digest=digest,
        base_scans=base_scans,
        base_observations=base_rows,
        base_observed_certs=base_observed,
        n_scans=base_scans + len(shards),
        n_observations=base_rows + new_rows,
        n_certificates=len(order),
        new_days=tuple(dict.fromkeys(
            day for day in scan_days[base_scans:]
        )),
        bytes_reused=reused,
    )


# ---------------------------------------------------------------------------
# Shard drop files (the watch daemon's wire format)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardDrop:
    """One day's scan shards read back from a drop file."""

    #: The scan day every shard in the file belongs to.
    day: int
    #: The day's shards, in (day, source) order.
    shards: tuple
    #: fingerprint → :class:`Certificate` covering every shard sighting.
    certificates: dict


def write_shard_drop(
    shards: Union[ScanShard, Sequence[ScanShard]],
    certificates: Mapping[bytes, Certificate],
    path: Union[str, pathlib.Path],
) -> str:
    """Write one day's shards as a portable format 3 drop file (``.rps``).

    The hand-off unit between a scan producer and the ``repro ingest
    --watch`` daemon: everything :func:`append_shards` needs for one day
    — the day's :class:`~repro.scanner.shards.ScanShard` columns plus the
    DER of every certificate they sight — in a single self-describing
    container.  Shards must all share one day and arrive in source
    order; ``certificates`` must cover every shard fingerprint.

    The file is assembled next to ``path`` and moved into place with one
    atomic rename, so a polling watcher never observes a partial drop.
    Returns the container digest.
    """
    if isinstance(shards, ScanShard):
        shards = [shards]
    else:
        shards = list(shards)
    if not shards:
        raise ValueError("nothing to drop")
    day = shards[0].day
    if any(shard.day != day for shard in shards):
        raise ValueError("a shard drop holds exactly one day")
    sources = [shard.source for shard in shards]
    if sources != sorted(sources) or len(set(sources)) != len(sources):
        raise ValueError("shards must be in strictly increasing source order")
    needed = []
    seen = set()
    for shard in shards:
        for fingerprint in shard.fingerprints:
            if fingerprint not in seen:
                seen.add(fingerprint)
                needed.append(fingerprint)
    missing = [fp for fp in needed if fp not in certificates]
    if missing:
        raise ValueError(
            f"missing certificate DER for {len(missing)} drop "
            f"fingerprint(s), first {missing[0].hex()}"
        )
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    writer = SegmentWriter(
        tmp,
        meta={
            "kind": "shard-drop",
            "day": day,
            "shards": [
                {"source": shard.source, "n": len(shard)} for shard in shards
            ],
            "n_certificates": len(needed),
        },
        format=FORMAT_VERSION,
    )
    try:
        for index, shard in enumerate(shards):
            prefix = f"s{index}."
            writer.add_array(prefix + "ip", shard.ip)
            writer.add_array(prefix + "cert_id", shard.cert_id)
            writer.add_array(prefix + "entity_id", shard.entity_id)
            writer.add_array(prefix + "handshake_id", shard.handshake_id)
            writer.add_bytes(
                prefix + "fingerprints",
                pack_fingerprints(shard.fingerprints), stride=32,
            )
            writer.add_json(prefix + "entities", shard.entities)
            writer.add_json(
                prefix + "handshakes",
                [list(record) for record in shard.handshakes],
            )
        writer.add_bytes(
            "cert_fingerprints", pack_fingerprints(needed), stride=32
        )
        offsets = array("Q", (0,))

        def der_chunks():
            for fingerprint in needed:
                record = pack_der_record(certificates[fingerprint].to_der())
                offsets.append(offsets[-1] + len(record))
                yield record

        writer.add_chunks("certificates.der", der_chunks())
        writer.add_array("cert_offsets", offsets)
        digest = writer.close()
    except BaseException:
        writer.abort()
        raise
    tmp.replace(path)
    obs.inc("ingest.drops_written")
    return digest


def read_shard_drop(path: Union[str, pathlib.Path]) -> ShardDrop:
    """Load a :func:`write_shard_drop` file back into shards + DER.

    Columns are materialized (a drop is consumed once, not queried in
    place), certificates re-parsed through ``Certificate.from_der`` —
    the same ground-truth path every stored corpus takes.
    """
    reader = SegmentReader(path)
    try:
        meta = reader.meta
        if reader.format != FORMAT_VERSION or meta.get("kind") != "shard-drop":
            raise ValueError(f"not a shard drop container: {path}")
        day = meta["day"]
        shards = []
        for index, entry in enumerate(meta["shards"]):
            prefix = f"s{index}."
            shards.append(ScanShard(
                day,
                entry["source"],
                as_array(reader.array(prefix + "ip")),
                as_array(reader.array(prefix + "cert_id")),
                as_array(reader.array(prefix + "entity_id")),
                as_array(reader.array(prefix + "handshake_id")),
                unpack_fingerprints(reader.raw(prefix + "fingerprints")),
                list(reader.json(prefix + "entities")),
                [
                    HandshakeRecord(*record)
                    for record in reader.json(prefix + "handshakes")
                ],
            ))
        fingerprints = unpack_fingerprints(reader.raw("cert_fingerprints"))
        certificates = {
            fingerprint: Certificate.from_der(der)
            for fingerprint, der in zip(
                fingerprints, iter_der_records(reader.raw("certificates.der"))
            )
        }
    finally:
        reader.close()
    return ShardDrop(day=day, shards=tuple(shards), certificates=certificates)


# ---------------------------------------------------------------------------
# Legacy v2 writer (compatibility fixtures, conversion baselines)
# ---------------------------------------------------------------------------

def save_dataset_v2(dataset: ScanDataset, path: Union[str, pathlib.Path]) -> str:
    """Write the legacy columnar ZIP archive (format 2).

    Kept for backward-compatibility fixtures and as the materializing
    baseline the mmap benchmarks compare against; new corpora should use
    :func:`save_dataset`.  Returns the archive's corpus digest.
    """
    from .artifacts import file_digest

    columns = dataset.columns
    order = certificate_order(columns.fingerprints, dataset.certificates)
    manifest = {
        "format": 2,
        "n_scans": len(dataset.scans),
        "n_certificates": len(dataset.certificates),
        "n_observations": dataset.n_observations,
    }

    def member(name: str) -> zipfile.ZipInfo:
        info = zipfile.ZipInfo(name, date_time=_ZIP_EPOCH)
        info.compress_type = zipfile.ZIP_DEFLATED
        return info

    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as archive:
        archive.writestr(member("manifest.json"), json.dumps(manifest, indent=2))
        with archive.open(member("certificates.der"), "w") as blob:
            for fingerprint in order:
                der = dataset.certificates[fingerprint].to_der()
                blob.write(_LENGTH.pack(len(der)))
                blob.write(der)
        archive.writestr(
            member("entities.json"),
            json.dumps(columns.entities, separators=(",", ":")),
        )
        archive.writestr(
            member("handshakes.json"),
            json.dumps(
                [list(record) for record in columns.handshakes],
                separators=(",", ":"),
            ),
        )
        with archive.open(member("scans.jsonl"), "w") as blob:
            position = 0
            for scan in dataset.scans:
                end = position + len(scan)
                row = {
                    "day": scan.day,
                    "source": scan.source,
                    "ip": list(columns.ip[position:end]),
                    "cert": list(columns.cert_id[position:end]),
                    "entity": list(columns.entity_id[position:end]),
                    "hs": list(columns.handshake_id[position:end]),
                }
                blob.write(json.dumps(row, separators=(",", ":")).encode())
                blob.write(b"\n")
                position = end
    return file_digest(path)


# ---------------------------------------------------------------------------
# Reading (v1/v2 ZIP archives — the materializing converter path)
# ---------------------------------------------------------------------------

def _read_zip_manifest(archive: zipfile.ZipFile) -> dict:
    try:
        manifest = json.loads(archive.read("manifest.json"))
    except ValueError as error:
        raise ValueError(f"corpus corrupt: manifest is not valid JSON ({error})")
    if not isinstance(manifest, dict):
        raise ValueError("corpus corrupt: manifest is not a JSON object")
    if manifest.get("format") not in SUPPORTED_FORMATS:
        raise ValueError(f"unsupported corpus format {manifest.get('format')!r}")
    return manifest


def _unpack_certificates(blob: bytes) -> list[Certificate]:
    certificates = []
    offset = 0
    while offset < len(blob):
        (length,) = _LENGTH.unpack_from(blob, offset)
        offset += _LENGTH.size
        certificates.append(Certificate.from_der(blob[offset:offset + length]))
        offset += length
    return certificates


def _read_scans_v1(archive: zipfile.ZipFile, by_index: list[Certificate]) -> list[Scan]:
    scan_lines = archive.read("scans.jsonl").decode("utf-8").splitlines()
    scans = []
    for line in scan_lines:
        record = json.loads(line)
        observations = []
        for ip, cert_idx, entity, handshake in record["observations"]:
            observations.append(
                Observation(
                    ip=ip,
                    fingerprint=by_index[cert_idx].fingerprint,
                    entity=entity,
                    handshake=(
                        HandshakeRecord(*handshake) if handshake is not None else None
                    ),
                )
            )
        scans.append(
            Scan(day=record["day"], source=record["source"], observations=observations)
        )
    return scans


def _read_scans_v2(archive: zipfile.ZipFile, by_index: list[Certificate]) -> list[Scan]:
    entities = json.loads(archive.read("entities.json"))
    handshakes = [
        HandshakeRecord(*record)
        for record in json.loads(archive.read("handshakes.json"))
    ]
    scans = []
    with archive.open("scans.jsonl") as member:
        for line in member:
            if not line.strip():
                continue
            record = json.loads(line)
            observations = [
                Observation(
                    ip=ip,
                    fingerprint=by_index[cert_idx].fingerprint,
                    entity=entities[entity_id],
                    handshake=(handshakes[hs_id] if hs_id >= 0 else None),
                )
                for ip, cert_idx, entity_id, hs_id in zip(
                    record["ip"], record["cert"], record["entity"], record["hs"]
                )
            ]
            scans.append(
                Scan(
                    day=record["day"],
                    source=record["source"],
                    observations=observations,
                )
            )
    return scans


def load_dataset(path: Union[str, pathlib.Path]) -> ScanDataset:
    """Load a corpus written by :func:`save_dataset` (format 1, 2, or 3).

    Format 3 containers open **mapped**: O(1) open, columns as
    ``memoryview``s over an ``mmap``, certificates parsed lazily.
    Format 1/2 ZIP archives take the legacy materializing path.
    """
    if is_segment_container(path):
        from .backends import MappedBackend

        return ScanDataset.from_backend(MappedBackend(path))
    with zipfile.ZipFile(path) as archive:
        manifest = _read_zip_manifest(archive)
        certificates = _unpack_certificates(archive.read("certificates.der"))
        if manifest["format"] == 1:
            scans = _read_scans_v1(archive, certificates)
        else:
            scans = _read_scans_v2(archive, certificates)
    from .backends import ArchiveBackend

    dataset = ScanDataset(
        scans,
        {cert.fingerprint: cert for cert in certificates},
        backend=ArchiveBackend(path),
    )
    if len(dataset.certificates) != manifest["n_certificates"]:
        raise ValueError("corpus corrupt: certificate count mismatch")
    return dataset


# --- piecemeal readers (the ArchiveBackend protocol surface) -------------------

def read_manifest(path: Union[str, pathlib.Path]) -> dict:
    """Parse and sanity-check a corpus' manifest without loading it.

    O(1) for format 3 containers (trailer + manifest only); for ZIP
    archives it reads just the manifest member.
    """
    if is_segment_container(path):
        info = read_container_meta(path)
        if info["format"] not in SUPPORTED_FORMATS:
            raise ValueError(f"unsupported corpus format {info['format']!r}")
        manifest = {"format": info["format"]}
        manifest.update({
            key: value for key, value in info["meta"].items() if key != "kind"
        })
        return manifest
    with zipfile.ZipFile(path) as archive:
        return _read_zip_manifest(archive)


def read_certificates(path: Union[str, pathlib.Path]) -> dict[bytes, Certificate]:
    """fingerprint → certificate for every certificate in the corpus."""
    if is_segment_container(path):
        from .backends import MappedBackend

        return dict(MappedBackend(path).load_certificates())
    with zipfile.ZipFile(path) as archive:
        _read_zip_manifest(archive)
        certificates = _unpack_certificates(archive.read("certificates.der"))
    return {cert.fingerprint: cert for cert in certificates}


def read_scans(path: Union[str, pathlib.Path]) -> list[Scan]:
    """The corpus' scans (row view), in stored order."""
    if is_segment_container(path):
        from .backends import MappedBackend

        return MappedBackend(path).load_scans()
    with zipfile.ZipFile(path) as archive:
        manifest = _read_zip_manifest(archive)
        certificates = _unpack_certificates(archive.read("certificates.der"))
        if manifest["format"] == 1:
            return _read_scans_v1(archive, certificates)
        return _read_scans_v2(archive, certificates)
