"""Scan-corpus serialization.

The paper published its code and data (securepki.org); this module is the
equivalent facility: a :class:`~repro.scanner.dataset.ScanDataset` round-
trips through a single ``.rpz`` file (a ZIP archive).

**Format v2 (written)** is columnar and streamed — no member is ever
materialized as one giant string in memory:

* ``manifest.json`` — format version and corpus statistics;
* ``certificates.der`` — every unique certificate as length-prefixed DER
  (parseable without this library: each record is a 4-byte big-endian
  length followed by a standard X.509 DER blob), in certificate-id order;
* ``entities.json`` / ``handshakes.json`` — the interning tables for
  ground-truth tags (id 0 is the empty tag) and handshake records;
* ``scans.jsonl`` — one JSON object per scan holding **parallel columns**
  (``ip``, ``cert``, ``entity``, ``hs``) of equal length, observations
  referencing the tables above by id (``hs`` -1 means no handshake).

**Format v1** (row-oriented ``scans.jsonl``, certificates sorted by
fingerprint) is still loaded transparently.

DER is the ground-truth encoding: loading re-parses every certificate
through :meth:`Certificate.from_der`, so a stored corpus exercises exactly
the same parse path a real scan corpus would.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import shutil
import struct
import zipfile
from typing import Mapping, Union

from ..obs import runtime as obs
from ..scanner.dataset import ScanDataset
from ..scanner.records import Observation, Scan
from ..scanner.shards import ScanShard, certificate_order
from ..tls.handshake import HandshakeRecord
from ..x509.certificate import Certificate

__all__ = [
    "save_dataset",
    "load_dataset",
    "read_manifest",
    "read_certificates",
    "read_scans",
    "StreamingDatasetWriter",
    "FORMAT_VERSION",
]

FORMAT_VERSION = 2

#: Formats :func:`load_dataset` understands.
SUPPORTED_FORMATS = (1, 2)

_LENGTH = struct.Struct(">I")

#: Fixed member timestamp (the ZIP epoch): archive bytes — and therefore
#: the corpus digest — depend only on corpus content, never on wall time.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)

#: Salt matching :func:`repro.io.artifacts.file_digest`, so the digest a
#: streaming write computes incrementally equals the digest a later
#: :class:`~repro.io.backends.ArchiveBackend` re-derives from the file.
_ARCHIVE_DIGEST_SALT = b"repro-archive/1\n"


# ---------------------------------------------------------------------------
# Writing (always format v2)
# ---------------------------------------------------------------------------

class _HashingSink:
    """Write-only, *non-seekable* file wrapper that hashes as it writes.

    Declaring ``seekable() == False`` forces :mod:`zipfile` into its
    streaming mode (sizes/CRCs in data descriptors instead of seek-back
    local-header patches), which is what makes hash-as-you-write sound:
    every byte passes through exactly once, in file order.
    """

    def __init__(self, raw) -> None:
        self._raw = raw
        self._digest = hashlib.sha256(_ARCHIVE_DIGEST_SALT)
        self._position = 0

    def write(self, data) -> int:
        self._digest.update(data)
        self._raw.write(data)
        self._position += len(data)
        return len(data)

    def tell(self) -> int:
        return self._position

    def flush(self) -> None:
        self._raw.flush()

    @staticmethod
    def seekable() -> bool:
        return False

    def hexdigest(self) -> str:
        return self._digest.hexdigest()


def _member(name: str) -> zipfile.ZipInfo:
    info = zipfile.ZipInfo(name, date_time=_ZIP_EPOCH)
    info.compress_type = zipfile.ZIP_DEFLATED
    return info


class StreamingDatasetWriter:
    """Incremental ``.rpz`` writer: shards in, archive + digest out.

    Feed per-day :class:`~repro.scanner.shards.ScanShard` columns with
    :meth:`add_shard` in (day, source) order; each shard is re-interned
    against the writer's global tables (replaying exactly the corpus
    first-appearance order an in-memory merge produces) and its scan line
    is spooled to a temp file next to the target — peak memory stays
    O(largest shard) + O(interning tables), never O(corpus).
    :meth:`close` assembles the final archive in canonical member order
    through a hashing non-seekable sink and returns the corpus digest,
    which equals both ``ArchiveBackend(path).corpus_digest()`` and the
    digest of a :func:`save_dataset` write of the same corpus, byte for
    byte.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self._spool_path = self.path.with_name(self.path.name + ".scans.tmp")
        self._spool = open(self._spool_path, "wb")
        self._fingerprint_ids: dict[bytes, int] = {}
        self._fingerprints: list[bytes] = []
        self._entity_ids: dict[str, int] = {"": 0}
        self._entities: list[str] = [""]
        self._handshake_ids: dict[HandshakeRecord, int] = {}
        self._handshakes: list[HandshakeRecord] = []
        self.n_scans = 0
        self.n_observations = 0
        self.digest: "str | None" = None

    # --- feeding ---------------------------------------------------------------

    def add_shard(self, shard: ScanShard) -> None:
        """Intern one day shard's tables and spool its scan line."""
        cert_map = [
            self._intern(self._fingerprint_ids, self._fingerprints, fingerprint)
            for fingerprint in shard.fingerprints
        ]
        entity_map = [
            self._intern(self._entity_ids, self._entities, tag)
            for tag in shard.entities
        ]
        handshake_map = [
            self._intern(self._handshake_ids, self._handshakes, record)
            for record in shard.handshakes
        ]
        self._write_scan_line(
            shard.day,
            shard.source,
            [cert_map[cert_id] for cert_id in shard.cert_id],
            [entity_map[entity_id] for entity_id in shard.entity_id],
            [
                handshake_map[handshake_id] if handshake_id >= 0 else -1
                for handshake_id in shard.handshake_id
            ],
            shard.ip.tolist(),
        )
        obs.inc("scanner.shards_streamed")

    @staticmethod
    def _intern(ids: dict, table: list, value) -> int:
        interned = ids.get(value)
        if interned is None:
            interned = ids[value] = len(table)
            table.append(value)
        return interned

    def _adopt_tables(self, fingerprints, entities, handshakes) -> None:
        """Seed the writer tables from already-merged corpus columns.

        Only valid on a fresh writer; :func:`save_dataset` uses this so
        global column ids can be spooled as-is.
        """
        assert not self.n_scans and not self._fingerprints
        self._fingerprints = list(fingerprints)
        self._fingerprint_ids = {
            fingerprint: index
            for index, fingerprint in enumerate(self._fingerprints)
        }
        self._entities = list(entities)
        self._entity_ids = {
            tag: index for index, tag in enumerate(self._entities)
        }
        self._handshakes = list(handshakes)
        self._handshake_ids = {
            record: index for index, record in enumerate(self._handshakes)
        }

    def _write_scan_line(
        self, day, source, cert, entity, handshake, ip
    ) -> None:
        row = {
            "day": day,
            "source": source,
            "ip": ip,
            "cert": cert,
            "entity": entity,
            "hs": handshake,
        }
        self._spool.write(json.dumps(row, separators=(",", ":")).encode("utf-8"))
        self._spool.write(b"\n")
        self.n_scans += 1
        self.n_observations += len(ip)

    # --- finishing -------------------------------------------------------------

    def close(self, certificates: Mapping[bytes, Certificate]) -> str:
        """Assemble the archive and return its corpus digest."""
        with obs.span("corpus/stream_close", scans=self.n_scans):
            try:
                self._spool.close()
                order = certificate_order(self._fingerprints, certificates)
                manifest = {
                    "format": FORMAT_VERSION,
                    "n_scans": self.n_scans,
                    "n_certificates": len(certificates),
                    "n_observations": self.n_observations,
                }
                with open(self.path, "wb") as raw:
                    sink = _HashingSink(raw)
                    with zipfile.ZipFile(
                        sink, "w", compression=zipfile.ZIP_DEFLATED
                    ) as archive:
                        archive.writestr(
                            _member("manifest.json"), json.dumps(manifest, indent=2)
                        )
                        with archive.open(_member("certificates.der"), "w") as member:
                            for fingerprint in order:
                                der = certificates[fingerprint].to_der()
                                member.write(_LENGTH.pack(len(der)))
                                member.write(der)
                        archive.writestr(
                            _member("entities.json"),
                            json.dumps(self._entities, separators=(",", ":")),
                        )
                        archive.writestr(
                            _member("handshakes.json"),
                            json.dumps(
                                [list(record) for record in self._handshakes],
                                separators=(",", ":"),
                            ),
                        )
                        with archive.open(_member("scans.jsonl"), "w") as member:
                            with open(self._spool_path, "rb") as spool:
                                shutil.copyfileobj(spool, member, 1 << 20)
                    self.digest = sink.hexdigest()
            finally:
                self._spool_path.unlink(missing_ok=True)
        return self.digest

    def abort(self) -> None:
        """Discard the spool without writing an archive."""
        self._spool.close()
        self._spool_path.unlink(missing_ok=True)


def save_dataset(dataset: ScanDataset, path: Union[str, pathlib.Path]) -> str:
    """Write the corpus to one ``.rpz`` archive (overwrites).

    Runs on the same :class:`StreamingDatasetWriter` machinery the
    shard-streaming generation path uses — same member order, same fixed
    timestamps, same streaming zip mode — so an in-memory build and a
    streamed build of the same corpus produce byte-identical archives.
    Certificates and scan columns are streamed member-by-member and
    record-by-record, so peak memory stays O(one scan), not O(corpus).
    Returns the archive's corpus digest.
    """
    columns = dataset.columns
    writer = StreamingDatasetWriter(path)
    try:
        writer._adopt_tables(
            columns.fingerprints, columns.entities, columns.handshakes
        )
        position = 0
        for scan in dataset.scans:
            end = position + len(scan)
            writer._write_scan_line(
                scan.day,
                scan.source,
                columns.cert_id[position:end].tolist(),
                columns.entity_id[position:end].tolist(),
                columns.handshake_id[position:end].tolist(),
                columns.ip[position:end].tolist(),
            )
            position = end
    except BaseException:
        writer.abort()
        raise
    return writer.close(dataset.certificates)


# ---------------------------------------------------------------------------
# Reading (v1 and v2)
# ---------------------------------------------------------------------------

def _read_manifest(archive: zipfile.ZipFile) -> dict:
    try:
        manifest = json.loads(archive.read("manifest.json"))
    except ValueError as error:
        raise ValueError(f"corpus corrupt: manifest is not valid JSON ({error})")
    if not isinstance(manifest, dict):
        raise ValueError("corpus corrupt: manifest is not a JSON object")
    if manifest.get("format") not in SUPPORTED_FORMATS:
        raise ValueError(f"unsupported corpus format {manifest.get('format')!r}")
    return manifest


def _unpack_certificates(blob: bytes) -> list[Certificate]:
    certificates = []
    offset = 0
    while offset < len(blob):
        (length,) = _LENGTH.unpack_from(blob, offset)
        offset += _LENGTH.size
        certificates.append(Certificate.from_der(blob[offset:offset + length]))
        offset += length
    return certificates


def _read_scans_v1(archive: zipfile.ZipFile, by_index: list[Certificate]) -> list[Scan]:
    scan_lines = archive.read("scans.jsonl").decode("utf-8").splitlines()
    scans = []
    for line in scan_lines:
        record = json.loads(line)
        observations = []
        for ip, cert_idx, entity, handshake in record["observations"]:
            observations.append(
                Observation(
                    ip=ip,
                    fingerprint=by_index[cert_idx].fingerprint,
                    entity=entity,
                    handshake=(
                        HandshakeRecord(*handshake) if handshake is not None else None
                    ),
                )
            )
        scans.append(
            Scan(day=record["day"], source=record["source"], observations=observations)
        )
    return scans


def _read_scans_v2(archive: zipfile.ZipFile, by_index: list[Certificate]) -> list[Scan]:
    entities = json.loads(archive.read("entities.json"))
    handshakes = [
        HandshakeRecord(*record)
        for record in json.loads(archive.read("handshakes.json"))
    ]
    scans = []
    with archive.open("scans.jsonl") as member:
        for line in member:
            if not line.strip():
                continue
            record = json.loads(line)
            observations = [
                Observation(
                    ip=ip,
                    fingerprint=by_index[cert_idx].fingerprint,
                    entity=entities[entity_id],
                    handshake=(handshakes[hs_id] if hs_id >= 0 else None),
                )
                for ip, cert_idx, entity_id, hs_id in zip(
                    record["ip"], record["cert"], record["entity"], record["hs"]
                )
            ]
            scans.append(
                Scan(
                    day=record["day"],
                    source=record["source"],
                    observations=observations,
                )
            )
    return scans


def load_dataset(path: Union[str, pathlib.Path]) -> ScanDataset:
    """Load a corpus written by :func:`save_dataset` (format v1 or v2)."""
    with zipfile.ZipFile(path) as archive:
        manifest = _read_manifest(archive)
        certificates = _unpack_certificates(archive.read("certificates.der"))
        if manifest["format"] == 1:
            scans = _read_scans_v1(archive, certificates)
        else:
            scans = _read_scans_v2(archive, certificates)
    from .backends import ArchiveBackend

    dataset = ScanDataset(
        scans,
        {cert.fingerprint: cert for cert in certificates},
        backend=ArchiveBackend(path),
    )
    if len(dataset.certificates) != manifest["n_certificates"]:
        raise ValueError("corpus corrupt: certificate count mismatch")
    return dataset


# --- piecemeal readers (the ArchiveBackend protocol surface) -------------------

def read_manifest(path: Union[str, pathlib.Path]) -> dict:
    """Parse and sanity-check an archive's manifest without loading it."""
    with zipfile.ZipFile(path) as archive:
        return _read_manifest(archive)


def read_certificates(path: Union[str, pathlib.Path]) -> dict[bytes, Certificate]:
    """fingerprint → certificate for every certificate in the archive."""
    with zipfile.ZipFile(path) as archive:
        _read_manifest(archive)
        certificates = _unpack_certificates(archive.read("certificates.der"))
    return {cert.fingerprint: cert for cert in certificates}


def read_scans(path: Union[str, pathlib.Path]) -> list[Scan]:
    """The archive's scans (row view), in stored order."""
    with zipfile.ZipFile(path) as archive:
        manifest = _read_manifest(archive)
        certificates = _unpack_certificates(archive.read("certificates.der"))
        if manifest["format"] == 1:
            return _read_scans_v1(archive, certificates)
        return _read_scans_v2(archive, certificates)
