"""Scan-corpus serialization.

The paper published its code and data (securepki.org); this module is the
equivalent facility: a :class:`~repro.scanner.dataset.ScanDataset` round-
trips through a single ``.rpz`` file (a ZIP archive) containing

* ``manifest.json`` — format version and corpus statistics;
* ``certificates.der`` — every unique certificate as length-prefixed DER
  (parseable without this library: each record is a 4-byte big-endian
  length followed by a standard X.509 DER blob);
* ``scans.jsonl`` — one JSON object per scan, observations referencing
  certificates by index.

DER is the ground-truth encoding: loading re-parses every certificate
through :meth:`Certificate.from_der`, so a stored corpus exercises exactly
the same parse path a real scan corpus would.
"""

from __future__ import annotations

import json
import pathlib
import struct
import zipfile
from typing import Union

from ..scanner.dataset import ScanDataset
from ..scanner.records import Observation, Scan
from ..tls.handshake import HandshakeRecord
from ..x509.certificate import Certificate

__all__ = ["save_dataset", "load_dataset", "FORMAT_VERSION"]

FORMAT_VERSION = 1

_LENGTH = struct.Struct(">I")


def _pack_certificates(dataset: ScanDataset) -> tuple[bytes, dict[bytes, int]]:
    blob = bytearray()
    index: dict[bytes, int] = {}
    for position, (fingerprint, cert) in enumerate(
        sorted(dataset.certificates.items())
    ):
        der = cert.to_der()
        blob += _LENGTH.pack(len(der))
        blob += der
        index[fingerprint] = position
    return bytes(blob), index


def _unpack_certificates(blob: bytes) -> list[Certificate]:
    certificates = []
    offset = 0
    while offset < len(blob):
        (length,) = _LENGTH.unpack_from(blob, offset)
        offset += _LENGTH.size
        certificates.append(Certificate.from_der(blob[offset:offset + length]))
        offset += length
    return certificates


def _observation_row(obs: Observation, cert_index: dict[bytes, int]) -> list:
    handshake = list(obs.handshake) if obs.handshake is not None else None
    return [obs.ip, cert_index[obs.fingerprint], obs.entity, handshake]


def save_dataset(dataset: ScanDataset, path: Union[str, pathlib.Path]) -> None:
    """Write the corpus to one ``.rpz`` archive (overwrites)."""
    blob, cert_index = _pack_certificates(dataset)
    manifest = {
        "format": FORMAT_VERSION,
        "n_scans": len(dataset.scans),
        "n_certificates": len(dataset.certificates),
        "n_observations": dataset.n_observations,
    }
    scan_lines = []
    for scan in dataset.scans:
        scan_lines.append(
            json.dumps(
                {
                    "day": scan.day,
                    "source": scan.source,
                    "observations": [
                        _observation_row(obs, cert_index)
                        for obs in scan.observations
                    ],
                },
                separators=(",", ":"),
            )
        )
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as archive:
        archive.writestr("manifest.json", json.dumps(manifest, indent=2))
        archive.writestr("certificates.der", blob)
        archive.writestr("scans.jsonl", "\n".join(scan_lines))


def load_dataset(path: Union[str, pathlib.Path]) -> ScanDataset:
    """Load a corpus written by :func:`save_dataset`."""
    with zipfile.ZipFile(path) as archive:
        manifest = json.loads(archive.read("manifest.json"))
        if manifest.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported corpus format {manifest.get('format')!r}"
            )
        certificates = _unpack_certificates(archive.read("certificates.der"))
        scan_lines = archive.read("scans.jsonl").decode("utf-8").splitlines()

    by_index = certificates
    scans = []
    for line in scan_lines:
        record = json.loads(line)
        observations = []
        for ip, cert_idx, entity, handshake in record["observations"]:
            observations.append(
                Observation(
                    ip=ip,
                    fingerprint=by_index[cert_idx].fingerprint,
                    entity=entity,
                    handshake=(
                        HandshakeRecord(*handshake) if handshake is not None else None
                    ),
                )
            )
        scans.append(
            Scan(day=record["day"], source=record["source"], observations=observations)
        )
    dataset = ScanDataset(
        scans, {cert.fingerprint: cert for cert in certificates}
    )
    if len(dataset.certificates) != manifest["n_certificates"]:
        raise ValueError("corpus corrupt: certificate count mismatch")
    return dataset
