"""Content-addressed persistence of derived analysis artifacts.

PR 2 made the §6 linking consumers array-native, which left the *builds*
— column interning, the CSR observation index, the interval arrays, the
feature matrix, and the §4.2 chain walks — as the dominant cost of every
run over the same immutable corpus.  This module is the warm path: an
:class:`ArtifactCache` persists those derived artifacts in one ``.rpa``
file per corpus, keyed by a **streaming corpus digest**, so a warm
:class:`~repro.study.Study` run loads them in O(1) and skips the kernel
builds and the chain walks entirely.

Digest scheme (the cache key):

* file-backed corpora (:class:`~repro.io.backends.ArchiveBackend`,
  :class:`~repro.io.backends.MappedBackend`) hash the corpus **file
  bytes** (SHA-256, streamed in chunks — the ``.rpz`` is the corpus'
  identity, nothing needs parsing);
* in-memory corpora hash a **canonical columnar encoding**: per-scan
  (day, source) metadata, the five observation columns as little-endian
  bytes, the interning tables, and the sorted fingerprint list of the
  certificate table.  Fingerprints are SHA-256 over DER, so certificate
  *content* is covered transitively.

Both schemes are independent of ``PYTHONHASHSEED`` and of the platform
byte order (columns are serialized little-endian everywhere).

File layout — ``<digest>.rpa`` is a format 3 segment container
(:mod:`repro.io.encoding`), the same encoding ``.rpz`` corpora use.
Segment groups:

* ``columns.*``   — the five observation columns and interning tables.
  Kept as their own group because a loader whose dataset is already
  columnar (or mapped) never touches these bytes — they dominate the
  artifact;
* ``index.*`` / ``intervals.*`` — the CSR index and interval arrays;
* ``matrix.*``    — the feature matrix (interned value tables as one
  pickle segment, id columns as arrays);
* ``val.*``       — per-certificate verdicts, columnar: interned
  status/detail tables, per-record id columns, a flat chain-fingerprint
  blob with per-record lengths, plus the DER of chain members that are
  not corpus certificates (roots), gated by a digest of the trust store.

A warm load **maps** the container: fixed-stride segments come back as
``memoryview``s over the shared ``mmap`` (the ``artifacts/map`` span),
so adopting cached kernels costs O(1) and the bytes page in as queries
touch them.  Only the feature-matrix id columns are copied out (they
must survive pickling into pool workers).

Any failure to read, decode, or sanity-check an artifact — truncation,
a schema bump, a digest mismatch, a pre-format-3 ZIP artifact — degrades
to a rebuild, never to an error; counters ``artifacts.hit`` / ``miss`` /
``invalidated`` / ``extended`` (one per requested section) record which
way each load went.

Delta-chain lineage (PR 7): a ``lineage.json`` sidecar maps each
appended corpus digest to ``{"base": ..., "chain": [...]}`` — the
``(base_digest, delta_chain)`` cache key of incremental ingestion.  A
kernels load that misses on the exact digest walks the chain for the
nearest cached ancestor, delta-merges its kernels over the appended
rows (the ``artifacts/extend`` span, counter ``artifacts.extended``),
and persists the result so the next load is a direct hit.  The ``.rpa``
files themselves stay purely content-addressed and byte-identical to
cold builds; only the sidecar knows about ancestry, and any corruption
in it or in an ancestor artifact degrades to a full rebuild.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import warnings
from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Union

from ..obs import runtime as obs
from ..scanner.columns import (
    COLUMN_TYPECODES,
    CertIntervals,
    ObservationColumns,
    ObservationIndex,
    RowDelta,
)
from ..tls.handshake import HandshakeRecord
from ..x509.certificate import Certificate
from .encoding import (
    DIGEST_META,
    DIGEST_SCAN,
    FP_LEN,
    SegmentReader,
    SegmentWriter,
    as_array,
    le_view,
    pack_fingerprints,
    read_container_meta,
    unpack_fingerprints,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..core.validation import ValidationReport
    from ..scanner.dataset import ScanDataset
    from ..x509.truststore import TrustStore

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactCache",
    "LoadedArtifacts",
    "columns_digest",
    "file_digest",
    "trust_store_digest",
]

#: Bump on any change to the artifact payload encoding; older files are
#: invalidated (fall back to a rebuild), never misread.  Schema 1 was
#: the pre-mmap ZIP-of-pickles layout.
ARTIFACT_SCHEMA = 2

#: Streaming chunk size for archive-byte digests.
_CHUNK = 1 << 20

#: Segment-name prefixes of each manifest section.
_SECTION_PREFIXES = {
    "kernels": ("columns.", "index.", "intervals.", "matrix."),
    "validation": ("val.",),
}

#: Sidecar recording which corpus digests are delta-appends of which
#: bases — the ``(base_digest, delta_chain)`` keying of warm loads.
_LINEAGE_NAME = "lineage.json"

#: Longest ancestor chain a lineage-aware load will consider.
_LINEAGE_MAX_CHAIN = 64

#: One-time-per-process latch for the lineage-truncation warning (the
#: watch daemon appends a day at a time; warning on every append past
#: the cap would drown the log with the same fact).
_LINEAGE_WARNED = False


def _warn_lineage_truncated(length: int) -> None:
    global _LINEAGE_WARNED
    if _LINEAGE_WARNED:
        return
    _LINEAGE_WARNED = True
    warnings.warn(
        f"artifact lineage chain reached {length} entries and was capped "
        f"at {_LINEAGE_MAX_CHAIN}; ancestors past the cap can no longer "
        "warm-load descendants (cache falls back to cold rebuilds). "
        "Persist a fresh artifact for the current corpus to reset the "
        "chain.",
        RuntimeWarning,
        stacklevel=3,
    )


# ---------------------------------------------------------------------------
# Digests
# ---------------------------------------------------------------------------

def file_digest(path: Union[str, pathlib.Path]) -> str:
    """Streaming SHA-256 over a corpus archive's bytes.

    For format 3 containers this equals the digest the writer computed
    incrementally while streaming the file.
    """
    digest = hashlib.sha256(b"repro-archive/1\n")
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def columns_digest(
    columns: ObservationColumns,
    scan_meta: Sequence[tuple[int, str]],
    certificates: Mapping[bytes, Certificate],
) -> str:
    """Canonical digest of an in-memory corpus.

    Hashes the (day, source) scan metadata, every observation column as
    little-endian bytes, the interning tables, and the **sorted** full
    certificate-fingerprint list (covering unobserved certificates, and
    making the digest independent of certificate-dict insertion order).
    """
    digest = hashlib.sha256(b"repro-corpus/1\n")
    digest.update(DIGEST_META.pack(len(scan_meta), len(certificates)))
    for day, source in scan_meta:
        encoded = source.encode("utf-8")
        digest.update(DIGEST_SCAN.pack(day, len(encoded)))
        digest.update(encoded)
    for column in (columns.scan_idx, columns.ip, columns.cert_id,
                   columns.entity_id, columns.handshake_id):
        digest.update(le_view(column))
    digest.update(b"".join(columns.fingerprints))
    digest.update(json.dumps(columns.entities, separators=(",", ":")).encode())
    digest.update(
        json.dumps(
            [list(record) for record in columns.handshakes],
            separators=(",", ":"),
        ).encode()
    )
    digest.update(b"".join(sorted(certificates)))
    return digest.hexdigest()


def trust_store_digest(trust_store: "TrustStore") -> str:
    """Digest of a trust store: SHA-256 over its sorted root fingerprints.

    Gates only the ``validation`` section — the kernel artifacts are pure
    functions of the corpus and stay loadable under any trust store.
    """
    digest = hashlib.sha256(b"repro-trust/1\n")
    for fingerprint in sorted(root.fingerprint for root in trust_store):
        digest.update(fingerprint)
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Section encoders (writer-side)
# ---------------------------------------------------------------------------

def _write_kernels(
    writer: SegmentWriter,
    columns: ObservationColumns,
    index: ObservationIndex,
    intervals: CertIntervals,
    matrix,
) -> None:
    from ..core.features import Feature

    for name, _ in COLUMN_TYPECODES:
        writer.add_array(f"columns.{name}", getattr(columns, name))
    writer.add_bytes(
        "columns.fingerprints",
        pack_fingerprints(columns.fingerprints), stride=FP_LEN,
    )
    writer.add_json("columns.entities", list(columns.entities))
    writer.add_json(
        "columns.handshakes",
        [list(record) for record in columns.handshakes],
    )
    writer.add_array("index.offsets", index._offsets)
    writer.add_array("index.order", index._order)
    for name in CertIntervals.__slots__:
        writer.add_array(f"intervals.{name}", getattr(intervals, name))
    writer.add_bytes(
        "matrix.fingerprints",
        pack_fingerprints(matrix.fingerprints), stride=FP_LEN,
    )
    writer.add_pickle(
        "matrix.values",
        {feature.name: list(matrix.values[feature]) for feature in Feature},
    )
    for feature in Feature:
        writer.add_array(f"matrix.raw.{feature.name}", matrix.raw_ids[feature])
    writer.add_array(
        "matrix.cn_linkable", matrix.linkable_ids[Feature.COMMON_NAME]
    )


def _write_validation(
    writer: SegmentWriter,
    report: "ValidationReport",
    dataset: "ScanDataset",
    trust_store: "TrustStore",
) -> None:
    """Columnar verdict encoding: the distinct (status, detail) space is
    tiny (a handful of failure classes), so per-certificate state is two
    id columns plus a flat chain-fingerprint blob with per-record
    lengths — not tens of thousands of record tuples."""
    statuses: list[str] = []
    status_ids: dict[str, int] = {}
    details: list[str] = []
    detail_ids: dict[str, int] = {}
    fingerprints: list[bytes] = []
    record_status = array("B")
    record_detail = array("I")
    chain_lens = array("B")
    chain_fps: list[bytes] = []
    extra_der: dict[bytes, bytes] = {}
    for fingerprint, result in report.results.items():
        fingerprints.append(fingerprint)
        status_id = status_ids.setdefault(result.status.value, len(statuses))
        if status_id == len(statuses):
            statuses.append(result.status.value)
        detail_id = detail_ids.setdefault(result.detail, len(details))
        if detail_id == len(details):
            details.append(result.detail)
        record_status.append(status_id)
        record_detail.append(detail_id)
        chain_lens.append(len(result.chain))
        for link in result.chain:
            chain_fps.append(link.fingerprint)
            if link.fingerprint not in dataset.certificates \
                    and link.fingerprint not in extra_der:
                extra_der[link.fingerprint] = link.to_der()
    writer.add_json("val.trust", trust_store_digest(trust_store))
    writer.add_bytes(
        "val.fingerprints", pack_fingerprints(fingerprints), stride=FP_LEN
    )
    writer.add_json("val.statuses", statuses)
    writer.add_json("val.details", details)
    writer.add_array("val.status_ids", record_status)
    writer.add_array("val.detail_ids", record_detail)
    writer.add_array("val.chain_lens", chain_lens)
    writer.add_bytes(
        "val.chain_fps", pack_fingerprints(chain_fps), stride=FP_LEN
    )
    writer.add_pickle("val.extra", extra_der)


def _copy_section(
    writer: SegmentWriter, reader: SegmentReader, section: str
) -> None:
    """Re-emit one section's raw segment bytes (no decode, no re-encode)."""
    prefixes = _SECTION_PREFIXES[section]
    for name in reader.names():
        if not name.startswith(prefixes):
            continue
        entry = reader.entry(name)
        writer.add_chunks(
            name, (reader.raw(name),), kind=entry["kind"],
            typecode=entry.get("typecode"), stride=entry.get("stride"),
        )


# ---------------------------------------------------------------------------
# Section decoders (reader-side, mapped)
# ---------------------------------------------------------------------------

def _decode_columns(reader: SegmentReader) -> ObservationColumns:
    """Mapped columns over the artifact container (zero-copy)."""
    return ObservationColumns.from_segments(
        reader.array("columns.scan_idx"),
        reader.array("columns.ip"),
        reader.array("columns.cert_id"),
        reader.array("columns.entity_id"),
        reader.array("columns.handshake_id"),
        fp_blob=reader.bytes("columns.fingerprints"),
        entities=reader.json("columns.entities"),
        handshakes=[
            HandshakeRecord(*record)
            for record in reader.json("columns.handshakes")
        ],
        source=reader,
    )


def _decode_index(
    columns: ObservationColumns, reader: SegmentReader
) -> ObservationIndex:
    index = ObservationIndex.__new__(ObservationIndex)
    index.columns = columns
    index._offsets = reader.array("index.offsets")
    index._order = reader.array("index.order")
    if len(index._offsets) != len(columns.fingerprints) + 1 \
            or len(index._order) != len(columns):
        raise ValueError("artifact index shape mismatch")
    return index


def _fingerprint_prefix_matches(
    columns: ObservationColumns, base_fp
) -> bool:
    """True when the grown corpus' interning order starts with the base's.

    Delta appends preserve the base fingerprint table as a strict
    prefix; anything else means the lineage sidecar is stale for this
    corpus and the merge must not be trusted.
    """
    blob = columns._fp_blob
    if blob is not None:
        return bytes(blob[: len(base_fp)]) == bytes(base_fp)
    prefix = columns.fingerprints[: len(base_fp) // FP_LEN]
    return b"".join(prefix) == bytes(base_fp)


def _decode_intervals(reader: SegmentReader, n_certs: int) -> CertIntervals:
    intervals = CertIntervals.__new__(CertIntervals)
    for name in CertIntervals.__slots__:
        column = reader.array(f"intervals.{name}")
        if len(column) != n_certs:
            raise ValueError("artifact intervals shape mismatch")
        setattr(intervals, name, column)
    return intervals


def _decode_matrix(
    reader: SegmentReader, certificates: Mapping[bytes, Certificate]
):
    """Rebuild the feature matrix, re-ordering rows to the loader's
    certificate order when it differs from the writer's (the digest pins
    the certificate *set*, not the dict insertion order).  The id
    columns are materialized — unlike the observation columns they must
    survive pickling into pool workers."""
    from ..core.features import Feature
    from ..core.kernels import FeatureMatrix

    stored = unpack_fingerprints(
        reader.bytes("matrix.fingerprints", materialize=True)
    )
    wanted = list(certificates)
    raw = {
        feature: as_array(reader.array(f"matrix.raw.{feature.name}"))
        for feature in Feature
    }
    cn_linkable = as_array(reader.array("matrix.cn_linkable"))
    if stored != wanted:
        if sorted(stored) != sorted(wanted):
            raise ValueError("artifact certificate set mismatch")
        stored_row = {fp: row for row, fp in enumerate(stored)}
        perm = [stored_row[fp] for fp in wanted]
        raw = {
            feature: array("i", (column[row] for row in perm))
            for feature, column in raw.items()
        }
        cn_linkable = array("i", (cn_linkable[row] for row in perm))
    for column in raw.values():
        if len(column) != len(wanted):
            raise ValueError("artifact matrix shape mismatch")
    values = reader.pickle("matrix.values")
    matrix = FeatureMatrix()
    matrix.fingerprints = wanted
    matrix.rows = {fp: row for row, fp in enumerate(wanted)}
    matrix.values = {feature: values[feature.name] for feature in Feature}
    matrix.raw_ids = raw
    matrix.linkable_ids = dict(raw)
    matrix.linkable_ids[Feature.COMMON_NAME] = cn_linkable
    return matrix


def _decode_validation(
    reader: SegmentReader,
    dataset: "ScanDataset",
    trust_store: "TrustStore",
) -> "ValidationReport":
    from ..core.validation import ValidationReport
    from ..x509.chain import VerifyResult, VerifyStatus

    roots = {root.fingerprint: root for root in trust_store}
    extra_der = reader.pickle("val.extra")
    parsed: dict[bytes, Certificate] = {}

    def resolve(fingerprint: bytes) -> Certificate:
        cert = dataset.certificates.get(fingerprint) or roots.get(fingerprint) \
            or parsed.get(fingerprint)
        if cert is None:
            cert = parsed[fingerprint] = Certificate.from_der(
                extra_der[fingerprint]
            )
        return cert

    status_table = [VerifyStatus(value) for value in reader.json("val.statuses")]
    details = reader.json("val.details")
    fingerprints = unpack_fingerprints(
        reader.bytes("val.fingerprints", materialize=True)
    )
    status_ids = reader.array("val.status_ids")
    detail_ids = reader.array("val.detail_ids")
    chain_lens = reader.array("val.chain_lens")
    chain_fps = unpack_fingerprints(
        reader.bytes("val.chain_fps", materialize=True)
    )
    if not (len(fingerprints) == len(status_ids) == len(detail_ids)
            == len(chain_lens)):
        raise ValueError("artifact validation shape mismatch")
    # ``VerifyResult`` is frozen, so chainless verdicts — the bulk of the
    # corpus — share one instance per distinct (status, detail) pair.
    chainless: dict[tuple[int, int], VerifyResult] = {}
    # Which report bucket each status lands in (``is_valid`` and the
    # disregarded set are pure functions of the status).
    valid: set[bytes] = set()
    invalid: set[bytes] = set()
    disregarded: set[bytes] = set()
    buckets = [
        disregarded if status is VerifyStatus.MALFORMED
        else (valid if status.is_valid else invalid)
        for status in status_table
    ]
    results = {}
    position = 0
    rows = zip(fingerprints, status_ids, detail_ids, chain_lens)
    for fingerprint, status_id, detail_id, length in rows:
        if length:
            chain = tuple(
                resolve(fp) for fp in chain_fps[position:position + length]
            )
            position += length
            result = VerifyResult(
                status=status_table[status_id],
                chain=chain,
                detail=details[detail_id],
            )
        else:
            key = (status_id, detail_id)
            result = chainless.get(key)
            if result is None:
                result = chainless[key] = VerifyResult(
                    status=status_table[status_id],
                    detail=details[detail_id],
                )
        results[fingerprint] = result
        buckets[status_id].add(fingerprint)
    if position != len(chain_fps):
        raise ValueError("artifact validation chain blob mismatch")
    if set(results) != set(dataset.certificates):
        raise ValueError("artifact validation set mismatch")
    return ValidationReport(
        results=results, valid=valid, invalid=invalid, disregarded=disregarded
    )


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------

@dataclass
class LoadedArtifacts:
    """What one :meth:`ArtifactCache.load` satisfied."""

    #: True when columns, index, intervals, and matrix were all installed.
    kernels: bool = False
    #: The reconstructed §4.2 report, when requested and present.
    validation: Optional["ValidationReport"] = None


class ArtifactCache:
    """Content-addressed on-disk cache of derived analysis artifacts."""

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)

    def path_for(self, digest: str) -> pathlib.Path:
        return self.root / f"{digest}.rpa"

    # --- read ----------------------------------------------------------------

    def load(
        self,
        dataset: "ScanDataset",
        trust_store: Optional["TrustStore"] = None,
        workers: int = 1,
    ) -> LoadedArtifacts:
        """Install every cached artifact the corpus digest matches.

        Kernels (columns + index + intervals + matrix) are adopted onto
        ``dataset`` as **mapped** views over the artifact container (the
        ``artifacts/map`` span); the validation report is returned when
        ``trust_store`` is given and the stored verdicts were produced
        under a trust store with the same digest.  Every requested
        section bumps exactly one of ``artifacts.hit`` / ``miss`` /
        ``invalidated``; any read or decode failure — including a
        pre-format-3 ZIP artifact — counts as invalidated and falls back
        to a rebuild.
        """
        loaded = LoadedArtifacts()
        n_sections = 2 if trust_store is not None else 1
        digest = dataset.corpus_digest(workers=workers)
        path = self.path_for(digest)
        if not path.exists():
            # No artifact for this exact corpus — but if the corpus is a
            # recorded delta-append of a cached base, one delta-merge
            # over the base's kernels serves it (and is persisted, so
            # the next load is a direct hit).  Validation is never
            # delta-merged: appended certificates can complete chains
            # that were incomplete in the base.
            outcome = self._load_extended(dataset, digest, workers)
            if outcome == "extended":
                loaded.kernels = True
            obs.inc(f"artifacts.{outcome}")
            if trust_store is not None:
                obs.inc("artifacts.miss")
            return loaded
        try:
            reader = SegmentReader(path)
            meta = reader.meta
            if meta.get("kind") != "artifacts" \
                    or meta.get("schema") != ARTIFACT_SCHEMA:
                raise ValueError(
                    f"artifact schema {meta.get('schema')!r} != "
                    f"{ARTIFACT_SCHEMA}"
                )
            if meta.get("digest") != digest:
                raise ValueError("artifact digest mismatch")
            sections = set(meta.get("sections") or ())
        except Exception:
            obs.inc("artifacts.invalidated", n_sections)
            return loaded

        if "kernels" not in sections:
            obs.inc("artifacts.miss")
        else:
            try:
                with obs.span("artifacts/map"):
                    # The columns group dominates the artifact; a dataset
                    # that is already columnar never touches those bytes.
                    columns = dataset._columns
                    if columns is None:
                        columns = _decode_columns(reader)
                    index = _decode_index(columns, reader)
                    intervals = _decode_intervals(
                        reader, len(columns.fingerprints)
                    )
                    matrix = _decode_matrix(reader, dataset.certificates)
            except Exception:
                obs.inc("artifacts.invalidated")
            else:
                dataset.adopt_kernels(
                    columns=columns, index=index,
                    intervals=intervals, matrix=matrix,
                )
                loaded.kernels = True
                obs.inc("artifacts.hit")

        if trust_store is not None:
            if "validation" not in sections:
                obs.inc("artifacts.miss")
            else:
                try:
                    if reader.json("val.trust") != trust_store_digest(trust_store):
                        # Same corpus, different roots: a miss, not corruption.
                        obs.inc("artifacts.miss")
                    else:
                        loaded.validation = _decode_validation(
                            reader, dataset, trust_store
                        )
                        obs.inc("artifacts.hit")
                except Exception:
                    obs.inc("artifacts.invalidated")
        return loaded

    # --- lineage (delta-chain warm loads) --------------------------------------

    def _lineage_path(self) -> pathlib.Path:
        return self.root / _LINEAGE_NAME

    def _read_lineage(self) -> dict:
        """The lineage sidecar, tolerantly: corruption reads as empty."""
        try:
            data = json.loads(self._lineage_path().read_text())
        except Exception:
            return {}
        return data if isinstance(data, dict) else {}

    def record_lineage(self, digest: str, base_digest: str) -> None:
        """Record that ``digest`` is ``base_digest`` plus one delta append.

        The sidecar keys warm loads by ``(base_digest, delta_chain)``:
        artifact files stay purely content-addressed (``<digest>.rpa``,
        byte-identical to a cold build's), while the lineage map lets a
        load for a digest with no artifact walk its ancestor chain,
        delta-merge the nearest cached base, and persist the result.
        Appends chain: day N+2 records day N+1 as base and inherits its
        chain, so any cached ancestor can serve any descendant.
        """
        if digest == base_digest:
            return
        lineage = self._read_lineage()
        base_entry = lineage.get(base_digest) or {}
        chain = [
            entry for entry in base_entry.get("chain") or []
            if isinstance(entry, str)
        ]
        chain.append(base_digest)
        if len(chain) > _LINEAGE_MAX_CHAIN:
            # Ancestors past the cap can no longer warm-load descendants;
            # the cache silently degrading to cold rebuilds is worth one
            # audible heads-up per process.
            obs.inc("artifacts.lineage_truncated",
                    len(chain) - _LINEAGE_MAX_CHAIN)
            _warn_lineage_truncated(len(chain))
        lineage[digest] = {
            "base": base_digest, "chain": chain[-_LINEAGE_MAX_CHAIN:],
        }
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self._lineage_path().with_name(
            f"{_LINEAGE_NAME}.tmp-{os.getpid()}"
        )
        tmp.write_text(json.dumps(lineage, indent=2, sort_keys=True))
        os.replace(tmp, self._lineage_path())

    def chain_length(self, digest: str) -> int:
        """Recorded delta ancestors behind ``digest`` (0 = flat/unknown)."""
        entry = self._read_lineage().get(digest)
        if not isinstance(entry, dict):
            return 0
        return len([
            ancestor for ancestor in entry.get("chain") or []
            if isinstance(ancestor, str)
        ])

    def compact(
        self, dataset: "ScanDataset", workers: int = 1
    ) -> Optional[pathlib.Path]:
        """Consolidate ``dataset``'s delta chain into one flat artifact.

        Guarantees a direct-hit (``kernels`` section) artifact exists
        for the dataset's digest — warm-loading through the lineage
        chain first, building cold only what is still missing — then
        drops the digest's lineage entry and every ancestor entry it
        chains through.  Future appends restart their chain at this
        digest, so a long-running ingest loop that compacts every N
        days never approaches the 64-ancestor cap.  Returns the flat
        artifact's path; on failure to persist, the lineage is left
        untouched and None is returned.  A dataset that is already
        flat (no lineage entry, artifact present) is a no-op.
        """
        digest = dataset.corpus_digest(workers=workers)
        entry = self._read_lineage().get(digest)
        if "kernels" not in self.status(digest)["sections"]:
            if None in dataset.kernel_state:
                # A successful warm load through the chain persists the
                # flat artifact itself; cold-build any kernel it could
                # not serve before storing.
                self.load(dataset, workers=workers)
            dataset.build_columns(workers=workers)
            dataset.index
            dataset.intervals
            dataset.build_feature_matrix(workers=workers)
            if "kernels" not in self.status(digest)["sections"] \
                    and self.store(dataset, workers=workers) is None:
                return None
        if not isinstance(entry, dict):
            return self.path_for(digest)
        stale = {digest}
        base = entry.get("base")
        if isinstance(base, str):
            stale.add(base)
        stale.update(
            ancestor for ancestor in entry.get("chain") or []
            if isinstance(ancestor, str)
        )
        lineage = {
            key: value for key, value in self._read_lineage().items()
            if key not in stale
        }
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self._lineage_path().with_name(
            f"{_LINEAGE_NAME}.tmp-{os.getpid()}"
        )
        tmp.write_text(json.dumps(lineage, indent=2, sort_keys=True))
        os.replace(tmp, self._lineage_path())
        obs.inc("artifacts.compacted")
        return self.path_for(digest)

    def _load_extended(self, dataset, digest: str, workers: int) -> str:
        """Serve a digest with no artifact by delta-merging an ancestor's.

        Returns the counter the kernels section should bump:
        ``"extended"`` on success, ``"miss"`` when there is no usable
        lineage, ``"invalidated"`` when an ancestor artifact exists but
        fails to decode, sanity-check, or merge (the corruption → full
        rebuild fallback).
        """
        columns = dataset._columns
        if columns is None:
            # Without the grown columns there is no delta to splice.
            return "miss"
        entry = self._read_lineage().get(digest)
        if not isinstance(entry, dict):
            return "miss"
        candidates = [entry.get("base"),
                      *reversed(entry.get("chain") or [])]
        base_digest = None
        seen: set = set()
        for candidate in candidates:
            if not isinstance(candidate, str) or candidate in seen:
                continue
            seen.add(candidate)
            if self.path_for(candidate).exists():
                base_digest = candidate
                break
        if base_digest is None:
            return "miss"
        try:
            with obs.span("artifacts/extend", base=base_digest[:12]):
                reader = SegmentReader(self.path_for(base_digest))
                meta = reader.meta
                if meta.get("kind") != "artifacts" \
                        or meta.get("schema") != ARTIFACT_SCHEMA \
                        or meta.get("digest") != base_digest \
                        or "kernels" not in (meta.get("sections") or ()):
                    raise ValueError("lineage base artifact unusable")
                base_rows = meta.get("n_observations")
                if not isinstance(base_rows, int) \
                        or base_rows > len(columns):
                    raise ValueError("lineage base shape mismatch")
                base_index = ObservationIndex.__new__(ObservationIndex)
                base_index.columns = None
                base_index._offsets = reader.array("index.offsets")
                base_index._order = reader.array("index.order")
                base_certs = len(base_index._offsets) - 1
                if len(base_index._order) != base_rows \
                        or base_certs > len(columns.fingerprints):
                    raise ValueError("lineage base shape mismatch")
                base_fp = reader.raw("columns.fingerprints")
                if len(base_fp) != FP_LEN * base_certs \
                        or not _fingerprint_prefix_matches(columns, base_fp):
                    raise ValueError("lineage base fingerprint mismatch")
                base_intervals = _decode_intervals(reader, base_certs)
                stored = unpack_fingerprints(
                    reader.bytes("matrix.fingerprints", materialize=True)
                )
                base_matrix = _decode_matrix(reader, dict.fromkeys(stored))
                from ..core.kernels import FeatureMatrix

                delta = RowDelta(columns, base_rows, base_certs)
                index = ObservationIndex.extended(base_index, delta)
                intervals = CertIntervals.extended(base_intervals, delta)
                matrix = FeatureMatrix.extended(
                    base_matrix, dataset.certificates, workers=workers
                )
        except Exception:
            return "invalidated"
        dataset.adopt_kernels(
            columns=columns, index=index, intervals=intervals, matrix=matrix
        )
        try:
            # Persist so the next load of this digest is a direct hit.
            self.store(dataset, workers=workers)
        except Exception:
            pass
        return "extended"

    # --- write ---------------------------------------------------------------

    def store(
        self,
        dataset: "ScanDataset",
        validation: Optional["ValidationReport"] = None,
        trust_store: Optional["TrustStore"] = None,
        workers: int = 1,
    ) -> Optional[pathlib.Path]:
        """Persist whatever artifacts ``dataset`` currently holds.

        The kernels section is written only when all four kernels are
        built; the validation section only when both ``validation`` and
        ``trust_store`` are given.  Sections already in the file that
        this call does not rewrite are preserved (raw segment copy, no
        decode), and the file is replaced atomically, so a partial
        writer never corrupts a reader.  Returns the artifact path, or
        None when there was nothing to persist.
        """
        digest = dataset.corpus_digest(workers=workers)
        columns, index, intervals, matrix = dataset.kernel_state
        write_kernels = columns is not None and index is not None \
            and intervals is not None and matrix is not None
        write_validation = validation is not None and trust_store is not None
        if not write_kernels and not write_validation:
            return None
        path = self.path_for(digest)
        # Preserve sections an earlier (e.g. validation-only) run stored.
        existing = self._existing_reader(path, digest)
        existing_sections = set(
            existing.meta.get("sections") or ()
        ) if existing is not None else set()
        sections = []
        if write_kernels or "kernels" in existing_sections:
            sections.append("kernels")
        if write_validation or "validation" in existing_sections:
            sections.append("validation")
        meta = {
            "kind": "artifacts",
            "schema": ARTIFACT_SCHEMA,
            "digest": digest,
            "byteorder": "little",
            "n_certificates": len(dataset.certificates),
            "n_observations": len(columns) if columns is not None else None,
            "sections": sections,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        writer = SegmentWriter(tmp, meta=meta)
        try:
            if write_kernels:
                _write_kernels(writer, columns, index, intervals, matrix)
            elif "kernels" in existing_sections:
                _copy_section(writer, existing, "kernels")
            if write_validation:
                _write_validation(writer, validation, dataset, trust_store)
            elif "validation" in existing_sections:
                _copy_section(writer, existing, "validation")
            writer.close()
            os.replace(tmp, path)
        except BaseException:
            writer.abort()
            raise
        return path

    def _existing_reader(
        self, path: pathlib.Path, digest: str
    ) -> Optional[SegmentReader]:
        """A reader over a compatible existing artifact, if any."""
        if not path.exists():
            return None
        try:
            reader = SegmentReader(path)
            if reader.meta.get("kind") != "artifacts" \
                    or reader.meta.get("schema") != ARTIFACT_SCHEMA \
                    or reader.meta.get("digest") != digest:
                return None
            return reader
        except Exception:
            return None

    # --- introspection (``repro info``) ---------------------------------------

    def status(self, digest: str) -> dict:
        """Cheap cache-status summary for one corpus digest."""
        path = self.path_for(digest)
        status = {
            "digest": digest,
            "path": str(path),
            "cached": False,
            "sections": [],
            "schema": None,
        }
        if not path.exists():
            return status
        try:
            meta = read_container_meta(path)["meta"]
        except Exception:
            return status
        status["schema"] = meta.get("schema")
        if meta.get("kind") == "artifacts" \
                and meta.get("schema") == ARTIFACT_SCHEMA \
                and meta.get("digest") == digest:
            status["cached"] = True
            status["sections"] = list(meta.get("sections", []))
        return status
